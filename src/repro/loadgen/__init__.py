"""Open-loop load generation: arrival processes and SLO reporting.

Closed-loop clients (``repro.clients``) wait for a reply before issuing
the next request, so offered load collapses whenever the system slows
down — fine for saturation benchmarks, wrong for serving-style traffic.
This package models the *open-loop* alternative: arrivals fire on their
own schedule regardless of completions, queueing delay becomes part of
the measured latency, and overload shows up as shed requests and
latency-tail blowup instead of silently reduced throughput.
"""

from repro.loadgen.arrivals import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    make_arrivals,
)
from repro.loadgen.slo import SLOReport

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "BurstyArrivals",
    "DiurnalArrivals",
    "PoissonArrivals",
    "SLOReport",
    "make_arrivals",
]
