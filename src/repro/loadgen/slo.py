"""Latency-SLO reporting for open-loop runs.

An open-loop run is judged the way a serving system is judged: goodput
(completions per second of *offered* traffic) and the latency tail from
arrival to completion — queueing delay included — plus how much traffic
was shed at admission or abandoned after retries.  :class:`SLOReport`
aggregates those numbers across gateways and renders them for run
summaries, ``BENCH_*.json`` artifacts, and scenario pass criteria.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clients.stats import LatencyStats


@dataclass
class SLOReport:
    """Aggregated outcome of one open-loop measurement interval."""

    elapsed_s: float = 0.0
    offered: int = 0
    admitted: int = 0
    shed: int = 0
    completed: int = 0
    timeouts: int = 0
    failed: int = 0
    leased_reads: int = 0
    sessions: int = 0
    latency: LatencyStats = field(default_factory=LatencyStats)

    @property
    def offered_rate_ops(self) -> float:
        return self.offered / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def goodput_ops(self) -> float:
        return self.completed / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    def merge(self, other: "SLOReport") -> None:
        self.offered += other.offered
        self.admitted += other.admitted
        self.shed += other.shed
        self.completed += other.completed
        self.timeouts += other.timeouts
        self.failed += other.failed
        self.leased_reads += other.leased_reads
        self.sessions += other.sessions
        self.elapsed_s = max(self.elapsed_s, other.elapsed_s)
        self.latency.merge(other.latency)

    def to_json(self) -> dict:
        return {
            "elapsed_s": round(self.elapsed_s, 3),
            "sessions": self.sessions,
            "offered": self.offered,
            "offered_rate_ops": round(self.offered_rate_ops, 1),
            "admitted": self.admitted,
            "shed": self.shed,
            "shed_fraction": round(self.shed_fraction, 4),
            "completed": self.completed,
            "goodput_ops": round(self.goodput_ops, 1),
            "timeouts": self.timeouts,
            "failed": self.failed,
            "leased_reads": self.leased_reads,
            "latency_ms": self.latency.percentiles_ms() if self.latency.count else None,
        }

    def __str__(self) -> str:
        if self.latency.count:
            p = self.latency.percentiles_ms()
            tail = (
                f"latency p50 {p['p50']:.3f} / p99 {p['p99']:.3f} / "
                f"p999 {p['p999']:.3f} ms"
            )
        else:
            tail = "latency n/a"
        return (
            f"open-loop: offered {self.offered} ({self.offered_rate_ops:.0f} ops/s), "
            f"goodput {self.goodput_ops:.0f} ops/s ({self.completed} completed), "
            f"shed {self.shed}, timeouts {self.timeouts}, "
            f"leased reads {self.leased_reads}, {tail}"
        )
