"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause.  Subsystems add
more specific subclasses; protocol-level misbehaviour that must be *detected*
rather than raised (Byzantine messages) is reported through return values,
never through exceptions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A replica group, machine, or experiment was configured inconsistently."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly."""


class TrustedSubsystemError(ReproError):
    """Base class for trusted-subsystem (TrInX/USIG/CASH) errors."""


class CounterRegressionError(TrustedSubsystemError):
    """A certificate was requested for a counter value lower than the current one."""


class UnknownCounterError(TrustedSubsystemError):
    """A certificate referenced a counter id outside the configured range."""


class SealedKeyMismatchError(TrustedSubsystemError):
    """Two subsystem instances were initialized with different group secrets."""


class ReplayProtectionError(TrustedSubsystemError):
    """An attempt was made to restart an enclave from stale sealed state."""


class CertificateError(ReproError):
    """A certificate failed structural validation (distinct from *invalid* MACs)."""


class ProtocolError(ReproError):
    """A local protocol invariant was violated (a bug, not a Byzantine peer)."""


class WindowViolationError(ProtocolError):
    """An order number outside the current ordering window was used locally."""


class ServiceError(ReproError):
    """A replicated service rejected an operation (propagated in the reply)."""


class WireError(ReproError):
    """Base class for wire-codec and live-transport errors."""


class WireFormatError(WireError):
    """Received bytes do not parse as a well-formed frame or value."""


class WireIntegrityError(WireError):
    """A frame parsed structurally but its checksum does not match (tampering
    or corruption in transit)."""


class WireUnsupportedTypeError(WireError):
    """A value of an unregistered or non-serializable type was encoded."""


class TransportError(ReproError):
    """The live transport was misused (unknown node, not started, ...)."""
