"""Quorum collectors for matching protocol messages.

A quorum certificate is a set of messages from ``q`` *distinct* replicas
that agree on a key (e.g. the proposal digest of a consensus instance, or
an ``(order, state digest)`` checkpoint pair).  The collectors here track
votes per key, deduplicate senders, and report exactly once when the
quorum is first reached.
"""

from __future__ import annotations

from typing import Any, Hashable


class MatchingQuorum:
    """Collects votes on a single key space; one vote per sender per key."""

    def __init__(self, quorum_size: int):
        if quorum_size < 1:
            raise ValueError("quorum size must be positive")
        self.quorum_size = quorum_size
        self._votes: dict[Hashable, dict[str, Any]] = {}
        self._reached: set[Hashable] = set()

    def add(self, key: Hashable, sender: str, payload: Any = None) -> bool:
        """Record a vote.  Returns True exactly when ``key`` first reaches quorum."""
        votes = self._votes.setdefault(key, {})
        votes.setdefault(sender, payload)
        if key not in self._reached and len(votes) >= self.quorum_size:
            self._reached.add(key)
            return True
        return False

    def count(self, key: Hashable) -> int:
        return len(self._votes.get(key, ()))

    def reached(self, key: Hashable) -> bool:
        return key in self._reached

    def voters(self, key: Hashable) -> set[str]:
        return set(self._votes.get(key, ()))

    def payloads(self, key: Hashable) -> list[Any]:
        return list(self._votes.get(key, {}).values())

    def discard_below(self, threshold: Hashable) -> None:
        """Garbage-collect keys ordered below ``threshold`` (tuple/int keys)."""
        stale = [key for key in self._votes if key < threshold]  # type: ignore[operator]
        for key in stale:
            del self._votes[key]
            self._reached.discard(key)

    def clear(self) -> None:
        self._votes.clear()
        self._reached.clear()
