"""The execution stage (paper §5.3.1–§5.3.2, Figure 4).

One execution stage per replica receives EXEC-REQUEST messages from the
ordering pillars and ensures requests are delivered to the service
implementation in exactly the order of their assigned order numbers,
closing over gaps the parallel ordering may create.  It also:

* answers clients with REPLY messages (one MAC per reply),
* maintains the reply cache (last result per client) that checkpoint
  digests must cover,
* takes the state snapshot at every checkpoint boundary and hands the
  digest to the pillar responsible for that checkpoint,
* serves state-transfer requests from fallen-behind peers out of its
  newest stable snapshot,
* nudges the local proposer pillar via FILL-GAP when the global sequence
  stalls on an order number this replica is responsible for.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.core.config import ReplicaGroupConfig
from repro.crypto.provider import CryptoProvider
from repro.messages.client import Reply, Request
from repro.messages.internal import (
    CkReached,
    CkStable,
    Executed,
    ExecRequest,
    FillGap,
    NvStable,
    ReplyJob,
    ReReply,
    StateInstall,
    StateInstalled,
)
from repro.messages.statetransfer import StateRequest, StateResponse
from repro.services.base import Service
from repro.sim.process import Address, Endpoint, Stage
from repro.sim.resources import SimThread

EXEC_BASE_COST_NS = 250  # queueing/dispatch overhead per delivered instance


class ExecutionStage(Stage):
    """Delivers committed batches to the service in global order."""

    def __init__(
        self,
        endpoint: Endpoint,
        thread: SimThread,
        config: ReplicaGroupConfig,
        replica_id: str,
        service: Service,
        crypto: CryptoProvider,
        reply_payload_size: int = 0,
        name: str = "exec",
    ):
        super().__init__(endpoint, thread, name)
        self.config = config
        self.replica_id = replica_id
        self.service = service
        self.crypto = crypto
        self.reply_payload_size = reply_payload_size

        self.next_order = 1  # the next order number to execute (orders start at 1)
        self._buffer: dict[int, ExecRequest] = {}
        self._reply_cache: dict[str, tuple[int, Any]] = {}
        self.current_view = 0

        # Newest stable checkpoint: (order, snapshot, reply_vector, cert).
        self._stable_checkpoint: tuple[int, Any, tuple, tuple] = (0, service.snapshot(), (), ())
        self._pending_snapshots: dict[int, tuple[Any, tuple]] = {}

        self.executed_requests = 0
        self.executed_instances = 0
        self._gap_timer = None

        # Wired by the replica builder.
        self.pillar_addresses: list[Address] = []
        self.handler_address: Address | None = None
        self.coordinator_address: Address | None = None
        self.replier_addresses: list[Address] = []  # reply egress threads
        self._next_replier = 0

    # ------------------------------------------------------------------
    def on_message(self, src: Address, message: Any) -> None:
        if isinstance(message, ExecRequest):
            self._on_exec_request(message)
        elif isinstance(message, CkStable):
            self._on_checkpoint_stable(message)
        elif isinstance(message, NvStable):
            self.current_view = message.v_to
        elif isinstance(message, StateInstall):
            self._on_state_install(message)
        elif isinstance(message, StateRequest):
            self._on_state_request(src, message)
        elif isinstance(message, ReReply):
            self._on_re_reply(message)

    def _on_re_reply(self, message: ReReply) -> None:
        """Answer a retransmitted request from the reply cache."""
        cached = self._reply_cache.get(message.request.client_id)
        if cached is None:
            return
        request_id, result = cached
        if request_id == message.request.request_id:
            self._send_reply(message.request, result, self.current_view)

    # ------------------------------------------------------------------
    # Ordered delivery
    # ------------------------------------------------------------------
    def _on_exec_request(self, message: ExecRequest) -> None:
        if message.order < self.next_order:
            return  # already executed (e.g. re-committed after a view change)
        self._buffer[message.order] = message
        self._drain()
        self._manage_gap_timer()

    def _drain(self) -> None:
        while self.next_order in self._buffer:
            message = self._buffer.pop(self.next_order)
            self._execute(message)
            self.next_order += 1
            if self.config.is_checkpoint_boundary(message.order):
                self._take_checkpoint(message.order)

    def _execute(self, message: ExecRequest) -> None:
        self.sim.charge(EXEC_BASE_COST_NS)
        executed_keys = []
        replies = []
        for request in message.batch:
            result = self.service.execute(request.operation, request.client_id)
            self.sim.charge(self.service.execution_cost_ns(request.operation))
            self._reply_cache[request.client_id] = (request.request_id, result)
            executed_keys.append(request.key)
            replies.append(self._build_reply(request, result, message.view))
            self.executed_requests += 1
        self.executed_instances += 1
        # Batch identity rides along so the scenarios safety checker can
        # assert cross-replica agreement per order number from merged
        # traces (see repro.scenarios.safety).
        self.trace(
            "execute",
            (message.view, message.order, _batch_digest(message.batch),
             [list(request.key) for request in message.batch]),
        )
        if replies:
            self._dispatch_replies(replies)
        if executed_keys and self.handler_address is not None:
            self.send(self.handler_address, Executed(tuple(executed_keys)))

    def _build_reply(self, request: Request, result: Any, view: int) -> Reply:
        return Reply(
            replica_id=self.replica_id,
            client_id=request.client_id,
            request_id=request.request_id,
            view=view,
            result=result,
            result_size=self.reply_payload_size
            + self.service.reply_payload_size(request.operation, result),
        )

    def _dispatch_replies(self, replies: list[Reply]) -> None:
        if self.replier_addresses:
            # hand MACs + transmission to a client-handling thread
            replier = self.replier_addresses[self._next_replier]
            self._next_replier = (self._next_replier + 1) % len(self.replier_addresses)
            self.send(replier, ReplyJob(tuple(replies)))
            return
        # one vectorized MAC pass over the whole reply batch
        self.crypto.compute_mac_batch(
            b"client-session", [reply.digestible() for reply in replies], size_hint_each=32
        )
        for reply in replies:
            self.send(_client_address(reply.client_id), reply)

    def _send_reply(self, request: Request, result: Any, view: int) -> None:
        self._dispatch_replies([self._build_reply(request, result, view)])

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _take_checkpoint(self, order: int) -> None:
        snapshot = self.service.snapshot()
        reply_vector = tuple(
            (client, request_id, _freeze(result))
            for client, (request_id, result) in sorted(self._reply_cache.items())
        )
        digest = self.crypto.digest(
            ("checkpoint-state", order, self.service.state_digestible(), reply_vector),
            size_hint=max(64, self.service.snapshot_size()),
        )
        self._pending_snapshots[order] = (snapshot, reply_vector)
        pillar = self.config.checkpoint_pillar(order)
        self.send(self.pillar_addresses[pillar], CkReached(order, digest))

    def _on_checkpoint_stable(self, message: CkStable) -> None:
        snapshot_entry = self._pending_snapshots.pop(message.order, None)
        if snapshot_entry is not None and message.order > self._stable_checkpoint[0]:
            snapshot, reply_vector = snapshot_entry
            self._stable_checkpoint = (message.order, snapshot, reply_vector, message.certificate)
        for order in [o for o in self._pending_snapshots if o <= message.order]:
            del self._pending_snapshots[order]

    # ------------------------------------------------------------------
    # State transfer
    # ------------------------------------------------------------------
    def _on_state_request(self, src: Address, message: StateRequest) -> None:
        order, snapshot, reply_vector, certificate = self._stable_checkpoint
        if order < message.min_order:
            return  # nothing newer than what the requester already has
        response = StateResponse(
            replica=self.replica_id,
            checkpoint_order=order,
            checkpoint_certificate=certificate,
            snapshot=(snapshot, reply_vector),
            snapshot_size=max(64, self.service.snapshot_size()),
            view=self.current_view,
        )
        self.send(src, response)

    def _on_state_install(self, message: StateInstall) -> None:
        if message.checkpoint_order < self.next_order:
            self._confirm_install(message.checkpoint_order, True)
            return  # we already executed past this checkpoint
        rollback = self.service.snapshot()
        previous_cache = dict(self._reply_cache)
        self.service.restore(message.snapshot)
        self._reply_cache = {
            client: (request_id, result) for client, request_id, result in message.reply_vector
        }
        if message.expected_digest is not None:
            digest = self.crypto.digest(
                (
                    "checkpoint-state",
                    message.checkpoint_order,
                    self.service.state_digestible(),
                    message.reply_vector,
                ),
                size_hint=max(64, self.service.snapshot_size()),
            )
            if digest != message.expected_digest:
                # the peer lied about the state: roll back and report failure
                self.service.restore(rollback)
                self._reply_cache = previous_cache
                self._confirm_install(message.checkpoint_order, False)
                return
        self.next_order = message.checkpoint_order + 1
        self._buffer = {o: m for o, m in self._buffer.items() if o >= self.next_order}
        self._stable_checkpoint = (
            message.checkpoint_order,
            self.service.snapshot(),
            message.reply_vector,
            self._stable_checkpoint[3],
        )
        if self.handler_address is not None and message.reply_vector:
            # the reply vector reveals which requests the skipped instances
            # executed: update the handler so stale suspicion timers clear
            self.send(
                self.handler_address,
                Executed(tuple((client, request_id) for client, request_id, _ in message.reply_vector)),
            )
        self._confirm_install(message.checkpoint_order, True)
        self._drain()

    def _confirm_install(self, order: int, success: bool) -> None:
        if self.coordinator_address is not None:
            self.send(self.coordinator_address, StateInstalled(order, success))

    # ------------------------------------------------------------------
    # Gap filling
    # ------------------------------------------------------------------
    def _manage_gap_timer(self) -> None:
        if not self._buffer or self.next_order in self._buffer:
            return
        if self._gap_timer is not None:
            return
        self._gap_timer = self.set_timer(self.config.fill_gap_timeout_ns, self._check_gap)

    def _check_gap(self) -> None:
        self._gap_timer = None
        if not self._buffer or self.next_order in self._buffer:
            return
        # the sequence stalls at next_order: nudge the pillar that owns it
        pillar = self.config.pillar_of_order(self.next_order)
        self.send(self.pillar_addresses[pillar], FillGap(self.next_order))
        self._manage_gap_timer()

    # ------------------------------------------------------------------
    @property
    def stable_checkpoint_order(self) -> int:
        return self._stable_checkpoint[0]

    def reply_cache_entry(self, client_id: str) -> tuple[int, Any] | None:
        return self._reply_cache.get(client_id)


class ReplierStage(Stage):
    """Reply egress: MACs and transmits replies on its own thread.

    The prototype dedicates "multiple threads for the client handling";
    these stages are their outbound half — they keep per-reply MAC and
    socket costs off the execution stage's critical path.
    """

    def __init__(self, endpoint: Endpoint, thread: SimThread, crypto: CryptoProvider, name: str):
        super().__init__(endpoint, thread, name)
        self.crypto = crypto
        self.replies_sent = 0

    def on_message(self, src: Address, message: Any) -> None:
        if not isinstance(message, ReplyJob):
            return
        self.crypto.compute_mac_batch(
            b"client-session",
            [reply.digestible() for reply in message.replies],
            size_hint_each=32,
        )
        for reply in message.replies:
            self.send(_client_address(reply.client_id), reply)
            self.replies_sent += 1


def _client_address(client_id: str) -> tuple[str, str]:
    """Clients identify as "node:stage"; plain ids map to a "client" stage."""
    if ":" in client_id:
        node, stage = client_id.split(":", 1)
        return (node, stage)
    return (client_id, "client")


def _batch_digest(batch: tuple) -> str:
    """A short content digest of a batch: request identity *and* payload.

    Two replicas executing different request content at the same order —
    e.g. after a successful equivocation — produce different digests even
    when client ids and request ids coincide.
    """
    material = repr(
        tuple((r.client_id, r.request_id, _freeze(r.operation)) for r in batch)
    ).encode("utf-8")
    return hashlib.sha256(material).hexdigest()[:16]


def _freeze(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    return value
