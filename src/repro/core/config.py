"""Replica-group configuration and hybrid fault-model arithmetic.

Hybster tolerates ``f = floor((n-1)/2)`` faults among ``n`` replicas with
quorums of ``q = ceil((n+1)/2)`` — the conditions ``2q > n`` (two quorums
always intersect) and ``n >= q + f`` (correct replicas alone can form a
quorum) then hold, and every quorum contains at least one correct replica
(``q > f``).  The canonical deployment is ``n = 3``, ``f = 1``, ``q = 2``.

The configuration also fixes everything the paper assumes is provisioned
out of band by the trusted administrator: the group secret shared by all
TrInX instances, the number of pillars per replica (identical across the
group, so receivers know how many parts a split view-change message has
and which TrInX instance must certify which order number), and the
protocol's tuning knobs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.core.seqnum import DEFAULT_ORDER_BITS

# Trusted counter ids inside each TrInX instance (fixed-leader layout; with
# a rotating leader the ordering uses one counter per proposer lane and the
# trusted-MAC counter moves behind them — see ReplicaGroupConfig).
COUNTER_O = 0  # ordering + view-change counter
COUNTER_M = 1  # trusted-MAC counter for checkpoints

MILLISECOND = 1_000_000


@dataclass(frozen=True)
class ReplicaGroupConfig:
    """Static configuration shared by all replicas and clients of a group."""

    replica_ids: tuple[str, ...]
    group_secret: bytes = b"hybster-group-secret-0000000000!"
    num_pillars: int = 1
    order_bits: int = DEFAULT_ORDER_BITS
    checkpoint_interval: int = 128
    window_size: int = 256
    batch_size: int = 1
    # how long an idle proposer holds a partial batch hoping to fill it
    # (0 = release immediately, the adaptive-batching default)
    batch_linger_ns: int = 0
    rotation: bool = False
    request_timeout_ns: int = 150 * MILLISECOND
    viewchange_timeout_ns: int = 150 * MILLISECOND
    retransmit_interval_ns: int = 60 * MILLISECOND
    fill_gap_timeout_ns: int = 3 * MILLISECOND
    # rotation mode: how long a proposer waits for client requests before
    # releasing its slot with an empty (no-op) instance
    noop_delay_ns: int = MILLISECOND // 2

    def __post_init__(self) -> None:
        if len(self.replica_ids) < 3:
            raise ConfigurationError("hybrid BFT needs at least n = 3 replicas (2f+1, f >= 1)")
        if len(set(self.replica_ids)) != len(self.replica_ids):
            raise ConfigurationError("replica ids must be unique")
        if self.num_pillars < 1:
            raise ConfigurationError("at least one pillar per replica")
        if self.checkpoint_interval < 1:
            raise ConfigurationError("checkpoint interval must be positive")
        if self.window_size < 2 * self.checkpoint_interval:
            raise ConfigurationError(
                "window must cover at least two checkpoint intervals "
                f"(window={self.window_size}, interval={self.checkpoint_interval})"
            )
        if self.batch_size < 1:
            raise ConfigurationError("batch size must be positive")
        if self.batch_linger_ns < 0:
            raise ConfigurationError("batch linger must be non-negative")

    # ------------------------------------------------------------------
    # Fault-model arithmetic
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.replica_ids)

    @property
    def f(self) -> int:
        """Maximum number of tolerated faulty replicas."""
        return (self.n - 1) // 2

    @property
    def quorum_size(self) -> int:
        """Minimum quorum: ``q = ceil((n+1)/2)``."""
        return (self.n + 2) // 2 if self.n % 2 == 0 else (self.n + 1) // 2

    # ------------------------------------------------------------------
    # Roles
    # ------------------------------------------------------------------
    def primary_of_view(self, view: int) -> str:
        """The distinguished leader ``l = v mod n`` of a view."""
        return self.replica_ids[view % self.n]

    def proposer_of(self, view: int, order: int) -> str:
        """Which replica proposes order number ``order`` in ``view``.

        With a fixed leader this is the view's primary; with a rotating
        leader the proposer role rotates over order numbers so every
        replica shares the proposal load (the consensus-oriented
        parallelization rotation scheme of §6.2).
        """
        if not self.rotation:
            return self.primary_of_view(view)
        # rotate per class step (order // P), not per order: this spreads the
        # proposer role over *every* pillar of every replica even when the
        # pillar count and the group size share a divisor
        return self.replica_ids[(view + order // self.num_pillars) % self.n]

    def pillar_of_order(self, order: int) -> int:
        """Statically assigned pillar for an order number (COP partition)."""
        return order % self.num_pillars

    # ------------------------------------------------------------------
    # Ordering lanes and trusted counters
    # ------------------------------------------------------------------
    # With a fixed leader every order number belongs to one *lane* (0) and
    # each pillar certifies with a single ordering counter.  With a rotating
    # leader the proposer role rotates over order numbers; binding them all
    # to one counter would serialize the whole pillar class on network
    # round-trips between proposers.  TrInX therefore dedicates one ordering
    # counter per proposer lane (its interface supports multiple counters
    # for exactly this kind of partitioning): monotonicity — and thus the
    # strictly ascending processing order — applies per lane only.

    @property
    def num_lanes(self) -> int:
        return self.n if self.rotation else 1

    def lane_of(self, view: int, order: int) -> int:
        """The lane of an order number = the index of its proposer."""
        if not self.rotation:
            return 0
        return (view + order // self.num_pillars) % self.n

    def ordering_counter(self, lane: int) -> int:
        """Trusted counter id a pillar uses for orders of ``lane``."""
        return lane

    @property
    def mac_counter(self) -> int:
        """Trusted-MAC counter id (checkpoints), behind the ordering lanes."""
        return self.num_lanes

    @property
    def counters_per_instance(self) -> int:
        return self.num_lanes + 1

    @property
    def lane_stride(self) -> int:
        """Distance between consecutive orders of one (pillar, lane) pair."""
        return self.num_pillars * self.num_lanes

    def proposing_pillars(self, replica_id: str, view: int) -> list[int]:
        """Pillars on which ``replica_id`` proposes order numbers in ``view``.

        With a fixed leader the primary proposes on every pillar (and the
        followers on none); with rotation the proposer assignment cycles
        with period lcm(P, n), which may concentrate a replica's slots on
        a subset of pillars (e.g. exactly one when P == n).
        """
        pillars = []
        for pillar in range(self.num_pillars):
            order = pillar if pillar > 0 else self.num_pillars
            for step in range(self.num_lanes):
                candidate = pillar + step * self.num_pillars
                if candidate == 0:
                    candidate = self.num_pillars * self.num_lanes
                if self.proposer_of(view, candidate) == replica_id:
                    pillars.append(pillar)
                    break
        return pillars

    def proposer_replica_for_client(self, client_id: str, view: int) -> str:
        """Where a client's requests get proposed.

        Fixed-leader mode: the view's primary.  Rotation mode: clients are
        statically partitioned over replicas so no request is proposed
        twice.
        """
        if not self.rotation:
            return self.primary_of_view(view)
        bucket = _stable_hash(client_id) % self.n
        return self.replica_ids[bucket]

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def is_checkpoint_boundary(self, order: int) -> bool:
        """Order numbers start at 1; checkpoints fall on interval multiples."""
        return order % self.checkpoint_interval == 0

    def checkpoint_number(self, order: int) -> int:
        """Index of the checkpoint taken after executing ``order``."""
        return order // self.checkpoint_interval

    def checkpoint_pillar(self, order: int) -> int:
        """Shared checkpointing: the k-th checkpoint is run by pillar k mod P."""
        return self.checkpoint_number(order) % self.num_pillars

    # ------------------------------------------------------------------
    # Identities
    # ------------------------------------------------------------------
    def trinx_instance_id(self, replica_id: str, pillar: int) -> str:
        """Public TrInX instance id of a replica's pillar (group knowledge)."""
        return f"{replica_id}/tss{pillar}"

    def index_of(self, replica_id: str) -> int:
        return self.replica_ids.index(replica_id)


def _stable_hash(text: str) -> int:
    """Deterministic string hash (Python's builtin is salted per process)."""
    value = 0
    for char in text.encode("utf-8"):
        value = (value * 131 + char) % 1_000_000_007
    return value
