"""The client handler stage.

Receives REQUEST messages from clients, verifies their MACs, deduplicates
retries, and either hands the requests to an ordering pillar (when this
replica is the proposer for the issuing client in the current view) or
arms a view-change suspicion timer (when it is not — a follower that sees
a client request directly has evidence the client already retried, and if
the leader never orders it, the leader is suspect; paper §5.2.3).

Across view changes the handler reconciles its in-flight table with the
NEW-VIEW: requests the new view re-proposed are left alone; requests that
were lost with the old view are proposed again if this replica became the
proposer (safe: a request that ever committed is guaranteed to appear in
the new view's re-proposals, so "not covered" implies "never executed"),
or re-armed with a suspicion timer otherwise.
"""

from __future__ import annotations

from typing import Any

from repro.core.config import ReplicaGroupConfig, _stable_hash
from repro.crypto.provider import CryptoProvider
from repro.messages.client import Request, RequestBurst
from repro.messages.internal import Executed, OrderRequest, ReReply, RequestVc, ViewInstalled
from repro.sim.process import Address, Endpoint, Stage
from repro.sim.resources import SimThread


class _InFlight:
    __slots__ = ("request", "timer", "proposed")

    def __init__(self, request: Request, timer=None, proposed: bool = False):
        self.request = request
        self.timer = timer
        self.proposed = proposed


class ClientHandler(Stage):
    """Ingests client requests for one replica."""

    def __init__(
        self,
        endpoint: Endpoint,
        thread: SimThread,
        config: ReplicaGroupConfig,
        replica_id: str,
        crypto: CryptoProvider,
        name: str = "handler",
    ):
        super().__init__(endpoint, thread, name)
        self.config = config
        self.replica_id = replica_id
        self.crypto = crypto
        self.view = 0

        self._executed_watermark: dict[str, int] = {}
        self._in_flight: dict[tuple[str, int], _InFlight] = {}
        self._proposing_pillars = config.proposing_pillars(replica_id, 0)
        self._next_pillar = 0
        # Gateway deployments pin each client (session) to one ordering
        # pillar by a stable hash of its id, so a session's requests stay
        # in one COP lane; the default round-robin spreads single clients
        # across pillars for maximum parallelism.
        self.sticky_client_pillars = False
        self.requests_accepted = 0
        self.duplicates_dropped = 0

        # Wired by the replica builder.
        self.pillar_addresses: list[Address] = []
        self.exec_address: Address | None = None
        self.coordinator_address: Address | None = None

    # ------------------------------------------------------------------
    def on_message(self, src: Address, message: Any) -> None:
        if isinstance(message, Request):
            self._on_request(message)
        elif isinstance(message, RequestBurst):
            self._on_burst(message)
        elif isinstance(message, Executed):
            self._on_executed(message)
        elif isinstance(message, ViewInstalled):
            self._on_view_installed(message)

    # ------------------------------------------------------------------
    def _on_burst(self, burst: RequestBurst) -> None:
        """Admit a whole burst, grouping accepted requests per pillar.

        Each pillar receives one OrderRequest covering its share of the
        burst rather than one message per request, so a proposer can fill
        a whole batch from a single client window refill.
        """
        groups: dict[int, list[Request]] = {}
        for request in burst.requests:
            self._on_request(request, groups)
        for index, requests in groups.items():
            self.send(self.pillar_addresses[index], OrderRequest(tuple(requests)))

    def _on_request(self, request: Request, groups: dict[int, list[Request]] | None = None) -> None:
        # request MACs are verified on the ordering pillars (spreading the
        # crypto across cores); the handler only routes and deduplicates
        watermark = self._executed_watermark.get(request.client_id, -1)
        if request.request_id <= watermark:
            # already executed: serve the retry from the reply cache
            self.duplicates_dropped += 1
            if self.exec_address is not None:
                self.send(self.exec_address, ReReply(request))
            return
        if request.key in self._in_flight:
            self.duplicates_dropped += 1
            return

        if self._is_proposer_for(request.client_id):
            self._in_flight[request.key] = _InFlight(request, proposed=True)
            self.requests_accepted += 1
            self._propose(request, groups)
        else:
            # follower: the client evidently retried — watch the leader
            entry = _InFlight(request)
            entry.timer = self.set_timer(self.config.request_timeout_ns, self._suspect, request.key)
            self._in_flight[request.key] = entry

    def _is_proposer_for(self, client_id: str) -> bool:
        return self.config.proposer_replica_for_client(client_id, self.view) == self.replica_id

    def _propose(self, request: Request, groups: dict[int, list[Request]] | None = None) -> None:
        if not self._proposing_pillars:
            return  # we propose nowhere in this view (fixed-leader follower)
        if self.sticky_client_pillars:
            slot = _stable_hash(request.client_id) % len(self._proposing_pillars)
        else:
            slot = self._next_pillar % len(self._proposing_pillars)
            self._next_pillar += 1
        index = self._proposing_pillars[slot]
        if groups is not None:
            groups.setdefault(index, []).append(request)
        else:
            self.send(self.pillar_addresses[index], OrderRequest((request,)))

    def _suspect(self, key: tuple[str, int]) -> None:
        entry = self._in_flight.get(key)
        if entry is None:
            return
        entry.timer = None
        if self.coordinator_address is not None:
            self.send(
                self.coordinator_address,
                RequestVc(reason=f"request {key} not executed in time", suspected_view=self.view),
            )

    def _on_executed(self, message: Executed) -> None:
        jumped_clients = []
        for key in message.keys:
            client_id, request_id = key
            current = self._executed_watermark.get(client_id, -1)
            if request_id > current:
                self._executed_watermark[client_id] = request_id
                if request_id > current + 1:
                    jumped_clients.append(client_id)
            entry = self._in_flight.pop(key, None)
            if entry is not None and entry.timer is not None:
                self.cancel_timer(entry.timer)
        if jumped_clients:
            # a watermark jump (state transfer) retires whole ranges of
            # requests at once: clear their leftover suspicion entries
            jumped = set(jumped_clients)
            for key, entry in list(self._in_flight.items()):
                client_id, request_id = key
                if client_id in jumped and request_id <= self._executed_watermark[client_id]:
                    if entry.timer is not None:
                        self.cancel_timer(entry.timer)
                    del self._in_flight[key]

    def _on_view_installed(self, message: ViewInstalled) -> None:
        self.view = message.view
        self._proposing_pillars = self.config.proposing_pillars(self.replica_id, self.view)
        covered = set(message.covered_keys)
        for key, entry in list(self._in_flight.items()):
            if entry.timer is not None:
                self.cancel_timer(entry.timer)
                entry.timer = None
            if key in covered:
                # the NEW-VIEW re-proposed it; execution will clear the entry
                entry.proposed = True
                continue
            if self._is_proposer_for(entry.request.client_id):
                # safe to (re-)propose: an uncovered request never committed
                entry.proposed = True
                self._propose(entry.request)
            else:
                entry.proposed = False
                entry.timer = self.set_timer(self.config.request_timeout_ns, self._suspect, key)
