"""The view-change coordinator (paper §5.2.3, §5.3.3).

One pillar per replica (pillar 0 in this implementation; the paper lets
any pillar coordinate) runs the replica-wide view-change state machine on
*combined* messages, i.e. after all per-pillar parts of a split
VIEW-CHANGE / NEW-VIEW / NEW-VIEW-ACK have arrived and been verified.

The three safety mechanisms of Hybster's relaxed view change live here:

1. **Continuing counter certificates** — enforced at the pillars: a
   VIEW-CHANGE's unforgeable previous counter value reveals the last
   instance its sender participated in, so concealment of potentially
   committed proposals is impossible (while *harmless* history, like the
   cleaned counter of a faulty replica that never shows an intermediate
   certificate, may legitimately disappear).
2. **View-change certificates** — a replica that followed a leader of
   view ``v`` supports a leader of ``v* > v+1`` only once it holds a
   quorum of VIEW-CHANGEs for ``v*-1``; the quorum is guaranteed to
   contain every relevant PREPARE, which the coordinator absorbs into
   ``known_prepares`` and propagates in later VIEW-CHANGEs.
3. **New-view acknowledgments** — a NEW-VIEW for ``w`` based on view
   ``b`` needs f+1 confirmations that ``b`` was properly established:
   VIEW-CHANGEs with ``v_from == b`` or explicit NEW-VIEW-ACKs sent by
   replicas that accepted the NEW-VIEW for ``b`` after aborting it.

Unbounded histories never arise: all stored artifacts are bounded by the
ordering window and the number of replicas, and state transfer (not
message logs) covers replicas that fell arbitrarily far behind.
"""

from __future__ import annotations

from typing import Any

from repro.core.config import ReplicaGroupConfig
from repro.crypto.digests import digest as free_digest
from repro.messages.checkpointing import Checkpoint
from repro.messages.internal import (
    AckReady,
    CkStable,
    ForwardAck,
    ForwardNv,
    ForwardVc,
    NvReady,
    NvStable,
    PrepareVc,
    RequestState,
    RequestVc,
    ResendNv,
    ResendVc,
    StateInstall,
    StateInstalled,
    UnitVc,
    VcReady,
    ViewInstalled,
)
from repro.messages.ordering import Prepare
from repro.messages.statetransfer import StateRequest, StateResponse
from repro.messages.viewchange import NewView, NewViewAck, ViewChange

_COORDINATOR_MESSAGES = (
    RequestVc,
    UnitVc,
    ForwardVc,
    ForwardNv,
    ForwardAck,
    RequestState,
    StateInstalled,
    StateResponse,
)


class _Combined:
    """Accumulates the per-pillar parts of one split external message."""

    def __init__(self, num_parts: int):
        self.num_parts = num_parts
        self.parts: dict[int, Any] = {}

    def add(self, part: Any) -> bool:
        """Store a part; True when the message just became complete."""
        if part.pillar in self.parts:
            return False
        self.parts[part.pillar] = part
        return len(self.parts) == self.num_parts

    @property
    def complete(self) -> bool:
        return len(self.parts) == self.num_parts

    def all_parts(self) -> list[Any]:
        return [self.parts[i] for i in sorted(self.parts)]

    def all_prepares(self) -> list[Prepare]:
        return [prepare for part in self.parts.values() for prepare in part.prepares]


class ViewChangeCoordinator:
    """Replica-wide view-change logic, hosted on pillar 0."""

    def __init__(self, host) -> None:  # host: repro.core.pillar.Pillar
        self.host = host
        self.config: ReplicaGroupConfig = host.config

        self.stable_view = 0
        self.pending_view: int | None = None
        self.last_accepted_view = 0  # the v_from of our next VIEW-CHANGE
        self._attempts = 0
        self._vc_timer = None
        self._last_resend_ns = 0

        self._collecting: tuple[int, dict[int, UnitVc]] | None = None
        self._vc_store: dict[tuple[int, str], _Combined] = {}  # (v_to, replica)
        self._combined_vcs: dict[int, dict[str, _Combined]] = {}
        self.vc_certificates: set[int] = set()
        self._nv_store: dict[int, _Combined] = {}  # v_to -> combined NEW-VIEW
        self._ack_store: dict[tuple[int, str], _Combined] = {}
        self._combined_acks: dict[int, dict[str, _Combined]] = {}
        self._processed_new_views: set[int] = set()  # NEW-VIEWs accepted/installed
        self._nv_built: set[int] = set()  # views whose NEW-VIEW we issued as leader

        self.known_prepares: dict[int, Prepare] = {}
        self.checkpoint_order = 0  # 0 = the genesis checkpoint
        self.checkpoint_certificate: tuple[Checkpoint, ...] = ()

        self._transfer_in_flight: int | None = None
        self._pending_checkpoint_cert: tuple[int, tuple[Checkpoint, ...]] | None = None
        self._stalled_vcs: list[_Combined] = []
        self._stalled_nvs: list[_Combined] = []

        # Wired by the replica builder.
        self.local_pillar_addresses: list = []
        self.exec_address = None
        self.handler_address = None
        self.peer_exec_addresses: dict[str, Any] = {}

        self.view_changes_completed = 0

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    @property
    def me(self) -> str:
        return self.host.replica_id

    def handles(self, message: Any) -> bool:
        return isinstance(message, _COORDINATOR_MESSAGES)

    def on_message(self, src, message: Any) -> None:
        if isinstance(message, RequestVc):
            self._on_request_vc(message)
        elif isinstance(message, UnitVc):
            self._on_unit_vc(message)
        elif isinstance(message, ForwardVc):
            self._on_forward_vc(message.part)
        elif isinstance(message, ForwardNv):
            self._on_forward_nv(message.part)
        elif isinstance(message, ForwardAck):
            self._on_forward_ack(message.part)
        elif isinstance(message, RequestState):
            self._start_state_transfer(message.checkpoint_order, message.source)
        elif isinstance(message, StateInstalled):
            self._on_state_installed(message)
        elif isinstance(message, StateResponse):
            self._on_state_response(message)

    def _send_to_pillars(self, message: Any) -> None:
        for address in self.local_pillar_addresses:
            self.host.send(address, message)

    def note_checkpoint(self, order: int, certificate: tuple[Checkpoint, ...]) -> None:
        """Pillar 0 observed a stable checkpoint (called synchronously)."""
        if order <= self.checkpoint_order:
            return
        self.checkpoint_order = order
        self.checkpoint_certificate = certificate
        for stale in [o for o in self.known_prepares if o <= order]:
            del self.known_prepares[stale]

    # ------------------------------------------------------------------
    # Aborting a view
    # ------------------------------------------------------------------
    def _current_target(self) -> int:
        return self.pending_view if self.pending_view is not None else self.stable_view

    def _allowed(self, v_to: int) -> bool:
        """The view-change certificate rule (safety mechanism 2)."""
        if v_to <= self._current_target():
            return False
        return v_to == self.stable_view + 1 or (v_to - 1) in self.vc_certificates

    def _on_request_vc(self, message: RequestVc) -> None:
        if message.suspected_view < self.stable_view:
            return  # stale suspicion from before the last view change
        if self.pending_view is not None:
            # a view change is already in progress; if peers show signs of
            # life in our pending view, re-multicast our VIEW-CHANGE so a
            # recovered connection can complete it (rate-limited)
            now = self.host.now
            if now - self._last_resend_ns >= self.config.viewchange_timeout_ns // 2:
                self._last_resend_ns = now
                self._send_to_pillars(ResendVc(self.pending_view))
            return
        if message.resend_only:
            return  # a nudge never starts a fresh view change
        self._abort_to(self.stable_view + 1)

    def _abort_to(self, v_to: int) -> None:
        if not self._allowed(v_to):
            return
        if self._collecting is not None and self._collecting[0] >= v_to:
            return
        self._collecting = (v_to, {})
        self._send_to_pillars(PrepareVc(v_to))

    def _on_unit_vc(self, message: UnitVc) -> None:
        if self._collecting is None or self._collecting[0] != message.v_to:
            return
        v_to, units = self._collecting
        units[message.pillar] = message
        if len(units) < self.config.num_pillars:
            return
        self._collecting = None
        if v_to <= self._current_target() and self.pending_view is None:
            # the view established itself while we were collecting (a
            # NEW-VIEW arrived and was installed): the abort is obsolete,
            # and issuing it now would regress the pillars' counters
            return
        # merge what the pillars know with what earlier view-change
        # certificates taught us, newest view per order number winning
        merged: dict[int, Prepare] = {}
        for unit in units.values():
            for prepare in unit.prepares:
                self._consider_prepare(merged, prepare)
        for prepare in self.known_prepares.values():
            self._consider_prepare(merged, prepare)
        prepares_by_pillar = self._split_by_pillar(
            [merged[order] for order in sorted(merged) if order > self.checkpoint_order]
        )
        self.pending_view = v_to
        self._send_to_pillars(
            VcReady(
                v_from=self.last_accepted_view,
                v_to=v_to,
                checkpoint_order=self.checkpoint_order,
                checkpoint_certificate=self.checkpoint_certificate,
                prepares_by_pillar=prepares_by_pillar,
            )
        )
        self._restart_vc_timer()

    def _consider_prepare(self, table: dict[int, Prepare], prepare: Prepare) -> None:
        if prepare.order <= self.checkpoint_order:
            return
        current = table.get(prepare.order)
        if current is None or prepare.view > current.view:
            table[prepare.order] = prepare

    def _split_by_pillar(self, prepares: list[Prepare]) -> tuple[tuple[Prepare, ...], ...]:
        buckets: list[list[Prepare]] = [[] for _ in range(self.config.num_pillars)]
        for prepare in prepares:
            buckets[self.config.pillar_of_order(prepare.order)].append(prepare)
        return tuple(tuple(bucket) for bucket in buckets)

    def _restart_vc_timer(self) -> None:
        if self._vc_timer is not None:
            self.host.cancel_timer(self._vc_timer)
        # exponential backoff, capped: the partially synchronous model only
        # needs timeouts to eventually exceed the (finite) message delay
        duration = self.config.viewchange_timeout_ns * (2 ** min(self._attempts, 3))
        self._attempts += 1
        self._vc_timer = self.host.set_timer(duration, self._on_vc_timeout)

    def _on_vc_timeout(self) -> None:
        self._vc_timer = None
        if self.pending_view is None:
            return
        next_view = self.pending_view + 1
        if self._allowed(next_view):
            self._abort_to(next_view)
        else:
            # cannot move on without a view-change certificate: re-multicast
            # our VIEW-CHANGE so slow/recovered replicas can complete it
            self._send_to_pillars(ResendVc(self.pending_view))
            self._restart_vc_timer()

    # ------------------------------------------------------------------
    # Collecting VIEW-CHANGEs
    # ------------------------------------------------------------------
    def _on_forward_vc(self, part: ViewChange) -> None:
        key = (part.v_to, part.replica)
        combined = self._vc_store.get(key)
        if combined is None:
            combined = self._vc_store[key] = _Combined(self.config.num_pillars)
        if not combined.add(part):
            return
        parts = combined.all_parts()
        if len({(p.v_from, p.checkpoint_order) for p in parts}) != 1:
            del self._vc_store[key]  # inconsistent parts: Byzantine sender
            return
        self._consider_combined_vc(combined)

    def _consider_combined_vc(self, combined: _Combined) -> None:
        part0 = combined.all_parts()[0]
        v_to, replica = part0.v_to, part0.replica
        if v_to <= self.stable_view:
            self._help_lagging_replica(v_to, replica)
            return
        if part0.checkpoint_order > self.checkpoint_order:
            # adapt our own window first (state transfer), as §5.2.3 requires
            self._stalled_vcs.append(combined)
            self._start_state_transfer(part0.checkpoint_order, replica)
            return
        self._combined_vcs.setdefault(v_to, {})[replica] = combined
        if len(self._combined_vcs[v_to]) >= self.config.quorum_size:
            if v_to not in self.vc_certificates:
                self.vc_certificates.add(v_to)
                for peer_combined in self._combined_vcs[v_to].values():
                    self._absorb_prepares(peer_combined.all_prepares())
            self._try_build_new_view(v_to)
        self._consider_joining()

    def _absorb_prepares(self, prepares: list[Prepare]) -> None:
        for prepare in prepares:
            self._consider_prepare(self.known_prepares, prepare)

    def _consider_joining(self) -> None:
        """Join a higher view once >= f other replicas evidence it."""
        target = self._current_target()
        evidence: dict[int, set[str]] = {}
        for (v_to, replica), combined in self._vc_store.items():
            if v_to > target and replica != self.me:
                evidence.setdefault(v_to, set()).add(replica)
        for v_to in sorted(evidence, reverse=True):
            if len(evidence[v_to]) >= max(1, self.config.f):
                if self._allowed(v_to):
                    self._abort_to(v_to)
                    return
                if self.pending_view is None and v_to > self.stable_view + 1:
                    # we cannot jump without certificates; start moving
                    self._abort_to(self.stable_view + 1)
                    return

    def _help_lagging_replica(self, v_to: int, replica: str) -> None:
        """A peer is view-changing into a view we already passed."""
        if self.config.primary_of_view(v_to) == self.me and v_to in self._nv_built:
            self._send_to_pillars(ResendNv(v_to, replica))
        elif self.config.primary_of_view(self.stable_view) == self.me and self.stable_view in self._nv_built:
            self._send_to_pillars(ResendNv(self.stable_view, replica))

    # ------------------------------------------------------------------
    # Building a NEW-VIEW (as designated leader)
    # ------------------------------------------------------------------
    def _try_build_new_view(self, v_to: int) -> None:
        if self.config.primary_of_view(v_to) != self.me:
            return
        if self.pending_view != v_to or v_to in self._nv_built:
            return
        combined = self._combined_vcs.get(v_to, {})
        if len(combined) < self.config.quorum_size:
            return
        parts0 = {replica: c.all_parts()[0] for replica, c in combined.items()}
        base_view = max(part.v_from for part in parts0.values())
        if not self._base_view_confirmed(base_view, parts0):
            return
        max_checkpoint = max(part.checkpoint_order for part in parts0.values())
        if max_checkpoint > self.checkpoint_order:
            return  # state transfer still in progress; retried on install

        assignments: dict[int, Prepare] = {}
        for peer_combined in combined.values():
            for prepare in peer_combined.all_prepares():
                self._consider_prepare(assignments, prepare)
        for order, prepare in self.known_prepares.items():
            self._consider_prepare(assignments, prepare)

        top = max(assignments, default=self.checkpoint_order)
        self._nv_built.add(v_to)
        reproposals: list[tuple[int, tuple]] = []
        for order in range(self.checkpoint_order + 1, top + 1):
            prepare = assignments.get(order)
            reproposals.append((order, prepare.batch if prepare is not None else ()))
        by_pillar: list[list[tuple[int, tuple]]] = [[] for _ in range(self.config.num_pillars)]
        for order, batch in reproposals:
            by_pillar[self.config.pillar_of_order(order)].append((order, batch))

        all_vc_parts = tuple(
            part for peer_combined in combined.values() for part in peer_combined.all_parts()
        )
        ack_parts = tuple(
            part
            for peer_combined in self._combined_acks.get(base_view, {}).values()
            for part in peer_combined.all_parts()
        )
        self._send_to_pillars(
            NvReady(
                v_to=v_to,
                base_view=base_view,
                checkpoint_order=self.checkpoint_order,
                checkpoint_certificate=self.checkpoint_certificate,
                view_changes=all_vc_parts,
                acks=ack_parts,
                prepares_by_pillar=tuple(tuple(bucket) for bucket in by_pillar),
            )
        )

    def _base_view_confirmed(self, base_view: int, parts0: dict[str, ViewChange]) -> bool:
        """Safety mechanism 3: f+1 witnesses that base_view was established."""
        if base_view == 0:
            return True  # view 0 is established by definition
        witnesses = {replica for replica, part in parts0.items() if part.v_from == base_view}
        witnesses |= set(self._combined_acks.get(base_view, ()))
        if base_view == self.stable_view or base_view in self._processed_new_views:
            witnesses.add(self.me)
        return len(witnesses) >= self.config.f + 1

    # ------------------------------------------------------------------
    # Processing NEW-VIEWs
    # ------------------------------------------------------------------
    def _on_forward_nv(self, part: NewView) -> None:
        combined = self._nv_store.get(part.v_to)
        if combined is None:
            combined = self._nv_store[part.v_to] = _Combined(self.config.num_pillars)
        if not combined.add(part):
            return
        parts = combined.all_parts()
        if len({(p.leader, p.base_view, p.checkpoint_order) for p in parts}) != 1:
            del self._nv_store[part.v_to]
            return
        self._consider_new_view(combined)

    def _consider_new_view(self, combined: _Combined) -> None:
        part0 = combined.all_parts()[0]
        v_to = part0.v_to
        if v_to in self._processed_new_views or v_to < self.stable_view:
            return
        if part0.leader != self.me and not self._validate_new_view(combined):
            return
        if part0.checkpoint_order > self.checkpoint_order:
            self._stalled_nvs.append(combined)
            self._start_state_transfer(part0.checkpoint_order, part0.leader)
            return
        self._processed_new_views.add(v_to)
        if self.pending_view is not None and self.pending_view > v_to:
            # we already support a later view: acknowledge and propagate
            self.last_accepted_view = max(self.last_accepted_view, v_to)
            self._absorb_prepares(combined.all_prepares())
            self._send_to_pillars(
                AckReady(v_to, self._split_by_pillar(sorted_prepares(combined)))
            )
            return
        self._install_new_view(v_to, combined)

    def _validate_new_view(self, combined: _Combined) -> bool:
        """Check the new-view certificate and the re-proposal set."""
        parts = combined.all_parts()
        part0 = parts[0]
        nested: dict[str, list[ViewChange]] = {}
        for part in parts:
            for view_change in part.view_changes:
                if view_change.v_to != part0.v_to:
                    return False
                nested.setdefault(view_change.replica, []).append(view_change)
        complete = {
            replica: vc_parts
            for replica, vc_parts in nested.items()
            if len({p.pillar for p in vc_parts}) == self.config.num_pillars
            and len({(p.v_from, p.checkpoint_order) for p in vc_parts}) == 1
        }
        if len(complete) < self.config.quorum_size:
            return False
        base_view = part0.base_view
        if max(parts_list[0].v_from for parts_list in complete.values()) > base_view:
            return False
        if base_view > 0:
            witnesses = {
                replica
                for replica, vc_parts in complete.items()
                if vc_parts[0].v_from == base_view
            }
            ack_replicas: dict[str, set[int]] = {}
            for part in parts:
                for ack in part.acks:
                    if ack.view == base_view:
                        ack_replicas.setdefault(ack.replica, set()).add(ack.pillar)
            witnesses |= {
                replica
                for replica, pillars in ack_replicas.items()
                if len(pillars) == self.config.num_pillars
            }
            if base_view == self.stable_view or base_view in self._processed_new_views:
                witnesses.add(self.me)
            if len(witnesses) < self.config.f + 1:
                return False
        # the re-proposals must reflect exactly the newest assignment per
        # order found in the certificate (no concealment, no invention)
        expected: dict[int, Prepare] = {}
        for vc_parts in complete.values():
            for view_change in vc_parts:
                for prepare in view_change.prepares:
                    if prepare.order > part0.checkpoint_order:
                        current = expected.get(prepare.order)
                        if current is None or prepare.view > current.view:
                            expected[prepare.order] = prepare
        included = {prepare.order: prepare for part in parts for prepare in part.prepares}
        top = max(expected, default=part0.checkpoint_order)
        for order in range(part0.checkpoint_order + 1, top + 1):
            new_prepare = included.get(order)
            if new_prepare is None:
                return False
            want = expected.get(order)
            want_digest = (
                free_digest(("proposal-content", tuple(r.digestible() for r in want.batch)))
                if want is not None
                else free_digest(("proposal-content", ()))
            )
            have_digest = free_digest(
                ("proposal-content", tuple(r.digestible() for r in new_prepare.batch))
            )
            if want_digest != have_digest:
                return False
        return True

    def _install_new_view(self, v_to: int, combined: _Combined) -> None:
        part0 = combined.all_parts()[0]
        self.stable_view = v_to
        self.last_accepted_view = v_to
        self.pending_view = None
        self._attempts = 0
        if self._vc_timer is not None:
            self.host.cancel_timer(self._vc_timer)
            self._vc_timer = None
        self._absorb_prepares(combined.all_prepares())
        self.note_checkpoint(part0.checkpoint_order, part0.checkpoint_certificate)
        prepares = sorted_prepares(combined)
        self._send_to_pillars(
            NvStable(
                v_to=v_to,
                checkpoint_order=part0.checkpoint_order,
                checkpoint_certificate=part0.checkpoint_certificate,
                prepares_by_pillar=self._split_by_pillar(prepares),
            )
        )
        self.host.send(
            self.exec_address,
            NvStable(v_to, part0.checkpoint_order, part0.checkpoint_certificate, ()),
        )
        covered = tuple(
            request.key for prepare in prepares for request in prepare.batch
        )
        self.host.send(self.handler_address, ViewInstalled(v_to, covered))
        self.host.trace("view-installed", v_to)
        self.view_changes_completed += 1
        self._garbage_collect(v_to)

    def _garbage_collect(self, installed_view: int) -> None:
        """Bounded state: drop view-change artifacts for superseded views."""
        for key in [k for k in self._vc_store if k[0] < installed_view]:
            del self._vc_store[key]
        for view in [v for v in self._combined_vcs if v < installed_view]:
            del self._combined_vcs[view]
        for view in [v for v in self._nv_store if v < installed_view]:
            del self._nv_store[view]
        for key in [k for k in self._ack_store if k[0] < installed_view]:
            del self._ack_store[key]
        for view in [v for v in self._combined_acks if v < installed_view]:
            del self._combined_acks[view]

    # ------------------------------------------------------------------
    # NEW-VIEW-ACKs
    # ------------------------------------------------------------------
    def _on_forward_ack(self, part: NewViewAck) -> None:
        key = (part.view, part.replica)
        combined = self._ack_store.get(key)
        if combined is None:
            combined = self._ack_store[key] = _Combined(self.config.num_pillars)
        if not combined.add(part):
            return
        self._combined_acks.setdefault(part.view, {})[part.replica] = combined
        self._absorb_prepares(combined.all_prepares())
        if self.pending_view is not None:
            self._try_build_new_view(self.pending_view)

    # ------------------------------------------------------------------
    # State transfer
    # ------------------------------------------------------------------
    def _start_state_transfer(self, checkpoint_order: int, source: str) -> None:
        if checkpoint_order <= self.checkpoint_order:
            return
        if self._transfer_in_flight is not None and self._transfer_in_flight >= checkpoint_order:
            return
        self._transfer_in_flight = checkpoint_order
        target = self.peer_exec_addresses.get(source)
        if target is None:
            self._transfer_in_flight = None
            return
        self.host.send(target, StateRequest(self.me, checkpoint_order))

    def _on_state_response(self, response: StateResponse) -> None:
        if response.checkpoint_order <= self.checkpoint_order:
            self._transfer_in_flight = None
            return
        if not self.host._verify_checkpoint_certificate(
            response.checkpoint_order, response.checkpoint_certificate
        ):
            self._transfer_in_flight = None
            return
        snapshot, reply_vector = response.snapshot
        expected_digest = response.checkpoint_certificate[0].state_digest
        self.host.send(
            self.exec_address,
            StateInstall(response.checkpoint_order, snapshot, reply_vector, expected_digest),
        )
        self._pending_checkpoint_cert = (response.checkpoint_order, response.checkpoint_certificate)

    def _on_state_installed(self, message: StateInstalled) -> None:
        self._transfer_in_flight = None
        if not message.success:
            return
        cert = self._pending_checkpoint_cert
        if cert is not None and cert[0] == message.checkpoint_order:
            self._pending_checkpoint_cert = None
            self._send_to_pillars(CkStable(cert[0], cert[1]))
            self.note_checkpoint(cert[0], cert[1])
        stalled_vcs, self._stalled_vcs = self._stalled_vcs, []
        for combined in stalled_vcs:
            self._consider_combined_vc(combined)
        stalled_nvs, self._stalled_nvs = self._stalled_nvs, []
        for combined in stalled_nvs:
            self._consider_new_view(combined)
        if self.pending_view is not None:
            self._try_build_new_view(self.pending_view)


def sorted_prepares(combined: _Combined) -> list[Prepare]:
    return sorted(combined.all_prepares(), key=lambda prepare: prepare.order)
