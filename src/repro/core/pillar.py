"""The ordering pillar — Hybster's processing unit (paper §5.2.1, §5.3).

A pillar owns a statically assigned share of the order-number space
(``o mod P == index``), its own TrInX instance, and its own simulated
thread.  Pillars of one replica share no protocol state and communicate
via internal messages only — the consensus-oriented parallelization.

Within its share, a pillar partitions order numbers into *lanes*, one per
proposer (a single lane under a fixed leader; one lane per replica under
a rotating leader), and dedicates one trusted counter to each lane.
Because certificates bind the flattened ``[view|order]`` value and
counters only grow, each lane must be processed strictly ascending — the
sequentiality the paper identifies as inherent to the hybrid fault model.
A single lane and pillar is exactly the sequential basic protocol
(HybsterS); multiple pillars (and, with rotation, multiple lanes per
pillar) parallelize over disjoint counter timelines.

The pillar also runs its share of the checkpointing protocol (the k-th
checkpoint is coordinated by pillar ``k mod P``) and the pillar-local
side of the distributed view change: creating its part of split
VIEW-CHANGE / NEW-VIEW / NEW-VIEW-ACK messages on the coordinator's
instruction and verifying incoming parts before forwarding them to the
coordinator (see :mod:`repro.core.viewchange`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import Any

from repro.core.config import ReplicaGroupConfig
from repro.core.log import OrderingLog
from repro.core.quorum import MatchingQuorum
from repro.core.seqnum import flatten, unflatten
from repro.crypto.costs import JAVA
from repro.crypto.digests import digest as free_digest
from repro.crypto.provider import CryptoProvider
from repro.messages.checkpointing import Checkpoint
from repro.messages.client import Request
from repro.messages.internal import (
    AckReady,
    CkReached,
    CkStable,
    ExecRequest,
    FillGap,
    ForwardAck,
    ForwardNv,
    ForwardVc,
    NvReady,
    NvStable,
    OrderRequest,
    PrepareVc,
    RequestState,
    RequestVc,
    ResendNv,
    ResendVc,
    UnitVc,
    VcReady,
)
from repro.messages.ordering import Commit, InstanceFetch, Prepare
from repro.messages.viewchange import NewView, NewViewAck, ViewChange
from repro.sim.process import Address, Endpoint, Stage
from repro.sim.resources import SimThread
from repro.trinx.trinx import TrInX, batch_root


class Pillar(Stage):
    """One ordering pillar of a Hybster replica."""

    def __init__(
        self,
        endpoint: Endpoint,
        thread: SimThread,
        config: ReplicaGroupConfig,
        replica_id: str,
        index: int,
        trinx: TrInX,
        crypto_profile=JAVA,
    ):
        super().__init__(endpoint, thread, f"pillar{index}")
        self.config = config
        self.replica_id = replica_id
        self.index = index
        self.trinx = trinx
        # client-session MACs are verified here, on the pillar's core
        self.client_crypto = CryptoProvider(crypto_profile, charge=endpoint.sim.charge)

        self.view = 0
        self.view_stable = True
        self.log = OrderingLog(config.window_size)
        # per-lane pointer to the next class order to process, ascending
        self.lane_next: dict[int, int] = {}
        self._reset_lanes(after=0)
        self.pending: deque[Request] = deque()
        self._own_inflight = 0  # own proposals not yet committed (batch pacing)
        self._linger_deadline: int | None = None  # batch linger window end
        self._proposed_keys: dict[tuple[str, int], int] = {}  # request key -> order
        self._buffered_prepares: dict[int, Prepare] = {}
        self._seen_ahead = 0  # highest proposal order observed from peers
        self._gap_timer_armed = False

        self.stable_ck_order = 0  # 0 = the genesis checkpoint
        self.stable_ck_cert: tuple[Checkpoint, ...] = ()
        self._ck_quorum = MatchingQuorum(config.quorum_size)
        self._own_ck_digests: dict[int, bytes] = {}
        self._remote_stable: dict[int, tuple[str, tuple[Checkpoint, ...]]] = {}

        self._cached_vc_parts: dict[int, ViewChange] = {}
        self._cached_nv_parts: dict[int, NewView] = {}
        self._higher_view_witnesses: dict[int, set[str]] = {}
        self._reported_higher_view = 0

        self.coordinator = None  # ViewChangeCoordinator, set on pillar 0 only
        self._timers_started = False
        self._noop_timer = None

        # Certificate verification switch.  Always True in production; the
        # scenario engine flips it off to demonstrate that, without TrInX
        # verification, equivocation slips through and the trace safety
        # checker catches the resulting divergence (repro.scenarios).
        self.verify_trinx = True

        # Wired by the replica builder.
        self.peer_addresses: dict[str, Address] = {}  # replica id -> my-index pillar
        self.exec_address: Address | None = None
        self.coordinator_address: Address | None = None

        # Metrics.
        self.proposals = 0
        self.commits_sent = 0
        self.instances_committed = 0

    # ------------------------------------------------------------------
    # Identity and lane helpers
    # ------------------------------------------------------------------
    @property
    def me(self) -> str:
        return self.replica_id

    def _flatten(self, view: int, order: int) -> int:
        return flatten(view, order, self.config.order_bits)

    @staticmethod
    def _class_order_at_or_after(candidate: int, index: int, num_pillars: int) -> int:
        return candidate + (index - candidate) % num_pillars

    def _first_class_order_after(self, order: int) -> int:
        """Smallest order number of this pillar's class strictly above ``order``."""
        return self._class_order_at_or_after(order + 1, self.index, self.config.num_pillars)

    def _first_lane_order_after(self, lane: int, order: int) -> int:
        """Smallest class order of ``lane`` strictly above ``order`` (current view)."""
        candidate = self._first_class_order_after(order)
        for _ in range(self.config.num_lanes):
            if self.config.lane_of(self.view, candidate) == lane:
                return candidate
            candidate += self.config.num_pillars
        raise AssertionError("lane mapping must cycle within num_lanes class steps")

    def _reset_lanes(self, after: int) -> None:
        """Point every lane at its first class order above ``after``."""
        for lane in range(self.config.num_lanes):
            self.lane_next[lane] = self._first_lane_order_after(lane, after)

    def _advance_lane(self, lane: int, processed_order: int) -> None:
        if self.lane_next[lane] <= processed_order:
            self.lane_next[lane] = processed_order + self.config.lane_stride

    def start(self) -> None:
        """Arm periodic timers; called once by the replica builder."""
        if not self._timers_started:
            self._timers_started = True
            self.set_timer(self.config.retransmit_interval_ns, self._on_retransmit_tick)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def on_message(self, src: Address, message: Any) -> None:
        if self.coordinator is not None and self.coordinator.handles(message):
            self.coordinator.on_message(src, message)
            return
        if isinstance(message, OrderRequest):
            self._on_order_request(message)
        elif isinstance(message, Prepare):
            self._on_prepare(src, message)
        elif isinstance(message, Commit):
            self._on_commit(src, message)
        elif isinstance(message, Checkpoint):
            self._on_checkpoint(src, message)
        elif isinstance(message, CkReached):
            self._on_ck_reached(message)
        elif isinstance(message, CkStable):
            self._apply_stable_checkpoint(message.order, message.certificate)
        elif isinstance(message, FillGap):
            self._on_fill_gap(message)
        elif isinstance(message, InstanceFetch):
            self._on_instance_fetch(src, message)
        elif isinstance(message, ViewChange):
            self._on_view_change_part(src, message)
        elif isinstance(message, NewView):
            self._on_new_view_part(src, message)
        elif isinstance(message, NewViewAck):
            self._on_new_view_ack_part(src, message)
        elif isinstance(message, PrepareVc):
            self._on_prepare_vc(message)
        elif isinstance(message, VcReady):
            self._on_vc_ready(message)
        elif isinstance(message, NvReady):
            self._on_nv_ready(message)
        elif isinstance(message, NvStable):
            self._on_nv_stable(message)
        elif isinstance(message, AckReady):
            self._on_ack_ready(message)
        elif isinstance(message, ResendVc):
            self._on_resend_vc(message)
        elif isinstance(message, ResendNv):
            self._on_resend_nv(message)

    # ------------------------------------------------------------------
    # Ordering: proposing
    # ------------------------------------------------------------------
    def _on_order_request(self, message: OrderRequest) -> None:
        for request in message.requests:
            if request.key not in self._proposed_keys:
                self.pending.append(request)
        self._advance()

    def _advance(self) -> None:
        """Progress every lane as far as possible (each strictly ascending)."""
        if not self.view_stable:
            return
        progressed = True
        while progressed:
            progressed = False
            for lane in range(self.config.num_lanes):
                order = self.lane_next[lane]
                if not self.log.in_window(order):
                    continue
                if self.config.proposer_of(self.view, order) == self.me:
                    if self.pending and self._batch_ready():
                        self._propose(order)
                        progressed = True
                    elif self.config.rotation and not self.pending:
                        # our slot gaps the global sequence; release it with
                        # a no-op unless requests arrive in the grace period
                        self._arm_noop_timer(order)
                else:
                    prepare = self._buffered_prepares.pop(order, None)
                    if prepare is None:
                        continue
                    if prepare.view != self.view:
                        continue  # stale buffered proposal from an aborted view
                    if not self._verify_prepare(prepare):
                        continue  # buffered before its turn, so never checked
                    self._accept_prepare(prepare)
                    progressed = True

    def _arm_noop_timer(self, order: int) -> None:
        if self._noop_timer is not None:
            return
        self._noop_timer = self.set_timer(self.config.noop_delay_ns, self._noop_tick, order)

    def _noop_tick(self, order: int) -> None:
        self._noop_timer = None
        if not self.view_stable:
            return
        lane = self.config.lane_of(self.view, order)
        if order != self.lane_next.get(lane):
            return
        if self.config.proposer_of(self.view, order) != self.me:
            return
        self._propose(order, allow_empty=True)
        self._advance()

    def _batch_ready(self) -> bool:
        """Adaptive batching: full batch, or an idle pipeline (low load).

        With ``batch_linger_ns > 0`` an idle pipeline holds a partial
        batch for the linger window before releasing it, trading a little
        latency for fuller batches under light load.
        """
        if len(self.pending) >= self.config.batch_size:
            return True
        if self._own_inflight > 0:
            return False
        if self.config.batch_linger_ns == 0:
            return True
        if self._linger_deadline is None:
            self._linger_deadline = self.now + self.config.batch_linger_ns
            self.set_timer(self.config.batch_linger_ns, self._linger_tick)
            return False
        return self.now >= self._linger_deadline

    def _linger_tick(self) -> None:
        if self._linger_deadline is not None and self.pending:
            self._advance()

    def _take_batch(self) -> tuple[Request, ...]:
        batch: list[Request] = []
        while self.pending and len(batch) < self.config.batch_size:
            request = self.pending.popleft()
            if request.key in self._proposed_keys:
                continue
            batch.append(request)
        return tuple(batch)

    def _propose(self, order: int, allow_empty: bool = False) -> None:
        batch = self._take_batch()
        self._linger_deadline = None
        if not batch and not allow_empty:
            return
        # one vectorized pass verifies every client MAC in the batch
        digestibles = [request.digestible() for request in batch]
        self.client_crypto.compute_mac_batch(b"client-session", digestibles, size_hint_each=32)
        lane = self.config.lane_of(self.view, order)
        bare = Prepare(self.view, order, batch, self.me)
        # leaf digests are computed outside the enclave; TrInX certifies
        # the fixed-size header plus the root over the ordered leaves
        leaves = self.client_crypto.digest_batch(digestibles, size_hint_each=32)
        certificate = self.trinx.create_independent_batch(
            self.config.ordering_counter(lane),
            self._flatten(self.view, order),
            bare.certified_digestible(),
            leaves,
        )
        prepare = replace(bare, certificate=certificate, batch_digest=batch_root(leaves))
        instance = self.log.instance(order)
        instance.view = self.view
        instance.prepare = prepare
        instance.proposal_digest = free_digest(prepare.proposal_digestible())
        instance.acknowledgments = {self.me}
        instance.proposed_at_ns = self.now
        for request in batch:
            self._proposed_keys[request.key] = order
        self.proposals += 1
        self.trace("propose", (prepare.view, order, len(batch)))
        self.trace("counter-cert", (certificate.counter, certificate.new_value))
        self._own_inflight += 1
        self._advance_lane(lane, order)
        self.broadcast(list(self.peer_addresses.values()), prepare)
        self._absorb_buffered_commits(instance)
        self._check_committed(instance)

    # ------------------------------------------------------------------
    # Ordering: following
    # ------------------------------------------------------------------
    def _on_prepare(self, src: Address, prepare: Prepare) -> None:
        order = prepare.order
        if self.config.pillar_of_order(order) != self.index:
            return
        if prepare.view > self.view:
            self._note_higher_view(prepare.view, prepare.leader)
            return
        if prepare.view != self.view:
            return
        self._seen_ahead = max(self._seen_ahead, order)
        if not self.log.in_window(order):
            # ahead of our window (our checkpoint lags): keep one window's
            # worth of lookahead so the proposal is ready once we advance
            if self.log.high < order <= self.log.high + self.config.window_size:
                self._buffered_prepares.setdefault(order, prepare)
            self._note_gap()
            return
        if not self.view_stable:
            # the view matches but is not yet stable (NEW-VIEW still in
            # flight): keep the proposal for when the view settles, and
            # nudge the coordinator — live ordering traffic means the view
            # established without us, so our VIEW-CHANGE may need resending
            self._buffered_prepares.setdefault(order, prepare)
            self._nudge_unstable()
            return
        lane = self.config.lane_of(self.view, order)
        if order < self.lane_next[lane]:
            self._re_acknowledge(prepare)
            return
        if order > self.lane_next[lane]:
            self._buffered_prepares.setdefault(order, prepare)
            self._note_gap()
            return
        if not self._verify_prepare(prepare):
            return
        self._accept_prepare(prepare)
        self._advance()

    def _verify_prepare(self, prepare: Prepare) -> bool:
        """Validate a PREPARE's independent counter certificate."""
        certificate = prepare.certificate
        if certificate is None or certificate.previous_value is not None:
            return False
        if prepare.reproposal:
            return False  # re-proposals only arrive inside NEW-VIEW messages
        proposer = self.config.proposer_of(prepare.view, prepare.order)
        if prepare.leader != proposer:
            return False
        expected_issuer = self.config.trinx_instance_id(proposer, self.config.pillar_of_order(prepare.order))
        if certificate.issuer != expected_issuer:
            return False
        if certificate.counter != self.config.ordering_counter(
            self.config.lane_of(prepare.view, prepare.order)
        ):
            return False
        if certificate.new_value != self._flatten(prepare.view, prepare.order):
            return False
        if not self.verify_trinx:
            return True
        return self._verify_batch_certificate(prepare)

    def _verify_batch_certificate(self, prepare: Prepare) -> bool:
        """Membership check: every request must hash into the certified root.

        Leaf digests are recomputed from the batch we actually received,
        so a tampered, reordered, or spliced request changes the root and
        the certificate no longer verifies.
        """
        if prepare.batch_digest is None:
            return False
        leaves = self.client_crypto.digest_batch(
            [request.digestible() for request in prepare.batch], size_hint_each=32
        )
        if batch_root(leaves) != prepare.batch_digest:
            return False
        return self.trinx.verify_batch(
            prepare.certificate, prepare.certified_digestible(), leaves
        )

    def _accept_prepare(self, prepare: Prepare) -> None:
        """Acknowledge a verified PREPARE at its lane's next expected order."""
        # followers verify the client MACs of proposed requests too
        self.client_crypto.compute_mac_batch(
            b"client-session",
            [request.digestible() for request in prepare.batch],
            size_hint_each=32,
        )
        order = prepare.order
        lane = self.config.lane_of(prepare.view, order)
        instance = self.log.instance(order)
        instance.view = prepare.view
        instance.prepare = prepare
        instance.proposal_digest = free_digest(prepare.proposal_digestible())
        instance.proposed_at_ns = self.now
        bare = Commit(prepare.view, order, self.me, instance.proposal_digest)
        certificate = self.trinx.create_independent(
            self.config.ordering_counter(lane),
            self._flatten(prepare.view, order),
            bare.digestible(),
            size_hint=bare.wire_size(),
        )
        commit = replace(bare, certificate=certificate)
        instance.own_commit = commit
        instance.acknowledgments = {prepare.leader, self.me}
        self.commits_sent += 1
        self.trace("counter-cert", (certificate.counter, certificate.new_value))
        self._advance_lane(lane, order)
        self.broadcast(list(self.peer_addresses.values()), commit)
        self._absorb_buffered_commits(instance)
        self._check_committed(instance)

    def _re_acknowledge(self, prepare: Prepare) -> None:
        """The proposer retransmitted: resend our COMMIT if we have one."""
        instance = self.log.peek(prepare.order)
        if instance is not None and instance.own_commit is not None and instance.view == prepare.view:
            self.broadcast(list(self.peer_addresses.values()), instance.own_commit)

    def _on_commit(self, src: Address, commit: Commit) -> None:
        order = commit.order
        if self.config.pillar_of_order(order) != self.index:
            return
        if commit.view > self.view:
            self._note_higher_view(commit.view, commit.replica)
            return
        if commit.view != self.view:
            return
        if not self.log.in_window(order):
            return
        instance = self.log.instance(order)
        if instance.committed:
            return  # quorum already reached; skip needless verification
        if commit.replica in instance.commits or commit.replica in instance.acknowledgments:
            return
        if not self._verify_commit(commit):
            return
        instance.commits[commit.replica] = commit
        if instance.proposal_digest is not None and commit.proposal_digest == instance.proposal_digest:
            instance.acknowledgments.add(commit.replica)
            self._check_committed(instance)

    def _verify_commit(self, commit: Commit) -> bool:
        certificate = commit.certificate
        if certificate is None or certificate.previous_value is not None:
            return False
        expected_issuer = self.config.trinx_instance_id(commit.replica, self.index)
        if certificate.issuer != expected_issuer:
            return False
        if certificate.counter != self.config.ordering_counter(
            self.config.lane_of(commit.view, commit.order)
        ):
            return False
        if certificate.new_value != self._flatten(commit.view, commit.order):
            return False
        if not self.verify_trinx:
            return True
        return self.trinx.verify(certificate, commit.digestible(), size_hint=commit.wire_size())

    def _absorb_buffered_commits(self, instance) -> None:
        """Count commits that arrived before the PREPARE did."""
        for sender, commit in list(instance.commits.items()):
            if (
                commit.view == instance.view
                and instance.proposal_digest is not None
                and commit.proposal_digest == instance.proposal_digest
            ):
                instance.acknowledgments.add(sender)

    def _check_committed(self, instance) -> None:
        if instance.committed or instance.prepare is None:
            return
        if len(instance.acknowledgments) < self.config.quorum_size:
            return
        instance.committed = True
        self.instances_committed += 1
        if instance.prepare is not None and instance.prepare.leader == self.me:
            self._own_inflight = max(0, self._own_inflight - 1)
            if self._own_inflight == 0 and self.pending:
                # the pipeline drained: release a (possibly partial) batch
                self.sim.schedule(0, self.thread.submit, self._drain_partial, None)
        if self.exec_address is not None:
            self.send(
                self.exec_address,
                ExecRequest(instance.order, instance.view, instance.prepare.batch),
            )

    def _drain_partial(self, _arg) -> None:
        self._advance()

    _last_unstable_nudge_ns = -1_000_000_000

    def _nudge_unstable(self) -> None:
        if self.coordinator_address is None:
            return
        if self.now - self._last_unstable_nudge_ns < self.config.viewchange_timeout_ns // 2:
            return
        self._last_unstable_nudge_ns = self.now
        self.send(
            self.coordinator_address,
            RequestVc(
                reason="ordering traffic while view is unstable",
                suspected_view=self.view,
                resend_only=True,
            ),
        )

    def _note_higher_view(self, view: int, witness: str) -> None:
        """Ordering traffic for a higher view: we missed a view change.

        Once f distinct replicas evidence the higher view, nudge the
        coordinator; our VIEW-CHANGE makes the peers (or their leader)
        resend the NEW-VIEW that gets us back into the current view.
        """
        witnesses = self._higher_view_witnesses.setdefault(view, set())
        witnesses.add(witness)
        if view <= self._reported_higher_view:
            return
        if len(witnesses) >= max(1, self.config.f) and self.coordinator_address is not None:
            self._reported_higher_view = view
            self.send(
                self.coordinator_address,
                RequestVc(reason=f"ordering traffic for higher view {view}", suspected_view=self.view),
            )

    def _note_gap(self) -> None:
        """Arm a catch-up probe: proposals exist beyond our next slot.

        Without this, a replica that falls more than one lookahead window
        behind only recovers through checkpoint state transfer, and any
        instances ordered after the final stable checkpoint are lost to it
        for good (their PREPAREs arrived outside the buffer horizon and
        the quorum, having committed, never retransmits them).
        """
        if self._gap_timer_armed:
            return
        self._gap_timer_armed = True
        self.set_timer(self.config.fill_gap_timeout_ns, self._gap_tick)

    def _gap_tick(self) -> None:
        self._gap_timer_armed = False
        if not self.view_stable:
            return
        horizon = min(self._seen_ahead, self.log.high)
        missing = [
            order
            for order in range(min(self.lane_next.values()), horizon + 1)
            if self.config.pillar_of_order(order) == self.index
            and order >= self.lane_next[self.config.lane_of(self.view, order)]
            and order not in self._buffered_prepares
        ]
        for order in missing:
            self.broadcast(list(self.peer_addresses.values()), InstanceFetch(order, self.view))
        if missing:
            self._note_gap()  # keep probing until the holes close

    def _on_fill_gap(self, message: FillGap) -> None:
        order = message.order
        if not self.view_stable:
            return
        if self.config.proposer_of(self.view, order) == self.me:
            lane = self.config.lane_of(self.view, order)
            if order == self.lane_next.get(lane):
                self._propose(order, allow_empty=True)
                self._advance()
            return
        # not ours: the instance stalls locally (lost PREPARE or COMMITs) —
        # ask the peers to retransmit their ordering messages for it
        self.broadcast(list(self.peer_addresses.values()), InstanceFetch(order, self.view))

    def _on_instance_fetch(self, src: Address, message: InstanceFetch) -> None:
        if message.view != self.view or not self.view_stable:
            return
        instance = self.log.peek(message.order)
        if instance is None or instance.view != self.view:
            return
        if instance.prepare is not None and instance.prepare.leader == self.me:
            self.send(src, instance.prepare)
        elif instance.own_commit is not None:
            self.send(src, instance.own_commit)

    # ------------------------------------------------------------------
    # Retransmission and suspicion
    # ------------------------------------------------------------------
    def _on_retransmit_tick(self) -> None:
        if self.view_stable:
            now = self.now
            oldest_age = 0
            for instance in self.log.uncommitted():
                if instance.view != self.view:
                    continue  # stale leftovers of an aborted view
                age = now - instance.proposed_at_ns
                oldest_age = max(oldest_age, age)
                if instance.prepare.leader == self.me and age > self.config.retransmit_interval_ns:
                    self.broadcast(list(self.peer_addresses.values()), instance.prepare)
            if oldest_age > self.config.viewchange_timeout_ns and self.coordinator_address is not None:
                self.send(
                    self.coordinator_address,
                    RequestVc(
                        reason=f"pillar {self.index}: instance without quorum for {oldest_age} ns",
                        suspected_view=self.view,
                    ),
                )
        self.set_timer(self.config.retransmit_interval_ns, self._on_retransmit_tick)

    # ------------------------------------------------------------------
    # Checkpointing (shared: this pillar runs checkpoints k with k mod P == index)
    # ------------------------------------------------------------------
    def _on_ck_reached(self, message: CkReached) -> None:
        order, digest = message.order, message.state_digest
        if order <= self.stable_ck_order:
            return
        self._own_ck_digests[order] = digest
        bare = Checkpoint(order, self.me, digest)
        certificate = self.trinx.create_trusted_mac(
            self.config.mac_counter, bare.digestible(), size_hint=bare.wire_size()
        )
        checkpoint = replace(bare, certificate=certificate)
        self.broadcast(list(self.peer_addresses.values()), checkpoint)
        if self._ck_quorum.add((order, digest), self.me, checkpoint):
            self._declare_stable(order, digest)
        elif self._ck_quorum.reached((order, digest)):
            # the quorum had formed before our own snapshot arrived
            self._declare_stable(order, digest)

    def _on_checkpoint(self, src: Address, checkpoint: Checkpoint) -> None:
        if checkpoint.order <= self.stable_ck_order:
            return
        if not self._verify_checkpoint(checkpoint):
            return
        key = checkpoint.agreement_key()
        if self._ck_quorum.add(key, checkpoint.replica, checkpoint):
            own = self._own_ck_digests.get(checkpoint.order)
            if own == checkpoint.state_digest:
                self._declare_stable(checkpoint.order, checkpoint.state_digest)
            else:
                # a quorum advanced without us: remember it and fetch state
                # if our own execution does not catch up in time
                certificate = tuple(self._ck_quorum.payloads(key))
                self._remote_stable[checkpoint.order] = (checkpoint.replica, certificate)
                self.set_timer(self.config.fill_gap_timeout_ns, self._check_fallen_behind, checkpoint.order)

    def _verify_checkpoint(self, checkpoint: Checkpoint) -> bool:
        certificate = checkpoint.certificate
        if certificate is None or not certificate.is_trusted_mac:
            return False
        if certificate.counter != self.config.mac_counter:
            return False
        expected_issuer = self.config.trinx_instance_id(
            checkpoint.replica, self.config.checkpoint_pillar(checkpoint.order)
        )
        if certificate.issuer != expected_issuer:
            return False
        return self.trinx.verify(certificate, checkpoint.digestible(), size_hint=checkpoint.wire_size())

    def _declare_stable(self, order: int, digest: bytes) -> None:
        certificate = tuple(self._ck_quorum.payloads((order, digest)))
        self._remote_stable.pop(order, None)
        announcement = CkStable(order, certificate)
        for address in self._local_stage_addresses():
            self.send(address, announcement)
        self._apply_stable_checkpoint(order, certificate)

    def _check_fallen_behind(self, order: int) -> None:
        """A quorum checkpointed ``order`` but we never matched it: catch up."""
        entry = self._remote_stable.pop(order, None)
        if entry is None or order <= self.stable_ck_order:
            return  # the checkpoint became stable locally in the meantime
        source, _certificate = entry
        if self.coordinator_address is not None:
            self.send(self.coordinator_address, RequestState(order, source))

    def _apply_stable_checkpoint(self, order: int, certificate: tuple[Checkpoint, ...]) -> None:
        if order <= self.stable_ck_order:
            return
        self.stable_ck_order = order
        self.trace("checkpoint-stable", order)
        self.stable_ck_cert = certificate
        self.log.advance(order)
        for lane in range(self.config.num_lanes):
            self.lane_next[lane] = max(self.lane_next[lane], self._first_lane_order_after(lane, order))
        for buffered in [o for o in self._buffered_prepares if o <= order]:
            del self._buffered_prepares[buffered]
        for key, proposed_order in list(self._proposed_keys.items()):
            if proposed_order <= order:
                del self._proposed_keys[key]
        for ck_order in [o for o in self._own_ck_digests if o <= order]:
            del self._own_ck_digests[ck_order]
        self._ck_quorum.discard_below((order + 1, b""))
        if self.coordinator is not None:
            self.coordinator.note_checkpoint(order, certificate)
        self._advance()

    def _local_stage_addresses(self) -> list[Address]:
        node = self.endpoint.node
        addresses = [
            (node, f"pillar{i}") for i in range(self.config.num_pillars) if i != self.index
        ]
        if self.exec_address is not None:
            addresses.append(self.exec_address)
        return addresses

    # ------------------------------------------------------------------
    # View change: pillar-local duties
    # ------------------------------------------------------------------
    def _on_prepare_vc(self, message: PrepareVc) -> None:
        prepares = tuple(self.log.prepares_in_window(self.index, self.config.num_pillars))
        self.send(
            self.coordinator_address,
            UnitVc(self.index, message.v_to, self.stable_ck_order, prepares),
        )

    def _on_vc_ready(self, message: VcReady) -> None:
        self.view = message.v_to
        self.view_stable = False
        self._own_inflight = 0
        self._buffered_prepares.clear()
        bare = ViewChange(
            replica=self.me,
            v_from=message.v_from,
            v_to=message.v_to,
            checkpoint_order=message.checkpoint_order,
            checkpoint_certificate=message.checkpoint_certificate,
            prepares=message.prepares_by_pillar[self.index],
            pillar=self.index,
            num_parts=self.config.num_pillars,
        )
        sealed = self._flatten(message.v_to, 0)
        if self.config.num_lanes == 1:
            certificate = self.trinx.create_continuing(
                self.config.ordering_counter(0), sealed, bare.digestible(), size_hint=bare.wire_size()
            )
            part = replace(bare, certificate=certificate)
        else:
            multi = self.trinx.create_multi_continuing(
                {self.config.ordering_counter(lane): sealed for lane in range(self.config.num_lanes)},
                bare.digestible(),
                size_hint=bare.wire_size(),
            )
            part = replace(bare, multi_certificate=multi)
        self._cached_vc_parts[message.v_to] = part
        self.broadcast(list(self.peer_addresses.values()), part)
        self.send(self.coordinator_address, ForwardVc(part))

    def _on_view_change_part(self, src: Address, part: ViewChange) -> None:
        if part.pillar != self.index or part.num_parts != self.config.num_pillars:
            return
        if part.replica == self.me:
            return
        if not self._verify_vc_part(part):
            return
        self.send(self.coordinator_address, ForwardVc(part))

    def _verify_vc_part(self, part: ViewChange) -> bool:
        """Full validation of one VIEW-CHANGE part (certificate, completeness)."""
        sealed = self._flatten(part.v_to, 0)
        expected_issuer = self.config.trinx_instance_id(part.replica, self.index)
        lane_previous: dict[int, int] = {}
        if self.config.num_lanes == 1:
            certificate = part.certificate
            if certificate is None or certificate.previous_value is None:
                return False
            if certificate.issuer != expected_issuer or certificate.counter != 0:
                return False
            if certificate.new_value != sealed:
                return False
            if not self.trinx.verify(certificate, part.digestible(), size_hint=part.wire_size()):
                return False
            lane_previous[0] = certificate.previous_value
        else:
            multi = part.multi_certificate
            if multi is None or multi.issuer != expected_issuer:
                return False
            covered_counters = {entry[0] for entry in multi.entries}
            if covered_counters != set(range(self.config.num_lanes)):
                return False
            for counter, new_value, previous in multi.entries:
                if new_value != sealed or previous is None:
                    return False
                lane_previous[counter] = previous
            if not self.trinx.verify_multi(multi, part.digestible(), size_hint=part.wire_size()):
                return False
        if not self._verify_checkpoint_certificate(part.checkpoint_order, part.checkpoint_certificate):
            return False
        # Completeness: each lane's unforgeable previous counter value
        # reveals the last instance the sender actively participated in;
        # every lane order between its checkpoint and that instance must be
        # covered by an included PREPARE.
        covered = {prepare.order for prepare in part.prepares}
        for lane, previous in lane_previous.items():
            prev_view, prev_order = unflatten(previous, self.config.order_bits)
            if prev_order <= part.checkpoint_order:
                continue
            order = self._class_order_at_or_after(
                part.checkpoint_order + 1, self.index, self.config.num_pillars
            )
            while order <= prev_order:
                if self.config.lane_of(prev_view, order) == lane and order not in covered:
                    return False
                order += self.config.num_pillars
        for prepare in part.prepares:
            if self.config.pillar_of_order(prepare.order) != self.index:
                return False
            if not self._verify_foreign_prepare(prepare):
                return False
        return True

    def _verify_foreign_prepare(self, prepare: Prepare) -> bool:
        """Verify a PREPARE from an arbitrary (earlier) view."""
        certificate = prepare.certificate
        if certificate is None or certificate.previous_value is not None:
            return False
        if prepare.reproposal:
            proposer = self.config.primary_of_view(prepare.view)
            expected_counter = self.config.ordering_counter(
                self.config.index_of(proposer) if self.config.rotation else 0
            )
        else:
            proposer = self.config.proposer_of(prepare.view, prepare.order)
            expected_counter = self.config.ordering_counter(
                self.config.lane_of(prepare.view, prepare.order)
            )
        if prepare.leader != proposer:
            return False
        expected_issuer = self.config.trinx_instance_id(proposer, self.config.pillar_of_order(prepare.order))
        if certificate.issuer != expected_issuer or certificate.counter != expected_counter:
            return False
        if certificate.new_value != self._flatten(prepare.view, prepare.order):
            return False
        return self._verify_batch_certificate(prepare)

    def _verify_checkpoint_certificate(self, order: int, certificate: tuple[Checkpoint, ...]) -> bool:
        if order <= 0:
            return len(certificate) == 0  # the genesis checkpoint needs no proof
        voters = set()
        for checkpoint in certificate:
            if checkpoint.order != order:
                return False
            if checkpoint.state_digest != certificate[0].state_digest:
                return False
            if not self._verify_checkpoint(checkpoint):
                return False
            voters.add(checkpoint.replica)
        return len(voters) >= self.config.quorum_size

    # ------------------------------------------------------------------
    # NEW-VIEW: creation (leader pillars) and verification (all pillars)
    # ------------------------------------------------------------------
    def _on_nv_ready(self, message: NvReady) -> None:
        self.view = message.v_to
        self.log.advance(message.checkpoint_order)
        reproposal_counter = self.config.ordering_counter(
            self.config.index_of(self.me) if self.config.rotation else 0
        )
        new_prepares = []
        floor = max(message.checkpoint_order, self.stable_ck_order)
        max_order = floor
        for order, batch in message.prepares_by_pillar[self.index]:
            if order <= floor:
                continue  # covered by a checkpoint reached meanwhile
            bare = Prepare(message.v_to, order, batch, self.me, reproposal=True)
            leaves = self.client_crypto.digest_batch(
                [request.digestible() for request in batch], size_hint_each=32
            )
            certificate = self.trinx.create_independent_batch(
                reproposal_counter,
                self._flatten(message.v_to, order),
                bare.certified_digestible(),
                leaves,
            )
            prepare = replace(bare, certificate=certificate, batch_digest=batch_root(leaves))
            new_prepares.append(prepare)
            instance = self.log.instance(order)
            instance.view = message.v_to
            instance.prepare = prepare
            instance.proposal_digest = free_digest(prepare.proposal_digestible())
            instance.acknowledgments = {self.me}
            instance.committed = False
            instance.commits = {}
            instance.proposed_at_ns = self.now
            for request in batch:
                self._proposed_keys[request.key] = order
            max_order = max(max_order, order)
        self._reset_lanes(after=max_order)
        part = NewView(
            leader=self.me,
            v_to=message.v_to,
            base_view=message.base_view,
            checkpoint_order=message.checkpoint_order,
            checkpoint_certificate=message.checkpoint_certificate,
            view_changes=tuple(vc for vc in message.view_changes if vc.pillar == self.index),
            acks=tuple(ack for ack in message.acks if ack.pillar == self.index),
            prepares=tuple(new_prepares),
            pillar=self.index,
            num_parts=self.config.num_pillars,
        )
        self._cached_nv_parts[message.v_to] = part
        self.broadcast(list(self.peer_addresses.values()), part)
        self.send(self.coordinator_address, ForwardNv(part))

    def _on_new_view_part(self, src: Address, part: NewView) -> None:
        if part.pillar != self.index or part.num_parts != self.config.num_pillars:
            return
        if part.leader == self.me:
            return
        if part.leader != self.config.primary_of_view(part.v_to):
            return
        for prepare in part.prepares:
            if self.config.pillar_of_order(prepare.order) != self.index:
                return
            if prepare.view != part.v_to or prepare.leader != part.leader or not prepare.reproposal:
                return
            if not self._verify_foreign_prepare(prepare):
                return
        for view_change in part.view_changes:
            if view_change.v_to != part.v_to or view_change.pillar != self.index:
                return
            if view_change.replica != self.me and not self._verify_vc_part(view_change):
                return
        if not self._verify_checkpoint_certificate(part.checkpoint_order, part.checkpoint_certificate):
            return
        self.send(self.coordinator_address, ForwardNv(part))

    def _on_new_view_ack_part(self, src: Address, part: NewViewAck) -> None:
        if part.pillar != self.index or part.num_parts != self.config.num_pillars:
            return
        if part.replica == self.me:
            return
        for prepare in part.prepares:
            if self.config.pillar_of_order(prepare.order) != self.index:
                return
            if not self._verify_foreign_prepare(prepare):
                return
        self.send(self.coordinator_address, ForwardAck(part))

    # ------------------------------------------------------------------
    # Stable view installation
    # ------------------------------------------------------------------
    def _on_nv_stable(self, message: NvStable) -> None:
        self.view = message.v_to
        self.view_stable = True
        for stale in [v for v in self._higher_view_witnesses if v <= message.v_to]:
            del self._higher_view_witnesses[stale]
        # instances of aborted views that the NEW-VIEW did not re-propose
        # were provably never committed anywhere: discard them
        for order, instance in list(self.log._instances.items()):
            if instance.view < message.v_to and not instance.committed:
                del self.log._instances[order]
        if message.checkpoint_order > self.stable_ck_order:
            self.stable_ck_order = message.checkpoint_order
            self.stable_ck_cert = message.checkpoint_certificate
            self.log.advance(message.checkpoint_order)
        # skip re-proposals already covered by a checkpoint — the NEW-VIEW's
        # own, or a newer one we reached via state transfer in the meantime
        floor = max(message.checkpoint_order, self.stable_ck_order)
        max_order = floor
        for prepare in message.prepares_by_pillar[self.index]:
            if prepare.order <= floor:
                continue
            max_order = max(max_order, prepare.order)
            if prepare.leader == self.me:
                continue  # created by us in _on_nv_ready
            self._accept_reproposal(prepare)
        self._reset_lanes(after=max(max_order, self.stable_ck_order))
        self._advance()

    def _accept_reproposal(self, prepare: Prepare) -> None:
        """Acknowledge a NEW-VIEW re-proposal (already verified on receipt)."""
        instance = self.log.instance(prepare.order)
        instance.view = prepare.view
        instance.prepare = prepare
        instance.proposal_digest = free_digest(prepare.proposal_digestible())
        instance.committed = False
        instance.commits = {}
        instance.proposed_at_ns = self.now
        lane = self.config.lane_of(prepare.view, prepare.order)
        bare = Commit(prepare.view, prepare.order, self.me, instance.proposal_digest)
        certificate = self.trinx.create_independent(
            self.config.ordering_counter(lane),
            self._flatten(prepare.view, prepare.order),
            bare.digestible(),
            size_hint=bare.wire_size(),
        )
        commit = replace(bare, certificate=certificate)
        instance.own_commit = commit
        instance.acknowledgments = {prepare.leader, self.me}
        self.commits_sent += 1
        self.trace("counter-cert", (certificate.counter, certificate.new_value))
        self.broadcast(list(self.peer_addresses.values()), commit)
        self._check_committed(instance)

    def _on_ack_ready(self, message: AckReady) -> None:
        part = NewViewAck(
            replica=self.me,
            view=message.view,
            prepares=message.prepares_by_pillar[self.index],
            pillar=self.index,
            num_parts=self.config.num_pillars,
        )
        self.broadcast(list(self.peer_addresses.values()), part)

    # ------------------------------------------------------------------
    # Retransmission of view-change artifacts
    # ------------------------------------------------------------------
    def _on_resend_vc(self, message: ResendVc) -> None:
        part = self._cached_vc_parts.get(message.v_to)
        if part is not None:
            self.broadcast(list(self.peer_addresses.values()), part)

    def _on_resend_nv(self, message: ResendNv) -> None:
        part = self._cached_nv_parts.get(message.v_to)
        if part is not None and message.target in self.peer_addresses:
            self.send(self.peer_addresses[message.target], part)
