"""The ordering log: per-instance state inside a sliding window.

Replicas keep ordering messages for the consensus instances between the
low and high water marks.  The window advances when a checkpoint becomes
stable (low = checkpoint order, high = low + window size) and old entries
are garbage-collected.  Hybster *strictly* adheres to this window — even
during view changes a replica never processes instances beyond its high
mark, which is what bounds its memory (§5.2.2, "Strict Ordering Window").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WindowViolationError
from repro.messages.ordering import Commit, Prepare


@dataclass
class InstanceState:
    """Everything a replica knows about consensus instance ``(view, order)``."""

    order: int
    view: int = -1
    prepare: Prepare | None = None
    proposal_digest: bytes | None = None
    acknowledgments: set[str] = field(default_factory=set)
    commits: dict[str, Commit] = field(default_factory=dict)
    committed: bool = False
    delivered: bool = False
    own_commit: Commit | None = None
    proposed_at_ns: int = 0


class OrderingLog:
    """Window-bounded map from order number to :class:`InstanceState`."""

    def __init__(self, window_size: int, low: int = 0):
        self.window_size = window_size
        # ``low`` is the last checkpointed order (0 = the genesis checkpoint;
        # order numbers start at 1); the window covers (low, low + window_size].
        self.low = low
        self._instances: dict[int, InstanceState] = {}

    @property
    def high(self) -> int:
        """Highest order number this replica participates in."""
        return self.low + self.window_size

    def in_window(self, order: int) -> bool:
        return self.low < order <= self.high

    def instance(self, order: int) -> InstanceState:
        """Get-or-create the state of an in-window instance."""
        if not self.in_window(order):
            raise WindowViolationError(
                f"order {order} outside window ({self.low}, {self.high}]"
            )
        state = self._instances.get(order)
        if state is None:
            state = InstanceState(order)
            self._instances[order] = state
        return state

    def peek(self, order: int) -> InstanceState | None:
        return self._instances.get(order)

    def advance(self, checkpoint_order: int) -> None:
        """Move the window after a stable checkpoint at ``checkpoint_order``."""
        if checkpoint_order <= self.low:
            return
        self.low = checkpoint_order
        stale = [order for order in self._instances if order <= checkpoint_order]
        for order in stale:
            del self._instances[order]

    def uncommitted(self) -> list[InstanceState]:
        """Instances with a proposal but no committed certificate yet."""
        return sorted(
            (state for state in self._instances.values() if state.prepare and not state.committed),
            key=lambda state: state.order,
        )

    def prepares_in_window(self, pillar: int = 0, num_pillars: int = 1) -> list[Prepare]:
        """All known PREPAREs for this pillar's share of the window."""
        return [
            state.prepare
            for order, state in sorted(self._instances.items())
            if state.prepare is not None and order % num_pillars == pillar
        ]

    def __len__(self) -> int:
        return len(self._instances)
