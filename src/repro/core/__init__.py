"""Hybster — the paper's primary contribution.

The protocol is implemented once and instantiated in two configurations:

* **HybsterS** — the sequential basic protocol (§5.2): one ordering pillar
  per replica with a single TrInX instance.
* **HybsterX** — the parallelized protocol (§5.3): one pillar per core,
  each with its own TrInX instance, independent ordering over a statically
  partitioned order-number space, shared checkpointing, and distributed
  (split) view-change messages.

Module map: :mod:`config` (group configuration and fault-model math),
:mod:`seqnum` (the flattened ``[view|order]`` number space),
:mod:`quorum` (matching-message quorum collectors), :mod:`log` (the
ordering window), :mod:`pillar` (ordering + checkpointing + view-change
per processing unit), :mod:`execution` (the execution stage),
:mod:`viewchange` (combined-message view-change state machine),
:mod:`replica` (assembles stages into a replica).
"""

from repro.core.config import ReplicaGroupConfig
from repro.core.replica import HybsterReplica
from repro.core.seqnum import flatten, unflatten

__all__ = ["ReplicaGroupConfig", "HybsterReplica", "flatten", "unflatten"]
