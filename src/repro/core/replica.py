"""Replica assembly: pillars + execution stage + client handler.

A :class:`HybsterReplica` materializes one replica of the group on a
simulated machine.  The paper's two evaluated configurations differ only
in ``config.num_pillars``:

* HybsterS — one pillar (the sequential basic protocol) plus an execution
  thread and a client-handling thread;
* HybsterX — one pillar per core, each with its own TrInX instance.

Thread placement mirrors the prototype: each stage gets its own hardware
thread while the machine has free slots; once the machine is full,
additional stages share the least-loaded threads (relevant only for
deliberately oversubscribed experiments).
"""

from __future__ import annotations

from repro.core.config import ReplicaGroupConfig
from repro.core.execution import ExecutionStage, ReplierStage
from repro.core.handler import ClientHandler
from repro.core.pillar import Pillar
from repro.core.viewchange import ViewChangeCoordinator
from repro.crypto.costs import JAVA
from repro.crypto.provider import CryptoProvider
from repro.net.base import Transport
from repro.services.base import Service
from repro.sim.kernel import Simulator
from repro.sim.process import Endpoint
from repro.sim.resources import Machine, SimThread
from repro.sim.tracing import NULL_TRACER, Tracer
from repro.trinx.enclave import EnclavePlatform
from repro.trinx.trinx import TrInX

# Per-message framework overhead (deserialization, queueing, socket) of the
# Java prototype, charged on every handler invocation of a protocol stage.
MESSAGE_BASE_COST_NS = 1_100


class HybsterReplica:
    """One replica: its stages, trusted subsystem instances, and wiring."""

    def __init__(
        self,
        sim: Simulator,
        network: Transport,
        machine: Machine,
        config: ReplicaGroupConfig,
        replica_id: str,
        service: Service,
        reply_payload_size: int = 0,
        tracer: Tracer = NULL_TRACER,
        trinx_instances: list[TrInX] | None = None,
        message_base_cost_ns: int = MESSAGE_BASE_COST_NS,
        num_repliers: int = 2,
        crypto_profile=JAVA,
    ):
        self.sim = sim
        self.config = config
        self.replica_id = replica_id
        self.machine = machine
        self.crypto_profile = crypto_profile
        self.endpoint = Endpoint(sim, network, replica_id, tracer)
        self.platform = EnclavePlatform(charge=sim.charge, via_jni=True)

        allocator = _ThreadAllocator(machine, message_base_cost_ns)

        if trinx_instances is None:
            trinx_instances = [
                TrInX(
                    self.platform,
                    config.trinx_instance_id(replica_id, i),
                    config.group_secret,
                    num_counters=config.counters_per_instance,
                )
                for i in range(config.num_pillars)
            ]
        if len(trinx_instances) != config.num_pillars:
            raise ValueError("need exactly one TrInX instance per pillar")
        self.trinx_instances = trinx_instances

        self.pillars = [
            Pillar(
                self.endpoint,
                allocator.next(f"pillar{i}"),
                config,
                replica_id,
                i,
                trinx_instances[i],
                crypto_profile=crypto_profile,
            )
            for i in range(config.num_pillars)
        ]
        self.execution = ExecutionStage(
            self.endpoint,
            allocator.next("exec"),
            config,
            replica_id,
            service,
            CryptoProvider(crypto_profile, charge=sim.charge),
            reply_payload_size=reply_payload_size,
        )
        self.handler = ClientHandler(
            self.endpoint,
            allocator.next("handler"),
            config,
            replica_id,
            CryptoProvider(crypto_profile, charge=sim.charge),
        )
        self.repliers = [
            ReplierStage(
                self.endpoint,
                allocator.next(f"replier{i}"),
                CryptoProvider(crypto_profile, charge=sim.charge),
                f"replier{i}",
            )
            for i in range(num_repliers)
        ]
        self.coordinator = ViewChangeCoordinator(self.pillars[0])
        self.pillars[0].coordinator = self.coordinator
        self._wire_local()

    # ------------------------------------------------------------------
    def _wire_local(self) -> None:
        node = self.replica_id
        pillar_addresses = [(node, f"pillar{i}") for i in range(self.config.num_pillars)]
        exec_address = (node, "exec")
        handler_address = (node, "handler")
        coordinator_address = pillar_addresses[0]
        for pillar in self.pillars:
            pillar.exec_address = exec_address
            pillar.coordinator_address = coordinator_address
        self.execution.pillar_addresses = pillar_addresses
        self.execution.handler_address = handler_address
        self.execution.coordinator_address = coordinator_address
        self.execution.replier_addresses = [(node, replier.name) for replier in self.repliers]
        self.handler.pillar_addresses = pillar_addresses
        self.handler.exec_address = exec_address
        self.handler.coordinator_address = coordinator_address
        self.coordinator.local_pillar_addresses = pillar_addresses
        self.coordinator.exec_address = exec_address
        self.coordinator.handler_address = handler_address

    def wire_peers(self, replicas: list["HybsterReplica"]) -> None:
        """Connect this replica to the rest of the group."""
        for peer in replicas:
            if peer.replica_id == self.replica_id:
                continue
            for index, pillar in enumerate(self.pillars):
                pillar.peer_addresses[peer.replica_id] = (peer.replica_id, f"pillar{index}")
            self.coordinator.peer_exec_addresses[peer.replica_id] = (peer.replica_id, "exec")

    def start(self) -> None:
        """Arm periodic protocol timers (retransmission / fault suspicion)."""
        for pillar in self.pillars:
            pillar.start()

    # ------------------------------------------------------------------
    @property
    def service(self) -> Service:
        return self.execution.service

    @property
    def current_view(self) -> int:
        return self.coordinator.stable_view

    def stats(self) -> dict:
        """Throughput/health counters for benchmarks and tests."""
        return {
            "replica": self.replica_id,
            "executed_requests": self.execution.executed_requests,
            "executed_instances": self.execution.executed_instances,
            "proposals": sum(pillar.proposals for pillar in self.pillars),
            "commits_sent": sum(pillar.commits_sent for pillar in self.pillars),
            "view": self.current_view,
            "stable_checkpoint": self.pillars[0].stable_ck_order,
            "enclave_calls": self.platform.calls,
            "view_changes_completed": self.coordinator.view_changes_completed,
        }


class _ThreadAllocator:
    """Hands out hardware threads, sharing them once the machine is full."""

    def __init__(self, machine: Machine, base_cost_ns: int):
        self.machine = machine
        self.base_cost_ns = base_cost_ns
        self._allocated: list[SimThread] = []
        self._reuse_index = 0

    def next(self, name: str) -> SimThread:
        if len(self._allocated) < self.machine.hardware_threads:
            thread = self.machine.allocate_thread(name, base_cost_ns=self.base_cost_ns)
            self._allocated.append(thread)
            return thread
        thread = self._allocated[self._reuse_index]
        self._reuse_index = (self._reuse_index + 1) % len(self._allocated)
        return thread


def build_group(
    sim: Simulator,
    network: Transport,
    machines: list[Machine],
    config: ReplicaGroupConfig,
    service_factory,
    reply_payload_size: int = 0,
    tracer: Tracer = NULL_TRACER,
    message_base_cost_ns: int = MESSAGE_BASE_COST_NS,
    crypto_profile=JAVA,
) -> list[HybsterReplica]:
    """Build and fully wire a replica group, one replica per machine."""
    if len(machines) != config.n:
        raise ValueError(f"need {config.n} machines for {config.n} replicas")
    replicas = [
        HybsterReplica(
            sim,
            network,
            machine,
            config,
            replica_id,
            service_factory(),
            reply_payload_size=reply_payload_size,
            tracer=tracer,
            message_base_cost_ns=message_base_cost_ns,
            crypto_profile=crypto_profile,
        )
        for machine, replica_id in zip(machines, config.replica_ids)
    ]
    for replica in replicas:
        replica.wire_peers(replicas)
        replica.start()
    return replicas
