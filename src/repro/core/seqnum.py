"""The flattened ``[view|order]`` number space (paper §5.2.1).

Hybster binds order messages to trusted counter values.  Because the same
replica may have to certify messages for the same order number in
different views, the pair ``(view, order)`` is flattened into a single
counter value with the view in the most significant bits:

    [v|o] = v << ORDER_BITS | o

All messages of higher views therefore map to higher counter values —
the property the view-change protocol exploits when it jumps a counter to
``[v+1|0]`` to seal off an aborted view.
"""

from __future__ import annotations

from repro.errors import ProtocolError

DEFAULT_ORDER_BITS = 40


def flatten(view: int, order: int, order_bits: int = DEFAULT_ORDER_BITS) -> int:
    """Map ``(view, order)`` to the flattened counter value ``[v|o]``."""
    if view < 0 or order < 0:
        raise ProtocolError(f"view and order must be non-negative, got ({view}, {order})")
    if order >= (1 << order_bits):
        raise ProtocolError(f"order {order} exceeds {order_bits}-bit order space")
    return (view << order_bits) | order


def unflatten(value: int, order_bits: int = DEFAULT_ORDER_BITS) -> tuple[int, int]:
    """Inverse of :func:`flatten`: counter value back to ``(view, order)``."""
    if value < 0:
        raise ProtocolError(f"counter values are non-negative, got {value}")
    return value >> order_bits, value & ((1 << order_bits) - 1)


def view_of(value: int, order_bits: int = DEFAULT_ORDER_BITS) -> int:
    return value >> order_bits


def order_of(value: int, order_bits: int = DEFAULT_ORDER_BITS) -> int:
    return value & ((1 << order_bits) - 1)
