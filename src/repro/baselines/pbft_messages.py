"""PBFT ordering and checkpoint messages.

PBFT's three-phase ordering uses PRE-PREPARE (the leader's proposal),
PREPARE (first acknowledgment round), and COMMIT (second round).  Each
message carries either a MAC authenticator (``PBFTcop``) or a trusted
MAC certificate (``HybridPBFT``); the field is typed loosely so both fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.messages.base import MESSAGE_HEADER_SIZE, ProtocolMessage, certificate_size
from repro.messages.client import Request


@dataclass(frozen=True)
class PrePrepare(ProtocolMessage):
    """The leader's assignment of ``batch`` to ``(view, order)``."""

    view: int
    order: int
    batch: tuple[Request, ...]
    leader: str
    auth: Any = None

    def digestible(self):
        return (
            "pbft-pre-prepare",
            self.view,
            self.order,
            self.leader,
            tuple(request.digestible() for request in self.batch),
        )

    def proposal_digestible(self):
        return ("pbft-proposal", self.view, self.order, tuple(r.digestible() for r in self.batch))

    def wire_size(self) -> int:
        return (
            MESSAGE_HEADER_SIZE
            + 16
            + sum(request.wire_size() for request in self.batch)
            + certificate_size(self.auth)
        )

    @property
    def is_noop(self) -> bool:
        return len(self.batch) == 0


@dataclass(frozen=True)
class PbftPrepare(ProtocolMessage):
    """First-round acknowledgment of a PRE-PREPARE (not sent by the leader)."""

    view: int
    order: int
    replica: str
    proposal_digest: bytes
    auth: Any = None

    def digestible(self):
        return ("pbft-prepare", self.view, self.order, self.replica, self.proposal_digest)

    def wire_size(self) -> int:
        return MESSAGE_HEADER_SIZE + 16 + 32 + certificate_size(self.auth)


@dataclass(frozen=True)
class PbftCommit(ProtocolMessage):
    """Second-round acknowledgment; a quorum makes the instance committed."""

    view: int
    order: int
    replica: str
    proposal_digest: bytes
    auth: Any = None

    def digestible(self):
        return ("pbft-commit", self.view, self.order, self.replica, self.proposal_digest)

    def wire_size(self) -> int:
        return MESSAGE_HEADER_SIZE + 16 + 32 + certificate_size(self.auth)


@dataclass(frozen=True)
class PbftCheckpoint(ProtocolMessage):
    """Checkpoint announcement; a quorum of matching digests is stable."""

    order: int
    replica: str
    state_digest: bytes
    auth: Any = None

    def digestible(self):
        return ("pbft-checkpoint", self.order, self.replica, self.state_digest)

    def agreement_key(self) -> tuple[int, bytes]:
        return (self.order, self.state_digest)

    def wire_size(self) -> int:
        return MESSAGE_HEADER_SIZE + 8 + 32 + certificate_size(self.auth)
