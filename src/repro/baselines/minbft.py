"""MinBFT — the sequential two-phase hybrid baseline (§4, ablations).

MinBFT runs on ``n = 2f + 1`` replicas with a two-phase ordering like
Hybster, but built on USIG's single implicit counter.  The consequences
the paper analyzes become directly measurable here:

* every replica funnels **all** message processing, execution, and client
  handling through a single thread — the UI timeline forces in-order
  processing of the leader's messages and there is only one counter, so
  the protocol cannot be split into pillars;
* every protocol message (PREPARE, COMMIT, CHECKPOINT) costs an enclave
  call to create and one to verify.

The view-change protocol (with its message histories) is not implemented;
like the PBFT baseline, MinBFT exists for fault-free comparison runs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.baselines.usig import UI, Usig
from repro.core.config import ReplicaGroupConfig
from repro.core.quorum import MatchingQuorum
from repro.crypto.costs import JAVA
from repro.crypto.digests import digest as free_digest
from repro.crypto.provider import CryptoProvider
from repro.errors import ConfigurationError
from repro.messages.base import MESSAGE_HEADER_SIZE, ProtocolMessage
from repro.messages.client import Reply, Request, RequestBurst
from repro.services.base import Service
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.process import Address, Endpoint, Stage
from repro.sim.resources import Machine
from repro.sim.tracing import NULL_TRACER, Tracer
from repro.trinx.enclave import EnclavePlatform


@dataclass(frozen=True)
class MinPrepare(ProtocolMessage):
    """Leader proposal; the UI sequence defines the total order."""

    view: int
    order: int
    batch: tuple[Request, ...]
    leader: str
    ui: UI | None = None

    def digestible(self):
        return (
            "min-prepare",
            self.view,
            self.order,
            self.leader,
            tuple(request.digestible() for request in self.batch),
        )

    def wire_size(self) -> int:
        size = MESSAGE_HEADER_SIZE + 16 + sum(r.wire_size() for r in self.batch)
        return size + (self.ui.wire_size() if self.ui else 0)


@dataclass(frozen=True)
class MinCommit(ProtocolMessage):
    """Follower acknowledgment, bound to the leader's UI."""

    view: int
    order: int
    replica: str
    proposal_digest: bytes
    ui: UI | None = None

    def digestible(self):
        return ("min-commit", self.view, self.order, self.replica, self.proposal_digest)

    def wire_size(self) -> int:
        return MESSAGE_HEADER_SIZE + 16 + 32 + (self.ui.wire_size() if self.ui else 0)


@dataclass(frozen=True)
class MinCheckpoint(ProtocolMessage):
    order: int
    replica: str
    state_digest: bytes
    ui: UI | None = None

    def digestible(self):
        return ("min-checkpoint", self.order, self.replica, self.state_digest)

    def agreement_key(self) -> tuple[int, bytes]:
        return (self.order, self.state_digest)

    def wire_size(self) -> int:
        return MESSAGE_HEADER_SIZE + 8 + 32 + (self.ui.wire_size() if self.ui else 0)


@dataclass
class _MinInstance:
    order: int
    prepare: MinPrepare | None = None
    proposal_digest: bytes | None = None
    acknowledgments: set[str] | None = None
    early_commits: dict[str, bytes] | None = None  # commits seen before the prepare
    committed: bool = False


class MinBftReplica(Stage):
    """A MinBFT replica: one stage, one thread, one USIG instance."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        machine: Machine,
        config: ReplicaGroupConfig,
        replica_id: str,
        service: Service,
        reply_payload_size: int = 0,
        tracer: Tracer = NULL_TRACER,
        message_base_cost_ns: int = 1_100,
    ):
        endpoint = Endpoint(sim, network, replica_id, tracer)
        thread = machine.allocate_thread("main", base_cost_ns=message_base_cost_ns)
        # the single stage doubles as the client handler, so it registers
        # under the name clients address their requests to
        super().__init__(endpoint, thread, "handler")
        self.config = config
        self.replica_id = replica_id
        self.machine = machine
        self.service = service
        self.reply_payload_size = reply_payload_size
        self.platform = EnclavePlatform(charge=sim.charge, via_jni=True)
        self.usig = Usig(self.platform, config.trinx_instance_id(replica_id, 0), config.group_secret)
        self.crypto = CryptoProvider(JAVA, charge=sim.charge)

        self.view = 0
        self.next_order = 1  # leader: next to assign; follower: next to ack
        self.pending: deque[Request] = deque()
        self._own_inflight = 0
        self._proposed_keys: set[tuple[str, int]] = set()
        self._instances: dict[int, _MinInstance] = {}
        self._buffered: dict[int, MinPrepare] = {}
        self._last_leader_ui = 0
        self.low_mark = 0

        self.next_exec = 1
        self._reply_cache: dict[str, tuple[int, Any]] = {}
        self._ck_quorum = MatchingQuorum(config.quorum_size)
        self._own_ck_digests: dict[int, bytes] = {}

        self.peer_addresses: dict[str, Address] = {}
        self.executed_requests = 0
        self.proposals = 0

    # ------------------------------------------------------------------
    @property
    def me(self) -> str:
        return self.replica_id

    @property
    def is_leader(self) -> bool:
        return self.config.primary_of_view(self.view) == self.me

    @property
    def high_mark(self) -> int:
        return self.low_mark + self.config.window_size

    def _instance(self, order: int) -> _MinInstance:
        instance = self._instances.get(order)
        if instance is None:
            instance = self._instances[order] = _MinInstance(
                order, acknowledgments=set(), early_commits={}
            )
        return instance

    def wire_peers(self, replicas: list["MinBftReplica"]) -> None:
        for peer in replicas:
            if peer.replica_id != self.replica_id:
                self.peer_addresses[peer.replica_id] = (peer.replica_id, "handler")

    # ------------------------------------------------------------------
    def on_message(self, src: Address, message: Any) -> None:
        if isinstance(message, Request):
            self._on_request(message)
        elif isinstance(message, RequestBurst):
            for request in message.requests:
                self._on_request(request)
        elif isinstance(message, MinPrepare):
            self._on_prepare(message)
        elif isinstance(message, MinCommit):
            self._on_commit(message)
        elif isinstance(message, MinCheckpoint):
            self._on_checkpoint(message)

    # ------------------------------------------------------------------
    def _on_request(self, request: Request) -> None:
        self.crypto.compute_mac(b"client-session", request.digestible(), size_hint=32)
        if not self.is_leader:
            return  # fault-free baseline: followers ignore direct requests
        cached = self._reply_cache.get(request.client_id)
        if cached is not None and cached[0] >= request.request_id:
            return
        if request.key in self._proposed_keys:
            return
        self.pending.append(request)
        self._propose_pending()

    def _propose_pending(self) -> None:
        while self.pending and self.low_mark < self.next_order <= self.high_mark:
            if len(self.pending) < self.config.batch_size and self._own_inflight > 0:
                return  # adaptive batching
            batch: list[Request] = []
            while self.pending and len(batch) < self.config.batch_size:
                request = self.pending.popleft()
                if request.key in self._proposed_keys:
                    continue
                batch.append(request)
                self._proposed_keys.add(request.key)
            if not batch:
                return
            order = self.next_order
            self.next_order += 1
            bare = MinPrepare(self.view, order, tuple(batch), self.me)
            ui = self.usig.create_ui(bare.digestible(), size_hint=bare.wire_size())
            prepare = MinPrepare(self.view, order, tuple(batch), self.me, ui)
            instance = self._instance(order)
            instance.prepare = prepare
            instance.proposal_digest = free_digest(bare.digestible())
            instance.acknowledgments = {self.me}
            self.proposals += 1
            self._own_inflight += 1
            self.broadcast(list(self.peer_addresses.values()), prepare)

    def _on_prepare(self, prepare: MinPrepare) -> None:
        if prepare.view != self.view or prepare.leader != self.config.primary_of_view(self.view):
            return
        if not self.low_mark < prepare.order <= self.high_mark:
            return
        if prepare.order != self.next_order:
            if prepare.order > self.next_order:
                self._buffered.setdefault(prepare.order, prepare)
            return
        self._accept_prepare(prepare)
        while self.next_order in self._buffered:
            self._accept_prepare(self._buffered.pop(self.next_order))

    def _accept_prepare(self, prepare: MinPrepare) -> None:
        ui = prepare.ui
        if ui is None or ui.value <= self._last_leader_ui:
            return  # stale or replayed UI: the timeline only moves forward
        if not self.usig.verify_ui(ui, prepare.digestible(), size_hint=prepare.wire_size()):
            return
        self._last_leader_ui = ui.value
        order = prepare.order
        self.next_order = order + 1
        instance = self._instance(order)
        instance.prepare = prepare
        instance.proposal_digest = free_digest(
            MinPrepare(prepare.view, order, prepare.batch, prepare.leader).digestible()
        )
        bare = MinCommit(prepare.view, order, self.me, instance.proposal_digest)
        own_ui = self.usig.create_ui(bare.digestible(), size_hint=bare.wire_size())
        commit = MinCommit(prepare.view, order, self.me, instance.proposal_digest, own_ui)
        instance.acknowledgments = {prepare.leader, self.me}
        for sender, digest in instance.early_commits.items():
            if digest == instance.proposal_digest:
                instance.acknowledgments.add(sender)
        instance.early_commits.clear()
        self.broadcast(list(self.peer_addresses.values()), commit)
        self._check_committed(instance)

    def _on_commit(self, commit: MinCommit) -> None:
        if commit.view != self.view:
            return
        if not self.low_mark < commit.order <= self.high_mark:
            return
        instance = self._instance(commit.order)
        if instance.committed or commit.replica in instance.acknowledgments:
            return
        if commit.ui is None or not self.usig.verify_ui(
            commit.ui, commit.digestible(), size_hint=commit.wire_size()
        ):
            return
        if instance.proposal_digest is None:
            instance.early_commits[commit.replica] = commit.proposal_digest
            return
        if commit.proposal_digest != instance.proposal_digest:
            return
        instance.acknowledgments.add(commit.replica)
        self._check_committed(instance)

    def _check_committed(self, instance: _MinInstance) -> None:
        if instance.committed or instance.prepare is None:
            return
        if len(instance.acknowledgments) < self.config.quorum_size:
            return
        instance.committed = True
        if self.is_leader:
            self._own_inflight = max(0, self._own_inflight - 1)
        self._execute_ready()
        if self._own_inflight == 0 and self.pending:
            self._propose_pending()

    # ------------------------------------------------------------------
    def _execute_ready(self) -> None:
        while True:
            instance = self._instances.get(self.next_exec)
            if instance is None or not instance.committed:
                return
            for request in instance.prepare.batch:
                result = self.service.execute(request.operation, request.client_id)
                self.sim.charge(self.service.execution_cost_ns(request.operation))
                self._reply_cache[request.client_id] = (request.request_id, result)
                reply = Reply(
                    self.me,
                    request.client_id,
                    request.request_id,
                    self.view,
                    result,
                    self.reply_payload_size,
                )
                self.crypto.compute_mac(b"client-session", reply.digestible(), size_hint=32)
                node, stage = (
                    request.client_id.split(":", 1)
                    if ":" in request.client_id
                    else (request.client_id, "client")
                )
                self.send((node, stage), reply)
                self.executed_requests += 1
            executed_order = self.next_exec
            self.next_exec += 1
            if self.config.is_checkpoint_boundary(executed_order):
                self._take_checkpoint(executed_order)

    # ------------------------------------------------------------------
    def _take_checkpoint(self, order: int) -> None:
        digest = self.crypto.digest(
            ("min-checkpoint-state", order, self.service.state_digestible()),
            size_hint=max(64, self.service.snapshot_size()),
        )
        self._own_ck_digests[order] = digest
        bare = MinCheckpoint(order, self.me, digest)
        ui = self.usig.create_ui(bare.digestible(), size_hint=bare.wire_size())
        checkpoint = MinCheckpoint(order, self.me, digest, ui)
        self.broadcast(list(self.peer_addresses.values()), checkpoint)
        if self._ck_quorum.add((order, digest), self.me, None) or self._ck_quorum.reached(
            (order, digest)
        ):
            self._stabilize(order)

    def _on_checkpoint(self, checkpoint: MinCheckpoint) -> None:
        if checkpoint.order <= self.low_mark:
            return
        if checkpoint.ui is None or not self.usig.verify_ui(
            checkpoint.ui, checkpoint.digestible(), size_hint=checkpoint.wire_size()
        ):
            return
        if self._ck_quorum.add(checkpoint.agreement_key(), checkpoint.replica, None):
            if self._own_ck_digests.get(checkpoint.order) == checkpoint.state_digest:
                self._stabilize(checkpoint.order)

    def _stabilize(self, order: int) -> None:
        if order <= self.low_mark:
            return
        self.low_mark = order
        for stale in [o for o in self._instances if o <= order]:
            del self._instances[stale]
        for stale in [o for o in self._buffered if o <= order]:
            del self._buffered[stale]
        for stale in [o for o in self._own_ck_digests if o <= order]:
            del self._own_ck_digests[stale]
        self._ck_quorum.discard_below((order + 1, b""))
        if self.is_leader:
            self._propose_pending()

    def stats(self) -> dict:
        return {
            "replica": self.replica_id,
            "executed_requests": self.executed_requests,
            "proposals": self.proposals,
            "stable_checkpoint": self.low_mark,
        }


def build_minbft_group(
    sim: Simulator,
    network: Network,
    machines: list[Machine],
    config: ReplicaGroupConfig,
    service_factory,
    reply_payload_size: int = 0,
    tracer: Tracer = NULL_TRACER,
    message_base_cost_ns: int = 1_100,
) -> list[MinBftReplica]:
    """Build and wire a MinBFT group (one replica per machine)."""
    if config.num_pillars != 1:
        raise ConfigurationError("MinBFT is inherently sequential: num_pillars must be 1")
    if len(machines) != config.n:
        raise ConfigurationError(f"need {config.n} machines for {config.n} replicas")
    replicas = [
        MinBftReplica(
            sim,
            network,
            machine,
            config,
            replica_id,
            service_factory(),
            reply_payload_size=reply_payload_size,
            tracer=tracer,
            message_base_cost_ns=message_base_cost_ns,
        )
        for machine, replica_id in zip(machines, config.replica_ids)
    ]
    for replica in replicas:
        replica.wire_peers(replicas)
    return replicas
