"""PBFT with consensus-oriented parallelization (``PBFTcop``) and its
trusted-MAC variant (``HybridPBFT``).

This is the paper's primary baseline (§6, "Subjects"): the classic
three-phase PBFT ordering protocol implemented on the same code base and
parallelization scheme as Hybster — pillars own disjoint shares of the
order-number space, an execution stage delivers globally, checkpoints are
shared round-robin.  Differences from Hybster:

* ``n = 3f + 1`` replicas; *prepared* needs the PRE-PREPARE plus ``2f``
  matching PREPAREs, *committed* needs ``2f + 1`` matching COMMITs;
* messages carry MAC **authenticators** (one MAC entry per receiver —
  ~3 hashes per outgoing message and one per incoming at ``n = 4``), or
  with ``cert_mode="trusted_macs"`` a single non-repudiable trusted MAC
  from TrInX (one enclave call out, one in) — that configuration is
  HybridPBFT;
* equivocation is tolerated by the quorum sizes instead of prevented, so
  no trusted counters constrain processing order.

The view-change protocol is not implemented: the baseline exists for the
fault-free performance comparison, exactly how the paper uses it.  Fault
handling is evaluated on Hybster (see tests/test_viewchange*.py).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any

from repro.baselines.pbft_messages import PbftCheckpoint, PbftCommit, PbftPrepare, PrePrepare
from repro.messages.ordering import InstanceFetch
from repro.core.config import COUNTER_M, ReplicaGroupConfig
from repro.core.execution import ExecutionStage, ReplierStage
from repro.core.handler import ClientHandler
from repro.core.quorum import MatchingQuorum
from repro.crypto.authenticators import AuthenticatorFactory
from repro.crypto.costs import JAVA
from repro.crypto.digests import digest as free_digest
from repro.crypto.provider import CryptoProvider
from repro.errors import ConfigurationError
from repro.messages.client import Request
from repro.messages.internal import CkReached, CkStable, ExecRequest, FillGap, OrderRequest, StateInstall
from repro.messages.statetransfer import StateRequest, StateResponse
from repro.services.base import Service
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.process import Address, Endpoint, Stage
from repro.sim.resources import Machine, SimThread
from repro.sim.tracing import NULL_TRACER, Tracer
from repro.trinx.enclave import EnclavePlatform
from repro.trinx.trinx import TrInX

AUTHENTICATORS = "authenticators"
TRUSTED_MACS = "trusted_macs"


class _AuthenticatorCertifier:
    """PBFT's classic certification: digest once, one MAC per receiver."""

    def __init__(self, me: str, receivers: list[str], group_secret: bytes, charge):
        self.receivers = receivers
        self.provider = CryptoProvider(JAVA, charge=charge)
        self.factory = AuthenticatorFactory(me, group_secret, self.provider)

    def create(self, message) -> Any:
        digest = self.provider.digest(message.digestible(), size_hint=message.wire_size())
        return self.factory.create(self.receivers, digest, size_hint=32)

    def verify(self, message) -> bool:
        if message.auth is None:
            return False
        digest = self.provider.digest(message.digestible(), size_hint=message.wire_size())
        return self.factory.verify(message.auth, digest, size_hint=32)


class _TrustedMacCertifier:
    """HybridPBFT's certification: one trusted MAC from TrInX."""

    def __init__(self, trinx: TrInX, expected_issuer_of):
        self.trinx = trinx
        self.expected_issuer_of = expected_issuer_of  # message -> instance id

    def create(self, message) -> Any:
        return self.trinx.create_trusted_mac(COUNTER_M, message.digestible(), size_hint=message.wire_size())

    def verify(self, message) -> bool:
        auth = message.auth
        if auth is None or not auth.is_trusted_mac:
            return False
        if auth.issuer != self.expected_issuer_of(message):
            return False
        return self.trinx.verify(auth, message.digestible(), size_hint=message.wire_size())


@dataclass
class _PbftInstance:
    order: int
    view: int = -1
    pre_prepare: PrePrepare | None = None
    proposal_digest: bytes | None = None
    # digest each replica voted for; only votes matching the PRE-PREPARE's
    # proposal digest count towards the quorums
    prepare_votes: dict[str, bytes] = field(default_factory=dict)
    commit_votes: dict[str, bytes] = field(default_factory=dict)
    prepared: bool = False
    committed: bool = False
    proposed_at_ns: int = 0

    def matching(self, votes: dict[str, bytes]) -> set[str]:
        if self.proposal_digest is None:
            return set()
        return {replica for replica, digest in votes.items() if digest == self.proposal_digest}


class PbftPillar(Stage):
    """One PBFTcop ordering pillar (three-phase, class ``o mod P``)."""

    def __init__(
        self,
        endpoint: Endpoint,
        thread: SimThread,
        config: ReplicaGroupConfig,
        replica_id: str,
        index: int,
        certifier,
        f_pbft: int,
    ):
        super().__init__(endpoint, thread, f"pillar{index}")
        self.config = config
        self.replica_id = replica_id
        self.index = index
        self.certifier = certifier
        self.f_pbft = f_pbft
        self.client_crypto = CryptoProvider(JAVA, charge=endpoint.sim.charge)

        self.view = 0
        # next order number this replica proposes (its own slots ascending);
        # PBFT has no trusted counters, so *acceptance* is out-of-order
        self.next_own = self._first_own_slot_after(0)
        self.low_mark = 0
        self.pending: deque[Request] = deque()
        self._own_inflight = 0  # own proposals not yet committed (batch pacing)
        self._proposed_keys: set[tuple[str, int]] = set()
        self._instances: dict[int, _PbftInstance] = {}
        # proposals that arrived ahead of our (lagging) window position
        self._lookahead: dict[int, PrePrepare] = {}

        self.stable_ck_order = 0
        self._ck_quorum = MatchingQuorum(2 * f_pbft + 1)
        self._own_ck_digests: dict[int, bytes] = {}
        self._remote_stable: dict[int, tuple[str, tuple[PbftCheckpoint, ...]]] = {}
        self._transfer_in_flight: int | None = None

        self.peer_addresses: dict[str, Address] = {}
        self.exec_address: Address | None = None
        self._noop_timer = None

        self.proposals = 0
        self.instances_committed = 0

    # ------------------------------------------------------------------
    @property
    def me(self) -> str:
        return self.replica_id

    @property
    def high_mark(self) -> int:
        return self.low_mark + self.config.window_size

    def _class_order_at_or_after(self, candidate: int) -> int:
        return candidate + (self.index - candidate) % self.config.num_pillars

    _NEVER = 1 << 62  # sentinel: this replica proposes no orders (follower)

    def _first_own_slot_after(self, order: int) -> int:
        """Smallest class order above ``order`` this replica proposes."""
        candidate = self._class_order_at_or_after(order + 1)
        for _ in range(self.config.n):
            if self.config.proposer_of(self.view, candidate) == self.me:
                return candidate
            candidate += self.config.num_pillars
        return self._NEVER  # fixed-leader follower: no own slots

    def _instance(self, order: int) -> _PbftInstance:
        instance = self._instances.get(order)
        if instance is None:
            instance = self._instances[order] = _PbftInstance(order)
        return instance

    def _in_window(self, order: int) -> bool:
        return self.low_mark < order <= self.high_mark

    # ------------------------------------------------------------------
    def on_message(self, src: Address, message: Any) -> None:
        if isinstance(message, OrderRequest):
            self._on_order_request(message)
        elif isinstance(message, PrePrepare):
            self._on_pre_prepare(message)
        elif isinstance(message, PbftPrepare):
            self._on_prepare(message)
        elif isinstance(message, PbftCommit):
            self._on_commit(message)
        elif isinstance(message, PbftCheckpoint):
            self._on_checkpoint(message)
        elif isinstance(message, CkReached):
            self._on_ck_reached(message)
        elif isinstance(message, CkStable):
            self._apply_stable_checkpoint(message.order)
        elif isinstance(message, FillGap):
            self._on_fill_gap(message)
        elif isinstance(message, InstanceFetch):
            self._on_instance_fetch(src, message)
        elif isinstance(message, StateResponse):
            self._on_state_response(message)

    # ------------------------------------------------------------------
    # Proposing
    # ------------------------------------------------------------------
    def _on_order_request(self, message: OrderRequest) -> None:
        for request in message.requests:
            if request.key not in self._proposed_keys:
                self.pending.append(request)
        self._advance()

    def _advance(self) -> None:
        """Propose pending requests on our own slots, ascending."""
        while self._in_window(self.next_own):
            if not self.pending:
                if self.config.rotation:
                    self._arm_noop_timer(self.next_own)
                return
            if len(self.pending) < self.config.batch_size and self._own_inflight > 0:
                return  # adaptive batching: let the batch fill while busy
            self._propose(self.next_own)

    def _arm_noop_timer(self, order: int) -> None:
        if self._noop_timer is not None:
            return
        self._noop_timer = self.set_timer(self.config.noop_delay_ns, self._noop_tick, order)

    def _noop_tick(self, order: int) -> None:
        self._noop_timer = None
        if order != self.next_own or not self._in_window(order):
            return
        self._propose(order, allow_empty=True)
        self._advance()

    def _take_batch(self) -> tuple[Request, ...]:
        batch: list[Request] = []
        while self.pending and len(batch) < self.config.batch_size:
            request = self.pending.popleft()
            if request.key in self._proposed_keys:
                continue
            batch.append(request)
            self._proposed_keys.add(request.key)
        return tuple(batch)

    def _propose(self, order: int, allow_empty: bool = False) -> None:
        batch = self._take_batch()
        if not batch and not allow_empty:
            return
        for request in batch:
            self.client_crypto.compute_mac(b"client-session", request.digestible(), size_hint=32)
        bare = PrePrepare(self.view, order, batch, self.me)
        pre_prepare = replace(bare, auth=self.certifier.create(bare))
        instance = self._instance(order)
        instance.view = self.view
        instance.pre_prepare = pre_prepare
        instance.proposal_digest = free_digest(pre_prepare.proposal_digestible())
        instance.proposed_at_ns = self.now
        self.proposals += 1
        self._own_inflight += 1
        self.next_own = self._first_own_slot_after(order)
        self.broadcast(list(self.peer_addresses.values()), pre_prepare)

    # ------------------------------------------------------------------
    # Three phases
    # ------------------------------------------------------------------
    def _on_pre_prepare(self, pre_prepare: PrePrepare) -> None:
        order = pre_prepare.order
        if self.config.pillar_of_order(order) != self.index:
            return
        if pre_prepare.view != self.view:
            return
        if pre_prepare.leader != self.config.proposer_of(self.view, order):
            return
        if not self._in_window(order):
            # ahead of our window (our checkpoint lags): keep it so the
            # proposal is ready once the window advances
            if self.high_mark < order <= self.high_mark + 2 * self.config.window_size:
                self._lookahead.setdefault(order, pre_prepare)
            return
        instance = self._instance(order)
        if instance.pre_prepare is not None:
            return  # duplicate (or equivocation, which quorums tolerate)
        if not self.certifier.verify(pre_prepare):
            return
        self._accept_pre_prepare(pre_prepare)

    def _accept_pre_prepare(self, pre_prepare: PrePrepare) -> None:
        for request in pre_prepare.batch:
            self.client_crypto.compute_mac(b"client-session", request.digestible(), size_hint=32)
        order = pre_prepare.order
        instance = self._instance(order)
        instance.view = pre_prepare.view
        instance.pre_prepare = pre_prepare
        instance.proposal_digest = free_digest(pre_prepare.proposal_digestible())
        instance.proposed_at_ns = self.now
        bare = PbftPrepare(pre_prepare.view, order, self.me, instance.proposal_digest)
        prepare = replace(bare, auth=self.certifier.create(bare))
        instance.prepare_votes[self.me] = instance.proposal_digest
        self.broadcast(list(self.peer_addresses.values()), prepare)
        self._check_prepared(instance)

    def _on_prepare(self, prepare: PbftPrepare) -> None:
        instance = self._relevant_instance(prepare.view, prepare.order)
        if instance is None or instance.prepared:
            return
        if prepare.replica in instance.prepare_votes:
            return
        if not self.certifier.verify(prepare):
            return
        instance.prepare_votes[prepare.replica] = prepare.proposal_digest
        self._check_prepared(instance)

    def _check_prepared(self, instance: _PbftInstance) -> None:
        if instance.prepared or instance.pre_prepare is None:
            return
        # prepared: the PRE-PREPARE plus 2f matching PREPAREs (the leader
        # does not send a PREPARE; its PRE-PREPARE stands in)
        votes = instance.matching(instance.prepare_votes) - {instance.pre_prepare.leader}
        if len(votes) < 2 * self.f_pbft:
            return
        instance.prepared = True
        bare = PbftCommit(instance.view, instance.order, self.me, instance.proposal_digest)
        commit = replace(bare, auth=self.certifier.create(bare))
        instance.commit_votes[self.me] = instance.proposal_digest
        self.broadcast(list(self.peer_addresses.values()), commit)
        self._check_committed(instance)

    def _on_commit(self, commit: PbftCommit) -> None:
        instance = self._relevant_instance(commit.view, commit.order)
        if instance is None or instance.committed:
            return
        if commit.replica in instance.commit_votes:
            return
        if not self.certifier.verify(commit):
            return
        instance.commit_votes[commit.replica] = commit.proposal_digest
        self._check_committed(instance)

    def _check_committed(self, instance: _PbftInstance) -> None:
        if instance.committed or not instance.prepared:
            return
        if len(instance.matching(instance.commit_votes)) < 2 * self.f_pbft + 1:
            return
        instance.committed = True
        self.instances_committed += 1
        if instance.pre_prepare is not None and instance.pre_prepare.leader == self.me:
            self._own_inflight = max(0, self._own_inflight - 1)
            if self._own_inflight == 0 and self.pending:
                self.sim.schedule(0, self.thread.submit, self._drain_partial, None)
        if self.exec_address is not None:
            self.send(
                self.exec_address,
                ExecRequest(instance.order, instance.view, instance.pre_prepare.batch),
            )

    def _drain_partial(self, _arg) -> None:
        self._advance()

    def _relevant_instance(self, view: int, order: int) -> _PbftInstance | None:
        if self.config.pillar_of_order(order) != self.index:
            return None
        if view != self.view or not self._in_window(order):
            return None
        return self._instance(order)

    def _on_fill_gap(self, message: FillGap) -> None:
        order = message.order
        if not self._in_window(order):
            return
        if self.config.proposer_of(self.view, order) == self.me:
            if order == self.next_own:
                self._propose(order, allow_empty=True)
                self._advance()
            return
        self.broadcast(list(self.peer_addresses.values()), InstanceFetch(order, self.view))

    def _on_instance_fetch(self, src: Address, message: InstanceFetch) -> None:
        if message.view != self.view:
            return
        instance = self._instances.get(message.order)
        if instance is None:
            return
        if instance.pre_prepare is not None:
            if instance.pre_prepare.leader == self.me:
                self.send(src, instance.pre_prepare)
            elif instance.committed:
                # the proposer may have garbage-collected it; committed
                # instances are safe to relay on its behalf
                self.send(src, instance.pre_prepare)
        if self.me in instance.prepare_votes and instance.proposal_digest is not None:
            bare = PbftPrepare(instance.view, message.order, self.me, instance.proposal_digest)
            self.send(src, replace(bare, auth=self.certifier.create(bare)))
        if self.me in instance.commit_votes and instance.proposal_digest is not None:
            bare = PbftCommit(instance.view, message.order, self.me, instance.proposal_digest)
            self.send(src, replace(bare, auth=self.certifier.create(bare)))

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _on_ck_reached(self, message: CkReached) -> None:
        order, digest = message.order, message.state_digest
        if order <= self.stable_ck_order:
            return
        self._own_ck_digests[order] = digest
        bare = PbftCheckpoint(order, self.me, digest)
        checkpoint = replace(bare, auth=self.certifier.create(bare))
        self.broadcast(list(self.peer_addresses.values()), checkpoint)
        if self._ck_quorum.add((order, digest), self.me, checkpoint) or self._ck_quorum.reached(
            (order, digest)
        ):
            self._declare_stable(order)

    def _on_checkpoint(self, checkpoint: PbftCheckpoint) -> None:
        if checkpoint.order <= self.stable_ck_order:
            return
        if not self.certifier.verify(checkpoint):
            return
        key = checkpoint.agreement_key()
        if self._ck_quorum.add(key, checkpoint.replica, checkpoint):
            if self._own_ck_digests.get(checkpoint.order) == checkpoint.state_digest:
                self._declare_stable(checkpoint.order)
            else:
                # a quorum advanced without us: fetch the state if our own
                # execution does not catch up in time
                certificate = tuple(self._ck_quorum.payloads(key))
                self._remote_stable[checkpoint.order] = (checkpoint.replica, certificate)
                self.set_timer(
                    self.config.fill_gap_timeout_ns, self._check_fallen_behind, checkpoint.order
                )

    def _check_fallen_behind(self, order: int) -> None:
        entry = self._remote_stable.pop(order, None)
        if entry is None or order <= self.stable_ck_order:
            return  # the checkpoint became stable locally in the meantime
        if self._transfer_in_flight is not None and self._transfer_in_flight >= order:
            return
        source, _certificate = entry
        self._transfer_in_flight = order
        self.send((source, "exec"), StateRequest(self.me, order))

    def _on_state_response(self, response: StateResponse) -> None:
        self._transfer_in_flight = None
        if response.checkpoint_order <= self.stable_ck_order:
            return
        certificate = response.checkpoint_certificate
        voters = set()
        for checkpoint in certificate:
            if not isinstance(checkpoint, PbftCheckpoint):
                return
            if checkpoint.order != response.checkpoint_order:
                return
            if checkpoint.state_digest != certificate[0].state_digest:
                return
            if not self.certifier.verify(checkpoint):
                return
            voters.add(checkpoint.replica)
        if len(voters) < 2 * self.f_pbft + 1:
            return
        snapshot, reply_vector = response.snapshot
        if self.exec_address is not None:
            self.send(
                self.exec_address,
                StateInstall(
                    response.checkpoint_order,
                    snapshot,
                    reply_vector,
                    certificate[0].state_digest,
                ),
            )
        announcement = CkStable(response.checkpoint_order, certificate)
        node = self.endpoint.node
        for i in range(self.config.num_pillars):
            if i != self.index:
                self.send((node, f"pillar{i}"), announcement)
        self._apply_stable_checkpoint(response.checkpoint_order)

    def _declare_stable(self, order: int) -> None:
        digest = self._own_ck_digests[order]
        announcement = CkStable(order, tuple(self._ck_quorum.payloads((order, digest))))
        node = self.endpoint.node
        for i in range(self.config.num_pillars):
            if i != self.index:
                self.send((node, f"pillar{i}"), announcement)
        if self.exec_address is not None:
            self.send(self.exec_address, announcement)
        self._apply_stable_checkpoint(order)

    def _apply_stable_checkpoint(self, order: int) -> None:
        if order <= self.stable_ck_order:
            return
        self.stable_ck_order = order
        self._remote_stable.pop(order, None)
        self.low_mark = order
        for stale in [o for o in self._instances if o <= order]:
            del self._instances[stale]
        for stale in [o for o in self._own_ck_digests if o <= order]:
            del self._own_ck_digests[stale]
        self._ck_quorum.discard_below((order + 1, b""))
        self.next_own = max(self.next_own, self._first_own_slot_after(order))
        # replay proposals that had arrived ahead of the old window
        ready = sorted(o for o in self._lookahead if self._in_window(o))
        for stale in [o for o in self._lookahead if o <= order]:
            del self._lookahead[stale]
        for o in ready:
            pre_prepare = self._lookahead.pop(o, None)
            if pre_prepare is not None:
                self._on_pre_prepare(pre_prepare)
        self._advance()


class PbftReplica:
    """One PBFTcop / HybridPBFT replica."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        machine: Machine,
        config: ReplicaGroupConfig,
        replica_id: str,
        service: Service,
        cert_mode: str = AUTHENTICATORS,
        reply_payload_size: int = 0,
        tracer: Tracer = NULL_TRACER,
        message_base_cost_ns: int = 1_100,
        num_repliers: int = 2,
    ):
        if config.n < 4 or (config.n - 1) % 3 != 0:
            raise ConfigurationError(f"PBFT needs n = 3f + 1 replicas, got n = {config.n}")
        self.sim = sim
        self.config = config
        self.replica_id = replica_id
        self.machine = machine
        self.f_pbft = (config.n - 1) // 3
        self.cert_mode = cert_mode
        self.endpoint = Endpoint(sim, network, replica_id, tracer)
        self.platform = EnclavePlatform(charge=sim.charge, via_jni=True)

        from repro.core.replica import _ThreadAllocator

        allocator = _ThreadAllocator(machine, message_base_cost_ns)
        receivers = [rid for rid in config.replica_ids if rid != replica_id]
        self.pillars = []
        for i in range(config.num_pillars):
            if cert_mode == TRUSTED_MACS:
                trinx = TrInX(
                    self.platform, config.trinx_instance_id(replica_id, i), config.group_secret
                )
                certifier = _TrustedMacCertifier(trinx, self._expected_issuer(i))
            else:
                certifier = _AuthenticatorCertifier(
                    replica_id, receivers, config.group_secret, sim.charge
                )
            self.pillars.append(
                PbftPillar(
                    self.endpoint,
                    allocator.next(f"pillar{i}"),
                    config,
                    replica_id,
                    i,
                    certifier,
                    self.f_pbft,
                )
            )
        self.execution = ExecutionStage(
            self.endpoint,
            allocator.next("exec"),
            config,
            replica_id,
            service,
            CryptoProvider(JAVA, charge=sim.charge),
            reply_payload_size=reply_payload_size,
        )
        self.handler = ClientHandler(
            self.endpoint,
            allocator.next("handler"),
            config,
            replica_id,
            CryptoProvider(JAVA, charge=sim.charge),
        )
        self.repliers = [
            ReplierStage(
                self.endpoint,
                allocator.next(f"replier{i}"),
                CryptoProvider(JAVA, charge=sim.charge),
                f"replier{i}",
            )
            for i in range(num_repliers)
        ]
        self._wire_local()

    def _expected_issuer(self, pillar_index: int):
        def issuer_of(message) -> str:
            sender = getattr(message, "replica", None) or getattr(message, "leader", None)
            return self.config.trinx_instance_id(sender, pillar_index)

        return issuer_of

    def _wire_local(self) -> None:
        node = self.replica_id
        pillar_addresses = [(node, f"pillar{i}") for i in range(self.config.num_pillars)]
        for pillar in self.pillars:
            pillar.exec_address = (node, "exec")
        self.execution.pillar_addresses = pillar_addresses
        self.execution.handler_address = (node, "handler")
        self.execution.replier_addresses = [(node, replier.name) for replier in self.repliers]
        self.handler.pillar_addresses = pillar_addresses
        self.handler.exec_address = (node, "exec")

    def wire_peers(self, replicas: list["PbftReplica"]) -> None:
        for peer in replicas:
            if peer.replica_id == self.replica_id:
                continue
            for index, pillar in enumerate(self.pillars):
                pillar.peer_addresses[peer.replica_id] = (peer.replica_id, f"pillar{index}")

    @property
    def service(self) -> Service:
        return self.execution.service

    def stats(self) -> dict:
        return {
            "replica": self.replica_id,
            "executed_requests": self.execution.executed_requests,
            "proposals": sum(pillar.proposals for pillar in self.pillars),
            "stable_checkpoint": self.pillars[0].stable_ck_order,
        }


def build_pbft_group(
    sim: Simulator,
    network: Network,
    machines: list[Machine],
    config: ReplicaGroupConfig,
    service_factory,
    cert_mode: str = AUTHENTICATORS,
    reply_payload_size: int = 0,
    tracer: Tracer = NULL_TRACER,
    message_base_cost_ns: int = 1_100,
) -> list[PbftReplica]:
    """Build and wire a PBFTcop/HybridPBFT group (one replica per machine)."""
    if len(machines) != config.n:
        raise ConfigurationError(f"need {config.n} machines for {config.n} replicas")
    replicas = [
        PbftReplica(
            sim,
            network,
            machine,
            config,
            replica_id,
            service_factory(),
            cert_mode=cert_mode,
            reply_payload_size=reply_payload_size,
            tracer=tracer,
            message_base_cost_ns=message_base_cost_ns,
        )
        for machine, replica_id in zip(machines, config.replica_ids)
    ]
    for replica in replicas:
        replica.wire_peers(replicas)
    return replicas
