"""Comparison systems evaluated against Hybster in the paper.

* :mod:`repro.baselines.pbft` — PBFT realized with the consensus-oriented
  parallelization scheme (``PBFTcop``), certifying messages either with
  classic MAC authenticators or, as ``HybridPBFT``, with signature-like
  trusted MACs from TrInX (§6, "Subjects").
* :mod:`repro.baselines.minbft` / :mod:`repro.baselines.usig` — MinBFT
  with its USIG trusted subsystem: the sequential two-phase hybrid
  protocol Hybster's analysis (§4) builds on; used for ablations.
* :mod:`repro.baselines.cash` — the FPGA-based CASH subsystem's cost
  model (57 µs per certification, a single channel), the state of the
  art TrInX is compared against in §6.1.
"""

from repro.baselines.cash import CashSubsystem
from repro.baselines.pbft import PbftReplica, build_pbft_group
from repro.baselines.minbft import MinBftReplica, build_minbft_group
from repro.baselines.usig import Usig

__all__ = [
    "CashSubsystem",
    "PbftReplica",
    "build_pbft_group",
    "MinBftReplica",
    "build_minbft_group",
    "Usig",
]
