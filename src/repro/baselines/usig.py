"""USIG — MinBFT's trusted subsystem (Unique Sequential Identifier Generator).

Compared with TrInc/TrInX, USIG has the simplest possible interface: one
counter, implicitly incremented on every certification.  A UI (unique
identifier) binds a message to exactly one counter value, so a replica
cannot assign the same identifier to two different messages — MinBFT's
equivocation-*detection* mechanism (§4.2: the place of a message in the
timeline is determined at run time by whatever the counter happens to
be, not a priori).

Costs mirror TrInX: every create/verify is an enclave call.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any

from repro.crypto.digests import canonical_bytes
from repro.trinx.enclave import EnclavePlatform


@dataclass(frozen=True)
class UI:
    """A unique identifier: (issuer, counter value, certificate)."""

    issuer: str
    value: int
    mac: bytes

    def wire_size(self) -> int:
        return 16 + 32


class Usig:
    """One USIG instance: a single implicitly incremented counter."""

    def __init__(self, platform: EnclavePlatform, instance_id: str, group_secret: bytes):
        self.platform = platform
        self.instance_id = instance_id
        self._group_secret = group_secret
        self._counter = 0
        self.uis_issued = 0

    @property
    def counter(self) -> int:
        return self._counter

    def _mac(self, issuer: str, value: int, message: Any) -> bytes:
        return hmac.new(
            self._group_secret,
            canonical_bytes(("usig", issuer, value, message)),
            hashlib.sha256,
        ).digest()

    def create_ui(self, message: Any, size_hint: int = 32) -> UI:
        """Certify ``message`` with the next counter value (implicit ++)."""
        self._counter += 1
        self.uis_issued += 1
        self.platform.account_call(size_hint)
        return UI(self.instance_id, self._counter, self._mac(self.instance_id, self._counter, message))

    def verify_ui(self, ui: UI, message: Any, size_hint: int = 32) -> bool:
        """Verify a UI issued by any USIG instance of the group."""
        self.platform.account_call(size_hint)
        expected = self._mac(ui.issuer, ui.value, message)
        return hmac.compare_digest(expected, ui.mac)
