"""Cost model of CASH, the FPGA-based trusted subsystem behind CheapBFT.

The paper (§6.1) reports 57 µs per certification of a 32-byte message
with SHA-256, i.e. ~17,500 certifications per second — and, crucially,
the FPGA is reachable over a *single channel*: no matter how many cores
ask for certificates, requests serialize.  TrInX beats it both on raw
latency (4.15 µs) and by scaling through instance multiplication.

The class below implements the same HMAC interface as TrInX's trusted
MACs but charges the FPGA round-trip and serializes all callers through
one channel, so Figure 5a's comparison can be *simulated* rather than
asserted.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Any

from repro.crypto.digests import canonical_bytes
from repro.sim.kernel import Simulator

CASH_CERT_NS = 57_000


class CashSubsystem:
    """A single-channel FPGA trusted subsystem with monotonic counters."""

    def __init__(self, sim: Simulator | None, instance_id: str, group_secret: bytes, num_counters: int = 4):
        self.sim = sim
        self.instance_id = instance_id
        self._group_secret = group_secret
        self._counters = [0] * num_counters
        self._channel_available_at = 0
        self.certificates_issued = 0

    def _occupy_channel(self) -> None:
        """Serialize the caller through the single FPGA channel."""
        if self.sim is None:
            return
        now = self.sim.now
        start = max(now, self._channel_available_at)
        finish = start + CASH_CERT_NS
        self._channel_available_at = finish
        # the calling thread is busy for the whole queueing + service time
        self.sim.charge(finish - now)

    def create_certificate(self, counter: int, new_value: int, message: Any) -> bytes:
        """Certify ``message`` with a counter update (TrInc-style)."""
        if new_value < self._counters[counter]:
            raise ValueError(f"counter {counter} cannot regress to {new_value}")
        self._occupy_channel()
        self._counters[counter] = new_value
        self.certificates_issued += 1
        return hmac.new(
            self._group_secret,
            canonical_bytes(("cash", self.instance_id, counter, new_value, message)),
            hashlib.sha256,
        ).digest()

    def verify_certificate(
        self, issuer: str, counter: int, value: int, message: Any, mac: bytes
    ) -> bool:
        self._occupy_channel()
        expected = hmac.new(
            self._group_secret,
            canonical_bytes(("cash", issuer, counter, value, message)),
            hashlib.sha256,
        ).digest()
        return hmac.compare_digest(expected, mac)

    def current_value(self, counter: int) -> int:
        return self._counters[counter]
