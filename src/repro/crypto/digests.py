"""SHA-256 digests over arbitrary protocol data.

Protocol objects are canonically serialized before hashing so that two
replicas computing the digest of "the same" request or checkpoint state
always agree, regardless of in-memory representation.
"""

from __future__ import annotations

import hashlib
from typing import Any


def canonical_bytes(data: Any) -> bytes:
    """Serialize ``data`` into a canonical byte string for hashing.

    Supports bytes, str, int, bool, None, floats, and (nested) tuples,
    lists, dicts, and frozensets of those.  Dicts are serialized in sorted
    key order; type tags prevent cross-type collisions (``b"1"`` vs ``1``).
    """
    if isinstance(data, bytes):
        return b"B" + len(data).to_bytes(4, "big") + data
    if isinstance(data, str):
        raw = data.encode("utf-8")
        return b"S" + len(raw).to_bytes(4, "big") + raw
    if isinstance(data, bool):  # before int: bool is an int subclass
        return b"T" if data else b"F"
    if isinstance(data, int):
        raw = str(data).encode("ascii")
        return b"I" + len(raw).to_bytes(4, "big") + raw
    if isinstance(data, float):
        raw = repr(data).encode("ascii")
        return b"D" + len(raw).to_bytes(4, "big") + raw
    if data is None:
        return b"N"
    if isinstance(data, (tuple, list)):
        parts = [canonical_bytes(item) for item in data]
        return b"L" + len(parts).to_bytes(4, "big") + b"".join(parts)
    if isinstance(data, frozenset):
        parts = sorted(canonical_bytes(item) for item in data)
        return b"Z" + len(parts).to_bytes(4, "big") + b"".join(parts)
    if isinstance(data, dict):
        parts = []
        for key in sorted(data, key=lambda k: canonical_bytes(k)):
            parts.append(canonical_bytes(key))
            parts.append(canonical_bytes(data[key]))
        return b"M" + len(parts).to_bytes(4, "big") + b"".join(parts)
    digestible = getattr(data, "digestible", None)
    if callable(digestible):
        return canonical_bytes(digestible())
    raise TypeError(f"cannot canonically serialize {type(data).__name__}")


def digest(data: Any) -> bytes:
    """SHA-256 digest of the canonical serialization of ``data``."""
    return hashlib.sha256(canonical_bytes(data)).digest()


def digest_hex(data: Any) -> str:
    """Hex form of :func:`digest`, for traces and error messages."""
    return digest(data).hex()


DIGEST_SIZE = 32
