"""HMAC-SHA256 message authentication codes.

These are the *untrusted* MACs of the paper: any holder of the session key
can produce them, so they provide authenticity but not non-repudiability.
Trusted MACs (non-repudiable, enclave-held key) live in :mod:`repro.trinx`.
"""

from __future__ import annotations

import hmac
import hashlib
from typing import Any

from repro.crypto.digests import canonical_bytes

MAC_SIZE = 32


def compute_mac(key: bytes, data: Any) -> bytes:
    """HMAC-SHA256 of the canonical serialization of ``data``."""
    return hmac.new(key, canonical_bytes(data), hashlib.sha256).digest()


def verify_mac(key: bytes, data: Any, mac: bytes) -> bool:
    """Constant-time verification of an HMAC produced by :func:`compute_mac`."""
    return hmac.compare_digest(compute_mac(key, data), mac)


def session_key(group_secret: bytes, party_a: str, party_b: str) -> bytes:
    """Derive the pairwise session key between two parties.

    The derivation is symmetric (ordering of the parties does not matter),
    mirroring the pairwise keys PBFT establishes between every replica and
    client pair for its authenticators.
    """
    first, second = sorted((party_a, party_b))
    material = canonical_bytes((first, second))
    return hmac.new(group_secret, b"session" + material, hashlib.sha256).digest()
