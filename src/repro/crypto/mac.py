"""HMAC-SHA256 message authentication codes.

These are the *untrusted* MACs of the paper: any holder of the session key
can produce them, so they provide authenticity but not non-repudiability.
Trusted MACs (non-repudiable, enclave-held key) live in :mod:`repro.trinx`.
"""

from __future__ import annotations

import hmac
import hashlib
from typing import Any, Iterable, Sequence

from repro.crypto.digests import canonical_bytes

MAC_SIZE = 32


def compute_mac(key: bytes, data: Any) -> bytes:
    """HMAC-SHA256 of the canonical serialization of ``data``."""
    return hmac.new(key, canonical_bytes(data), hashlib.sha256).digest()


def _pack_items(items: Iterable[Any]) -> tuple[bytearray, list[tuple[int, int]]]:
    """Serialize ``items`` back to back into one buffer, returning slices.

    The hot path MACs whole batches of requests/replies at once; packing
    them into a single contiguous buffer and hashing ``memoryview`` slices
    avoids one allocation per item.
    """
    buffer = bytearray()
    spans: list[tuple[int, int]] = []
    for item in items:
        start = len(buffer)
        buffer += canonical_bytes(item)
        spans.append((start, len(buffer)))
    return buffer, spans


def compute_mac_many(key: bytes, items: Sequence[Any]) -> list[bytes]:
    """Vectorized :func:`compute_mac`: one buffer, one HMAC per slice."""
    buffer, spans = _pack_items(items)
    view = memoryview(buffer)
    return [hmac.new(key, view[a:b], hashlib.sha256).digest() for a, b in spans]


def digest_many(items: Sequence[Any]) -> list[bytes]:
    """Vectorized SHA-256 over the canonical serialization of each item."""
    buffer, spans = _pack_items(items)
    view = memoryview(buffer)
    return [hashlib.sha256(view[a:b]).digest() for a, b in spans]


def verify_mac(key: bytes, data: Any, mac: bytes) -> bool:
    """Constant-time verification of an HMAC produced by :func:`compute_mac`."""
    return hmac.compare_digest(compute_mac(key, data), mac)


def session_key(group_secret: bytes, party_a: str, party_b: str) -> bytes:
    """Derive the pairwise session key between two parties.

    The derivation is symmetric (ordering of the parties does not matter),
    mirroring the pairwise keys PBFT establishes between every replica and
    client pair for its authenticators.
    """
    first, second = sorted((party_a, party_b))
    material = canonical_bytes((first, second))
    return hmac.new(group_secret, b"session" + material, hashlib.sha256).digest()
