"""Cryptographic primitives with calibrated CPU cost profiles.

Correctness and performance are deliberately separated:

* the *values* (digests, MACs, authenticators) are computed with real
  SHA-256/HMAC so protocol checks — and Byzantine forgery attempts in the
  tests — behave exactly like the paper's implementation;
* the *cost* of each operation is charged to the simulated CPU through a
  :class:`CryptoProvider`, using per-library profiles calibrated from the
  numbers reported in §6.1 of the paper (OpenSSL vs pure Java vs the SGX
  SDK's TCrypto, the 2.4 µs SGX mode switch, the 0.3 µs JNI crossing).
"""

from repro.crypto.costs import (
    CASH_CERT_NS,
    JAVA,
    JNI_CROSSING_NS,
    OPENSSL,
    SGX_SWITCH_NS,
    TCRYPTO,
    CryptoCostProfile,
)
from repro.crypto.digests import digest, digest_hex
from repro.crypto.mac import compute_mac, verify_mac
from repro.crypto.provider import CryptoProvider
from repro.crypto.authenticators import Authenticator, AuthenticatorFactory

__all__ = [
    "CryptoCostProfile",
    "OPENSSL",
    "JAVA",
    "TCRYPTO",
    "SGX_SWITCH_NS",
    "JNI_CROSSING_NS",
    "CASH_CERT_NS",
    "digest",
    "digest_hex",
    "compute_mac",
    "verify_mac",
    "CryptoProvider",
    "Authenticator",
    "AuthenticatorFactory",
]
