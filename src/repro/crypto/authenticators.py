"""PBFT-style MAC authenticators.

An authenticator is a vector of MACs, one per receiving replica, each
computed with the pairwise session key between the sender and that
receiver.  PBFT certifies every protocol message this way (one hash per
entry on the sender side, one hash per incoming message on each receiver),
which is exactly the ~3+3 hash operations per message the paper counts
when comparing PBFTcop against HybridPBFT.

Authenticators provide authenticity only: a receiver cannot prove to a
third party who created a message, and a faulty sender can make its
authenticator verify at one receiver and fail at another ("faulty
authenticators") — both weaknesses that trusted MACs remove.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.crypto.mac import session_key
from repro.crypto.provider import CryptoProvider


@dataclass(frozen=True)
class Authenticator:
    """A vector of per-receiver MACs keyed by receiver id."""

    sender: str
    macs: dict[str, bytes]

    def wire_size(self) -> int:
        return 32 * len(self.macs)


class AuthenticatorFactory:
    """Creates and verifies authenticators for one party.

    The factory derives pairwise session keys from the (out-of-band
    provisioned) group secret, as PBFT does during key establishment.
    """

    def __init__(self, me: str, group_secret: bytes, provider: CryptoProvider):
        self.me = me
        self._group_secret = group_secret
        self.provider = provider
        self._keys: dict[str, bytes] = {}

    def _key_for(self, peer: str) -> bytes:
        key = self._keys.get(peer)
        if key is None:
            key = session_key(self._group_secret, self.me, peer)
            self._keys[peer] = key
        return key

    def create(self, receivers: list[str], data: Any, size_hint: int | None = None) -> Authenticator:
        """MAC ``data`` once per receiver (cost: one hash per entry)."""
        macs = {
            receiver: self.provider.compute_mac(self._key_for(receiver), data, size_hint=size_hint)
            for receiver in receivers
        }
        return Authenticator(self.me, macs)

    def verify(self, authenticator: Authenticator, data: Any, size_hint: int | None = None) -> bool:
        """Check the entry addressed to this party (cost: one hash)."""
        tag = authenticator.macs.get(self.me)
        if tag is None:
            return False
        return self.provider.verify_mac(
            self._key_for(authenticator.sender), data, tag, size_hint=size_hint
        )


__all__ = ["Authenticator", "AuthenticatorFactory"]
