"""Cost-charging facade over the crypto primitives.

Each protocol stage owns a :class:`CryptoProvider` configured with the
library profile its real-world counterpart would use (pure Java for the
prototype's untrusted code, TCrypto inside enclaves).  Every operation
computes the real value *and* charges its calibrated CPU cost to the
simulator, so benchmark results reflect both the number and the size of
cryptographic operations each protocol performs — the quantity the paper's
§6.2 analysis turns on.
"""

from __future__ import annotations

import hashlib
import hmac as hmac_mod
from typing import Any, Callable, Sequence

from repro.crypto import costs
from repro.crypto import mac as mac_mod
from repro.crypto.digests import canonical_bytes


class CryptoProvider:
    """Computes digests/MACs and charges their CPU cost.

    ``charge`` is typically ``Simulator.charge``; pass ``None`` in unit
    tests to run cost-free.  ``ops`` and ``bytes_processed`` counters
    support assertions on *how much* crypto a protocol performed.
    """

    def __init__(
        self,
        profile: costs.CryptoCostProfile = costs.JAVA,
        charge: Callable[[int], None] | None = None,
    ):
        self.profile = profile
        self._charge = charge
        self.ops = 0
        self.bytes_processed = 0

    def _account(self, size: int) -> None:
        self.ops += 1
        self.bytes_processed += size
        if self._charge is not None:
            self._charge(self.profile.op_ns(size))

    def _account_batch(self, count: int, total: int) -> None:
        self.ops += count
        self.bytes_processed += total
        if self._charge is not None:
            self._charge(self.profile.batch_ns(count, total))

    # ------------------------------------------------------------------
    def digest(self, data: Any, size_hint: int | None = None) -> bytes:
        """SHA-256 digest; cost charged for ``size_hint`` (or serialized) bytes."""
        raw = canonical_bytes(data)
        self._account(size_hint if size_hint is not None else len(raw))
        return hashlib.sha256(raw).digest()

    def compute_mac(self, key: bytes, data: Any, size_hint: int | None = None) -> bytes:
        """HMAC-SHA256; cost charged like :meth:`digest`."""
        raw = canonical_bytes(data)
        self._account(size_hint if size_hint is not None else len(raw))
        return hmac_mod.new(key, raw, hashlib.sha256).digest()

    def verify_mac(self, key: bytes, data: Any, tag: bytes, size_hint: int | None = None) -> bool:
        """Verify an HMAC; verification costs the same as computation."""
        expected = self.compute_mac(key, data, size_hint=size_hint)
        return hmac_mod.compare_digest(expected, tag)

    # ------------------------------------------------------------------
    # Vectorized batch operations (the hot-path amortization knob): one
    # contiguous serialization buffer, memoryview slices per item, one
    # amortized cost charge for the whole pass.
    # ------------------------------------------------------------------
    def compute_mac_batch(
        self, key: bytes, items: Sequence[Any], size_hint_each: int | None = None
    ) -> list[bytes]:
        """HMAC-SHA256 of every item in one vectorized pass."""
        if not items:
            return []
        buffer, spans = mac_mod._pack_items(items)
        total = (
            size_hint_each * len(items) if size_hint_each is not None else len(buffer)
        )
        self._account_batch(len(items), total)
        view = memoryview(buffer)
        return [
            hmac_mod.new(key, view[a:b], hashlib.sha256).digest() for a, b in spans
        ]

    def digest_batch(
        self, items: Sequence[Any], size_hint_each: int | None = None
    ) -> list[bytes]:
        """SHA-256 of every item in one vectorized pass."""
        if not items:
            return []
        buffer, spans = mac_mod._pack_items(items)
        total = (
            size_hint_each * len(items) if size_hint_each is not None else len(buffer)
        )
        self._account_batch(len(items), total)
        view = memoryview(buffer)
        return [hashlib.sha256(view[a:b]).digest() for a, b in spans]


__all__ = ["CryptoProvider"]
