"""Cost-charging facade over the crypto primitives.

Each protocol stage owns a :class:`CryptoProvider` configured with the
library profile its real-world counterpart would use (pure Java for the
prototype's untrusted code, TCrypto inside enclaves).  Every operation
computes the real value *and* charges its calibrated CPU cost to the
simulator, so benchmark results reflect both the number and the size of
cryptographic operations each protocol performs — the quantity the paper's
§6.2 analysis turns on.
"""

from __future__ import annotations

import hashlib
import hmac as hmac_mod
from typing import Any, Callable

from repro.crypto import costs
from repro.crypto.digests import canonical_bytes


class CryptoProvider:
    """Computes digests/MACs and charges their CPU cost.

    ``charge`` is typically ``Simulator.charge``; pass ``None`` in unit
    tests to run cost-free.  ``ops`` and ``bytes_processed`` counters
    support assertions on *how much* crypto a protocol performed.
    """

    def __init__(
        self,
        profile: costs.CryptoCostProfile = costs.JAVA,
        charge: Callable[[int], None] | None = None,
    ):
        self.profile = profile
        self._charge = charge
        self.ops = 0
        self.bytes_processed = 0

    def _account(self, size: int) -> None:
        self.ops += 1
        self.bytes_processed += size
        if self._charge is not None:
            self._charge(self.profile.op_ns(size))

    # ------------------------------------------------------------------
    def digest(self, data: Any, size_hint: int | None = None) -> bytes:
        """SHA-256 digest; cost charged for ``size_hint`` (or serialized) bytes."""
        raw = canonical_bytes(data)
        self._account(size_hint if size_hint is not None else len(raw))
        return hashlib.sha256(raw).digest()

    def compute_mac(self, key: bytes, data: Any, size_hint: int | None = None) -> bytes:
        """HMAC-SHA256; cost charged like :meth:`digest`."""
        raw = canonical_bytes(data)
        self._account(size_hint if size_hint is not None else len(raw))
        return hmac_mod.new(key, raw, hashlib.sha256).digest()

    def verify_mac(self, key: bytes, data: Any, tag: bytes, size_hint: int | None = None) -> bool:
        """Verify an HMAC; verification costs the same as computation."""
        expected = self.compute_mac(key, data, size_hint=size_hint)
        return hmac_mod.compare_digest(expected, tag)


__all__ = ["CryptoProvider"]
