"""Calibrated CPU cost profiles for cryptographic operations.

All constants derive from measurements reported in the paper (§6.1, §6.2):

* A single TrInX instance certifies 240,000 32-byte messages per second
  (≈ 4.17 µs per certificate), composed of the SGX mode switch (2.4 µs),
  the in-enclave SHA-256 HMAC using the SDK's TCrypto library, and counter
  bookkeeping.
* Crossing from Java into native code via JNI costs 0.3 µs.
* In the 32-byte scenario TCrypto is 20 % slower than the pure Java SHA-256
  and 40 % slower than OpenSSL (the SDK lacked AES-NI/SHA acceleration);
  for larger messages TCrypto slightly overtakes Java, which the per-byte
  coefficients below reproduce.
* PBFT authenticator hashes are measured at 1.5–2.6 µs per 32-byte message
  depending on the thread configuration — our full-speed Java profile plus
  the hyper-threading slowdown covers that range.
* The FPGA-based CASH subsystem takes 57 µs per certification and is
  reachable over a single channel only.

Costs are expressed as ``base + per_byte * len(message)`` nanoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

SGX_SWITCH_NS = 2_400  # enter+leave the trusted execution environment
JNI_CROSSING_NS = 300  # Java -> native -> Java round trip
CASH_CERT_NS = 57_000  # FPGA certification latency, single channel
COUNTER_UPDATE_NS = 150  # in-enclave counter bookkeeping per certificate


@dataclass(frozen=True)
class CryptoCostProfile:
    """CPU cost of one hash/MAC operation for a given crypto library."""

    name: str
    base_ns: int
    per_byte_ns: float

    def op_ns(self, size: int) -> int:
        """Cost in nanoseconds of hashing/MACing ``size`` bytes."""
        return self.base_ns + int(self.per_byte_ns * size)


# 32-byte costs: OpenSSL 0.96 us < Java 1.28 us < TCrypto 1.60 us, matching
# the paper's 20 %/40 % slowdowns.  TCrypto's lower per-byte coefficient
# lets it overtake Java for multi-kilobyte messages, as observed in §6.1.
OPENSSL = CryptoCostProfile("openssl", base_ns=896, per_byte_ns=2.0)
JAVA = CryptoCostProfile("java", base_ns=1_184, per_byte_ns=3.0)
TCRYPTO = CryptoCostProfile("tcrypto", base_ns=1_521, per_byte_ns=2.5)

PROFILES = {profile.name: profile for profile in (OPENSSL, JAVA, TCRYPTO)}


def trinx_certification_ns(size: int, via_jni: bool = False) -> int:
    """Cost of one TrInX certificate over a ``size``-byte message.

    Mode switch + in-enclave TCrypto HMAC + counter update (+ JNI when the
    caller lives in the Java world).  For 32-byte messages this evaluates
    to ≈ 4.15 µs, i.e. ≈ 240 k certifications/s on one dedicated thread.
    """
    cost = SGX_SWITCH_NS + TCRYPTO.op_ns(size) + COUNTER_UPDATE_NS
    if via_jni:
        cost += JNI_CROSSING_NS
    return cost
