"""Calibrated CPU cost profiles for cryptographic operations.

All constants derive from measurements reported in the paper (§6.1, §6.2):

* A single TrInX instance certifies 240,000 32-byte messages per second
  (≈ 4.17 µs per certificate), composed of the SGX mode switch (2.4 µs),
  the in-enclave SHA-256 HMAC using the SDK's TCrypto library, and counter
  bookkeeping.
* Crossing from Java into native code via JNI costs 0.3 µs.
* In the 32-byte scenario TCrypto is 20 % slower than the pure Java SHA-256
  and 40 % slower than OpenSSL (the SDK lacked AES-NI/SHA acceleration);
  for larger messages TCrypto slightly overtakes Java, which the per-byte
  coefficients below reproduce.
* PBFT authenticator hashes are measured at 1.5–2.6 µs per 32-byte message
  depending on the thread configuration — our full-speed Java profile plus
  the hyper-threading slowdown covers that range.
* The FPGA-based CASH subsystem takes 57 µs per certification and is
  reachable over a single channel only.

Costs are expressed as ``base + per_byte * len(message)`` nanoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

SGX_SWITCH_NS = 2_400  # enter+leave the trusted execution environment
JNI_CROSSING_NS = 300  # Java -> native -> Java round trip
CASH_CERT_NS = 57_000  # FPGA certification latency, single channel
COUNTER_UPDATE_NS = 150  # in-enclave counter bookkeeping per certificate


# Fraction of the per-op base cost each *additional* item in a vectorized
# batch pays: serializing into one buffer and hashing memoryview slices
# amortizes allocation and dispatch, but every item still runs its own
# HMAC compression rounds.
BATCH_ITEM_FACTOR = 0.35


@dataclass(frozen=True)
class CryptoCostProfile:
    """CPU cost of one hash/MAC operation for a given crypto library."""

    name: str
    base_ns: int
    per_byte_ns: float

    def op_ns(self, size: int) -> int:
        """Cost in nanoseconds of hashing/MACing ``size`` bytes."""
        return self.base_ns + int(self.per_byte_ns * size)

    def batch_ns(self, count: int, total_bytes: int) -> int:
        """Cost of one vectorized pass over ``count`` items.

        The first item pays the full per-op base; each further item pays
        only :data:`BATCH_ITEM_FACTOR` of it (shared buffer, shared
        dispatch), plus the per-byte work which never amortizes.
        """
        if count <= 0:
            return 0
        base = self.base_ns + int(self.base_ns * BATCH_ITEM_FACTOR) * (count - 1)
        return base + int(self.per_byte_ns * total_bytes)


# 32-byte costs: OpenSSL 0.96 us < Java 1.28 us < TCrypto 1.60 us, matching
# the paper's 20 %/40 % slowdowns.  TCrypto's lower per-byte coefficient
# lets it overtake Java for multi-kilobyte messages, as observed in §6.1.
OPENSSL = CryptoCostProfile("openssl", base_ns=896, per_byte_ns=2.0)
JAVA = CryptoCostProfile("java", base_ns=1_184, per_byte_ns=3.0)
TCRYPTO = CryptoCostProfile("tcrypto", base_ns=1_521, per_byte_ns=2.5)

PROFILES = {profile.name: profile for profile in (OPENSSL, JAVA, TCRYPTO)}

# ----------------------------------------------------------------------
# The "real" profile: measured on this host instead of taken from the
# paper.  Live runs compute actual HMAC-SHA256 inline, so their crypto
# cost *is* whatever the host's hashlib delivers; the real profile feeds
# those same timings to the simulator, making sim-vs-live divergence a
# statement about the *model* rather than about crypto constants.
# ----------------------------------------------------------------------
_REAL_PROFILE: CryptoCostProfile | None = None


def measure_real_profile(iterations: int = 3000) -> CryptoCostProfile:
    """Time HMAC-SHA256 on this host and fit ``base + per_byte * size``.

    Two sizes bracket the fit: 32 B (the digest/MAC hot case) and 4 KiB
    (the large-payload case).  Uses only the standard library; the result
    is cached for the process lifetime.
    """
    import hashlib
    import hmac
    import time

    key = b"\x5c" * 32

    def per_op_ns(size: int) -> float:
        data = b"\xa5" * size
        best = float("inf")
        for _ in range(3):  # best-of-3 guards against scheduler noise
            start = time.perf_counter_ns()
            for _ in range(iterations):
                hmac.new(key, data, hashlib.sha256).digest()
            best = min(best, (time.perf_counter_ns() - start) / iterations)
        return best

    small, large = per_op_ns(32), per_op_ns(4096)
    per_byte = max(0.0, (large - small) / (4096 - 32))
    base = max(1, int(small - per_byte * 32))
    return CryptoCostProfile("real", base_ns=base, per_byte_ns=per_byte)


def resolve_profile(name: str) -> CryptoCostProfile:
    """Look up a named profile; ``"real"`` measures the host on first use."""
    global _REAL_PROFILE
    if name == "real":
        if _REAL_PROFILE is None:
            _REAL_PROFILE = measure_real_profile()
        return _REAL_PROFILE
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown crypto profile {name!r}; expected one of "
            f"{sorted(PROFILES) + ['real']}"
        ) from None


def trinx_certification_ns(size: int, via_jni: bool = False) -> int:
    """Cost of one TrInX certificate over a ``size``-byte message.

    Mode switch + in-enclave TCrypto HMAC + counter update (+ JNI when the
    caller lives in the Java world).  For 32-byte messages this evaluates
    to ≈ 4.15 µs, i.e. ≈ 240 k certifications/s on one dedicated thread.
    """
    cost = SGX_SWITCH_NS + TCRYPTO.op_ns(size) + COUNTER_UPDATE_NS
    if via_jni:
        cost += JNI_CROSSING_NS
    return cost
