"""Byzantine replica behaviours for fault-injection experiments.

The hybrid fault model constrains a faulty replica in exactly one way: it
cannot subvert its trusted subsystem.  Everything else — lying, staying
silent, censoring clients, splicing valid certificates onto tampered
messages — is fair game.  The classes here implement those behaviours
*through* the regular replica code (they subclass the real pillar and
handler), so experiments exercise the same code paths correct replicas
run, and the trusted-counter API mechanically limits what the attacker
can produce.

Usage: build a group with :func:`build_group_with_byzantine`, naming one
replica and the behaviour it should exhibit.

These doubles are part of the library (not the test suite) so downstream
users can reproduce the paper's fault scenarios in their own setups.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.handler import ClientHandler
from repro.core.pillar import Pillar
from repro.core.replica import HybsterReplica, MESSAGE_BASE_COST_NS
from repro.messages.client import Request
from repro.messages.ordering import Prepare

BEHAVIOURS = ("correct", "mute", "equivocate", "censor")


class MutePillar(Pillar):
    """Fail-silent from ``mute_after_ns`` on: processes but never sends.

    Distinct from a network partition: the replica keeps *receiving* and
    updating local state, it just stops participating — the classic
    fail-silent Byzantine behaviour the paper's timeouts must catch.
    """

    mute_after_ns = 0

    def send(self, dst, message, size=None):
        if self.now >= self.mute_after_ns and dst[0] != self.endpoint.node:
            return  # swallow all external output
        super().send(dst, message, size)


class EquivocatingPillar(Pillar):
    """Attempts classic equivocation on every proposal.

    For each PREPARE it creates (with its genuine TrInX instance — the
    only certificate it can get), it sends the honest proposal to half
    the peers and a tampered copy, carrying the same certificate, to the
    other half.  Hybster's independent counter certificates make the
    tampered copy verifiably invalid, so the attack degrades into a
    partial omission at worst.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.equivocation_attempts = 0

    def broadcast(self, dsts, message, size=None):
        if not isinstance(message, Prepare) or message.certificate is None or not dsts:
            super().broadcast(dsts, message, size)
            return
        self.equivocation_attempts += 1
        evil_request = Request("attacker:x", self.equivocation_attempts, "injected")
        forged = replace(message, batch=(evil_request,))
        victims = dsts[: len(dsts) // 2 + 1]
        others = dsts[len(victims):]
        for dst in victims:
            self.send(dst, forged, size)
        for dst in others:
            self.send(dst, message, size)


class CensoringHandler(ClientHandler):
    """A leader that silently drops requests from selected clients.

    Censored clients never get their requests proposed; their retries
    eventually reach the followers, whose suspicion timers force a view
    change that replaces the censor (paper §5.2.3, Figure 3 step 3).
    """

    censored_prefixes: tuple[str, ...] = ()

    def _on_request(self, request, groups=None) -> None:
        if any(request.client_id.startswith(prefix) for prefix in self.censored_prefixes):
            return  # drop silently
        super()._on_request(request, groups)


class ByzantineHybsterReplica(HybsterReplica):
    """A replica wired with one of the faulty behaviours above."""

    def __init__(self, *args, behaviour: str = "correct", behaviour_config: dict | None = None, **kwargs):
        if behaviour not in BEHAVIOURS:
            raise ValueError(f"unknown behaviour {behaviour!r}; expected one of {BEHAVIOURS}")
        self._behaviour = behaviour
        self._behaviour_config = behaviour_config or {}
        super().__init__(*args, **kwargs)
        self._apply_behaviour()

    def _apply_behaviour(self) -> None:
        if self._behaviour == "mute":
            mute_after = self._behaviour_config.get("mute_after_ns", 0)
            for pillar in self.pillars:
                pillar.__class__ = MutePillar
                pillar.mute_after_ns = mute_after
        elif self._behaviour == "equivocate":
            for pillar in self.pillars:
                pillar.__class__ = EquivocatingPillar
                pillar.equivocation_attempts = 0
        elif self._behaviour == "censor":
            prefixes = tuple(self._behaviour_config.get("censored_prefixes", ()))
            self.handler.__class__ = CensoringHandler
            self.handler.censored_prefixes = prefixes


def build_group_with_byzantine(
    sim,
    network,
    machines,
    config,
    service_factory,
    byzantine_replica: str,
    behaviour: str,
    behaviour_config: dict | None = None,
    **kwargs,
):
    """Like :func:`repro.core.replica.build_group`, with one faulty member."""
    replicas = []
    for machine, replica_id in zip(machines, config.replica_ids):
        if replica_id == byzantine_replica:
            replica = ByzantineHybsterReplica(
                sim, network, machine, config, replica_id, service_factory(),
                behaviour=behaviour, behaviour_config=behaviour_config,
                message_base_cost_ns=kwargs.get("message_base_cost_ns", MESSAGE_BASE_COST_NS),
            )
        else:
            replica = HybsterReplica(
                sim, network, machine, config, replica_id, service_factory(),
                message_base_cost_ns=kwargs.get("message_base_cost_ns", MESSAGE_BASE_COST_NS),
            )
        replicas.append(replica)
    for replica in replicas:
        replica.wire_peers(replicas)
        replica.start()
    return replicas
