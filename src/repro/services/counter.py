"""A minimal arithmetic service for divergence-sensitive tests.

Because every operation's result depends on the full execution history
(the running value), any ordering disagreement between replicas shows up
as mismatching replies immediately — which is exactly what safety tests
need to observe.
"""

from __future__ import annotations

from typing import Any

from repro.services.base import Service


class CounterService(Service):
    """Operations: ("add", n) -> new value, ("read",) -> value."""

    def __init__(self) -> None:
        self.value = 0
        self.operations_applied = 0

    def execute(self, operation: Any, client_id: str) -> Any:
        self.operations_applied += 1
        if isinstance(operation, tuple) and operation:
            if operation[0] == "add" and len(operation) == 2:
                self.value += operation[1]
                return self.value
            if operation[0] == "read" and len(operation) == 1:
                return self.value
        return ("error", "unknown operation")

    def snapshot(self) -> Any:
        return (self.value, self.operations_applied)

    def restore(self, snapshot: Any) -> None:
        self.value, self.operations_applied = snapshot

    def snapshot_size(self) -> int:
        return 16

    def state_digestible(self) -> Any:
        return ("counter", self.value, self.operations_applied)
