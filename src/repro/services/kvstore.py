"""A flat key-value store service.

Operations are tuples:

* ``("put", key, value)`` → previous value or None
* ``("get", key)`` → value or None
* ``("delete", key)`` → True if the key existed
* ``("keys",)`` → sorted list of keys

Used by examples and tests where observable state matters more than a
realistic API surface.
"""

from __future__ import annotations

from typing import Any

from repro.services.base import Service

KV_OP_COST_NS = 500  # dictionary operation plus marshalling


class KeyValueStore(Service):
    """Deterministic dictionary with tuple-encoded operations."""

    def __init__(self) -> None:
        self._data: dict[str, Any] = {}

    def execute(self, operation: Any, client_id: str) -> Any:
        if not isinstance(operation, tuple) or not operation:
            return ("error", "malformed operation")
        action = operation[0]
        if action == "put" and len(operation) == 3:
            key, value = operation[1], operation[2]
            previous = self._data.get(key)
            self._data[key] = value
            return previous
        if action == "get" and len(operation) == 2:
            return self._data.get(operation[1])
        if action == "delete" and len(operation) == 2:
            return self._data.pop(operation[1], None) is not None
        if action == "keys" and len(operation) == 1:
            return sorted(self._data)
        return ("error", f"unknown operation {action!r}")

    def execution_cost_ns(self, operation: Any) -> int:
        return KV_OP_COST_NS

    def snapshot(self) -> Any:
        return dict(self._data)

    def restore(self, snapshot: Any) -> None:
        self._data = dict(snapshot)

    def snapshot_size(self) -> int:
        return 32 + sum(len(str(k)) + len(str(v)) + 8 for k, v in self._data.items())

    def state_digestible(self) -> Any:
        return ("kv", tuple(sorted((k, _digestible_value(v)) for k, v in self._data.items())))


def _digestible_value(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_digestible_value(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _digestible_value(v)) for k, v in value.items()))
    return value
