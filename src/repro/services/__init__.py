"""Replicated application services.

A service is the deterministic state machine the replication protocol
keeps consistent.  The protocol interacts with it through the small
interface in :mod:`repro.services.base`; everything else (reply caching,
checkpoint digests) lives in the replication layer.

* :class:`NullService` — returns empty results instantly; the
  microbenchmark workload of §6.2/§6.3.
* :class:`KeyValueStore` — a flat store, useful for examples and tests.
* :class:`CounterService` — a tiny arithmetic machine whose value makes
  divergence between replicas immediately visible in tests.
* :class:`CoordinationService` — the ZooKeeper-inspired hierarchical
  namespace of §6.4 (create/delete/set/get/children, strong consistency,
  no read optimization).
"""

from repro.services.base import Service
from repro.services.null import NullService
from repro.services.kvstore import KeyValueStore
from repro.services.counter import CounterService
from repro.services.coordination import CoordinationService

__all__ = [
    "Service",
    "NullService",
    "KeyValueStore",
    "CounterService",
    "CoordinationService",
]
