"""ZooKeeper-inspired coordination service (paper §6.4).

The service offers a hierarchical namespace of *nodes*; clients create
and destroy nodes and store data in them.  Unlike ZooKeeper, there is no
read optimization: every operation — reads included — goes through the
replication protocol, so the service is strongly consistent.

Operations (tuples):

* ``("create", path, data_size)``     → ("ok", version) | ("error", why)
* ``("delete", path)``                → ("ok",) | ("error", why)
* ``("set", path, data_size)``        → ("ok", version) | ("error", why)
* ``("get", path)``                   → ("ok", data_size, version) | error
* ``("children", path)``              → ("ok", names...) | error
* ``("exists", path)``                → ("ok", True/False)

Node payloads are modelled by their *size* (the benchmarks store 128-byte
blobs); the logical content is irrelevant to the protocol and would only
slow the simulation down.  Versions count modifications, like ZooKeeper's
``version`` stat field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.services.base import Service

CREATE_COST_NS = 900
MODIFY_COST_NS = 700
READ_COST_NS = 500


@dataclass
class _Node:
    data_size: int
    version: int
    children: dict[str, "_Node"]


class CoordinationService(Service):
    """Hierarchical namespace with create/delete/set/get/children/exists."""

    def __init__(self) -> None:
        self._root = _Node(data_size=0, version=0, children={})
        self.operations_applied = 0

    # ------------------------------------------------------------------
    # Path handling
    # ------------------------------------------------------------------
    @staticmethod
    def _split(path: str) -> list[str] | None:
        if not isinstance(path, str) or not path.startswith("/"):
            return None
        if path == "/":
            return []
        parts = path[1:].split("/")
        if any(part == "" for part in parts):
            return None
        return parts

    def _find(self, parts: list[str]) -> _Node | None:
        node = self._root
        for part in parts:
            node = node.children.get(part)
            if node is None:
                return None
        return node

    # ------------------------------------------------------------------
    # Service interface
    # ------------------------------------------------------------------
    def execute(self, operation: Any, client_id: str) -> Any:
        self.operations_applied += 1
        if not isinstance(operation, tuple) or not operation:
            return ("error", "malformed operation")
        action = operation[0]
        if action == "create" and len(operation) == 3:
            return self._create(operation[1], operation[2])
        if action == "delete" and len(operation) == 2:
            return self._delete(operation[1])
        if action == "set" and len(operation) == 3:
            return self._set(operation[1], operation[2])
        if action == "get" and len(operation) == 2:
            return self._get(operation[1])
        if action == "children" and len(operation) == 2:
            return self._children(operation[1])
        if action == "exists" and len(operation) == 2:
            parts = self._split(operation[1])
            if parts is None:
                return ("error", "invalid path")
            return ("ok", self._find(parts) is not None)
        return ("error", f"unknown operation {action!r}")

    def reply_payload_size(self, operation: Any, result: Any) -> int:
        # reads return the stored node data; everything else returns an ack
        if (
            isinstance(operation, tuple)
            and operation
            and operation[0] == "get"
            and isinstance(result, tuple)
            and result
            and result[0] == "ok"
        ):
            return int(result[1])
        return 0

    def execution_cost_ns(self, operation: Any) -> int:
        if not isinstance(operation, tuple) or not operation:
            return READ_COST_NS
        if operation[0] == "create":
            return CREATE_COST_NS
        if operation[0] in ("delete", "set"):
            return MODIFY_COST_NS
        return READ_COST_NS

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def _create(self, path: str, data_size: int) -> Any:
        parts = self._split(path)
        if parts is None or not parts:
            return ("error", "invalid path")
        parent = self._find(parts[:-1])
        if parent is None:
            return ("error", "no such parent")
        name = parts[-1]
        if name in parent.children:
            return ("error", "node exists")
        parent.children[name] = _Node(data_size=int(data_size), version=0, children={})
        return ("ok", 0)

    def _delete(self, path: str) -> Any:
        parts = self._split(path)
        if parts is None or not parts:
            return ("error", "invalid path")
        parent = self._find(parts[:-1])
        if parent is None or parts[-1] not in parent.children:
            return ("error", "no such node")
        if parent.children[parts[-1]].children:
            return ("error", "node has children")
        del parent.children[parts[-1]]
        return ("ok",)

    def _set(self, path: str, data_size: int) -> Any:
        parts = self._split(path)
        if parts is None:
            return ("error", "invalid path")
        node = self._find(parts)
        if node is None:
            return ("error", "no such node")
        node.data_size = int(data_size)
        node.version += 1
        return ("ok", node.version)

    def _get(self, path: str) -> Any:
        parts = self._split(path)
        if parts is None:
            return ("error", "invalid path")
        node = self._find(parts)
        if node is None:
            return ("error", "no such node")
        return ("ok", node.data_size, node.version)

    def _children(self, path: str) -> Any:
        parts = self._split(path)
        if parts is None:
            return ("error", "invalid path")
        node = self._find(parts)
        if node is None:
            return ("error", "no such node")
        return ("ok",) + tuple(sorted(node.children))

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> Any:
        return (self._freeze(self._root), self.operations_applied)

    def restore(self, snapshot: Any) -> None:
        frozen, applied = snapshot
        self._root = self._thaw(frozen)
        self.operations_applied = applied

    def snapshot_size(self) -> int:
        return self._size(self._root)

    def state_digestible(self) -> Any:
        return ("coordination", self._freeze(self._root), self.operations_applied)

    @classmethod
    def _freeze(cls, node: _Node) -> Any:
        return (
            node.data_size,
            node.version,
            tuple(sorted((name, cls._freeze(child)) for name, child in node.children.items())),
        )

    @classmethod
    def _thaw(cls, frozen: Any) -> _Node:
        data_size, version, children = frozen
        return _Node(
            data_size=data_size,
            version=version,
            children={name: cls._thaw(child) for name, child in children},
        )

    def _size(self, node: _Node) -> int:
        return 24 + node.data_size + sum(len(n) + self._size(c) for n, c in node.children.items())
