"""The service interface replicated state machines implement."""

from __future__ import annotations

from typing import Any


class Service:
    """A deterministic state machine.

    Determinism contract: given the same sequence of :meth:`execute`
    calls, every instance produces the same results and the same
    :meth:`state_digestible` value.  Randomness, wall-clock time, and
    local I/O are therefore forbidden inside implementations.
    """

    def execute(self, operation: Any, client_id: str) -> Any:
        """Apply one operation and return its result.

        Invalid operations must return an error *value* (deterministic),
        never raise — a raising replica would diverge from the group.
        """
        raise NotImplementedError

    def execution_cost_ns(self, operation: Any) -> int:
        """Simulated CPU cost of executing ``operation`` (0 = negligible)."""
        return 0

    def reply_payload_size(self, operation: Any, result: Any) -> int:
        """Bytes of service data the reply to ``operation`` carries."""
        return 0

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> Any:
        """Return an opaque, immutable copy of the full state."""
        raise NotImplementedError

    def restore(self, snapshot: Any) -> None:
        """Replace the state with a snapshot from :meth:`snapshot`."""
        raise NotImplementedError

    def snapshot_size(self) -> int:
        """Approximate wire size of a snapshot, for the network model."""
        raise NotImplementedError

    def state_digestible(self) -> Any:
        """Canonical representation of the state for checkpoint digests."""
        raise NotImplementedError
