"""The microbenchmark service: no state, empty results, zero cost.

Matches the paper's §6.2/§6.3 workload, where replies carry either no
payload or a fixed-size dummy payload; the payload size travels in the
Request/Reply size model, not in the service.
"""

from __future__ import annotations

from typing import Any

from repro.services.base import Service


class NullService(Service):
    """Returns ``None`` for every operation without touching any state."""

    def execute(self, operation: Any, client_id: str) -> Any:
        return None

    def snapshot(self) -> Any:
        return None

    def restore(self, snapshot: Any) -> None:
        if snapshot is not None:
            raise ValueError("NullService snapshots are always None")

    def snapshot_size(self) -> int:
        return 0

    def state_digestible(self) -> Any:
        return ("null",)
