"""Client-multiplexing gateway tier (the serving front door).

A gateway terminates many *logical* client sessions and funnels their
requests over a small set of shared protocol connections to the replica
group, the way real coordination services sit behind connection-pooling
proxies rather than giving every application thread its own TCP link.
Load is *open-loop*: arrivals come from a :mod:`repro.loadgen` process
and do not wait for previous completions, so overload manifests as
queueing, shedding, and timeouts instead of silently slowing the
offered rate.

Pieces:

* :class:`~repro.gateway.config.GatewayConfig` — sessions, arrival
  process, admission queue, in-flight window, read leases, pooling;
* :class:`~repro.gateway.gateway.GatewayStage` — the stage that runs on
  a gateway node (sim and live share it, like every other stage);
* :mod:`~repro.gateway.runner` — one-call sim/live runs returning a
  :class:`~repro.loadgen.slo.SLOReport`;
* :mod:`~repro.gateway.cli` — the ``repro-gateway`` entry point.
"""

from repro.gateway.config import GatewayConfig
from repro.gateway.gateway import GatewaySession, GatewayStage, GatewayStats

# The runner closes a cycle (it builds deployments, and the deployment
# builder imports this package for GatewayConfig/GatewayStage), so its
# names resolve lazily on first attribute access.
_RUNNER_EXPORTS = (
    "GatewayRunResult",
    "run_gateway_sim",
    "run_gateway_live",
    "run_gateway_live_async",
)


def __getattr__(name: str):
    if name in _RUNNER_EXPORTS:
        from repro.gateway import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "GatewayConfig",
    "GatewaySession",
    "GatewayStage",
    "GatewayStats",
    "GatewayRunResult",
    "run_gateway_sim",
    "run_gateway_live",
    "run_gateway_live_async",
]
