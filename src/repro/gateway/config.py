"""Gateway tier configuration.

A :class:`GatewayConfig` describes the serving front door of one
deployment: how many gateway nodes stand in front of the replica group,
how many logical client sessions each multiplexes, the open-loop arrival
process driving them, and the admission/lease policy.  It rides inside
:class:`~repro.runtime.deployment.DeploymentSpec` so simulated and live
builders (and scenario TOML files) configure the tier identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.loadgen.arrivals import ARRIVAL_KINDS


@dataclass(frozen=True)
class GatewayConfig:
    """Static configuration of the gateway tier."""

    gateways: int = 1
    sessions: int = 100            # logical client sessions per gateway
    arrivals: str = "poisson"      # poisson | bursty | diurnal
    rate_ops: float = 1000.0       # aggregate arrival rate per gateway (ops/s)
    on_ms: float = 50.0            # bursty: burst length
    off_ms: float = 50.0           # bursty: silence length
    period_ms: float = 1000.0      # diurnal: ramp period
    peak_factor: float = 3.0       # diurnal: peak rate / base rate
    queue_capacity: int = 1024     # admission queue bound; overflow is shed
    max_outstanding: int = 64      # in-flight requests toward the group
    request_timeout_ms: float = 400.0
    max_retries: int = 3           # retransmissions before a request is failed
    read_lease_ms: float = 0.0     # 0 disables the read fast path
    sticky_pillars: bool = True    # hash sessions to pillars on the proposer
    connection_pool: int = 1       # live: parallel TCP connections per peer

    def __post_init__(self) -> None:
        if self.gateways < 1:
            raise ConfigurationError("at least one gateway node")
        if self.sessions < 1:
            raise ConfigurationError("at least one session per gateway")
        if self.arrivals not in ARRIVAL_KINDS:
            raise ConfigurationError(
                f"unknown arrival kind {self.arrivals!r}; expected one of {ARRIVAL_KINDS}"
            )
        if self.queue_capacity < 1:
            raise ConfigurationError("admission queue capacity must be positive")
        if self.max_outstanding < 1:
            raise ConfigurationError("max_outstanding must be positive")
        if self.connection_pool < 1:
            raise ConfigurationError("connection pool size must be positive")

    def arrival_params(self) -> dict:
        return {
            "on_ms": self.on_ms,
            "off_ms": self.off_ms,
            "period_ms": self.period_ms,
            "peak_factor": self.peak_factor,
        }
