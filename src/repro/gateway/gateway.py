"""The gateway stage: a client-multiplexing front door.

One :class:`GatewayStage` stands between many *logical client sessions*
and the replica group.  Sessions do not own sockets or stages — the
gateway holds the group-facing connections (one shared transport
identity per gateway node) and speaks the ordinary client protocol on
behalf of every session, so "millions of users" costs the group exactly
one peer, not millions.

Mechanics:

* **Sessions** — each session has its own ``client_id``
  (``<node>:gateway/s<i>``), its own request-id sequence, and its own
  workload stream, so replica-side deduplication, reply caching, and
  proposer affinity all work unchanged.  Replies addressed to the
  session's virtual stage name are routed back to the gateway by the
  endpoint's session-suffix fallback (see ``Endpoint._receive``).
* **Open-loop admission** — an :class:`~repro.loadgen.arrivals.
  ArrivalProcess` fires arrivals on its own schedule.  Each arrival is
  assigned to a session and enters a bounded admission queue; when the
  queue is full the arrival is *shed* (counted, never silently dropped).
  At most ``max_outstanding`` requests are in flight toward the group —
  the gateway's backpressure window — and latency is measured from
  *arrival* to completion, so queueing delay is part of the number.
* **Session affinity** — a session's requests always target the replica
  that proposes for its ``client_id`` (the stable-hash partition of
  :meth:`ReplicaGroupConfig.proposer_replica_for_client`); with
  ``sticky_pillars`` the proposer additionally pins the session to one
  ordering pillar, keeping one session's requests in one COP lane.
* **Read leases** — optionally, coordination-service ``get`` operations
  are served from a gateway-local cache of committed results while a
  lease is fresh (renewed by every replicated completion).  The cache
  only ever holds results the group committed *through this gateway*,
  giving leased reads monotonic read-your-writes consistency for the
  sessions behind it; they are traced under ``gateway-local-read`` so
  the linearizability checker does not mistake them for replicated ops.
* **Timeouts** — an unanswered request is re-multicast to the whole
  group (arming leader suspicion, like a retrying client) up to
  ``max_retries`` times, then counted as failed and dropped so an
  unreachable group cannot pin the window forever.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.clients.stats import LatencyStats
from repro.core.config import ReplicaGroupConfig
from repro.crypto.provider import CryptoProvider
from repro.gateway.config import GatewayConfig
from repro.loadgen.arrivals import ArrivalProcess
from repro.loadgen.slo import SLOReport
from repro.messages.client import Reply, Request, RequestBurst
from repro.sim.process import Address, Endpoint, Stage
from repro.sim.rand import DeterministicRandom, derive_seed
from repro.sim.resources import SimThread

MS = 1_000_000


class GatewaySession:
    """One logical client multiplexed over the gateway's connections."""

    __slots__ = ("index", "client_id", "workload", "next_request_id", "setup_queue", "in_setup", "backlog")

    def __init__(self, index: int, client_id: str, workload):
        self.index = index
        self.client_id = client_id
        self.workload = workload
        self.next_request_id = 0
        self.setup_queue = list(workload.setup_operations())
        self.in_setup = False  # becomes True when the first arrival activates it
        self.backlog: list[tuple[Any, int, int]] = []  # ops parked during setup


class _InFlight:
    __slots__ = ("session", "request", "operation", "arrival_ns", "sent_ns", "votes", "timer", "retries", "setup")

    def __init__(self, session: GatewaySession, request: Request, operation: Any,
                 arrival_ns: int, sent_ns: int, timer, setup: bool):
        self.session = session
        self.request = request
        self.operation = operation
        self.arrival_ns = arrival_ns
        self.sent_ns = sent_ns
        self.votes: dict[str, Any] = {}
        self.timer = timer
        self.retries = 0
        self.setup = setup


class GatewayStats:
    """Counters of one gateway node (see :class:`SLOReport`)."""

    def __init__(self) -> None:
        self.offered = 0
        self.admitted = 0
        self.shed = 0
        self.completed = 0
        self.timeouts = 0
        self.failed = 0
        self.leased_reads = 0
        self.latency = LatencyStats()


class GatewayStage(Stage):
    """Multiplexes ``sessions`` logical clients over one transport identity."""

    def __init__(
        self,
        endpoint: Endpoint,
        thread: SimThread,
        config: ReplicaGroupConfig,
        gateway_config: GatewayConfig,
        arrivals: ArrivalProcess,
        workload_factory,
        *,
        name: str = "gateway",
        seed: int = 0,
        crypto: CryptoProvider | None = None,
    ):
        super().__init__(endpoint, thread, name)
        self.config = config
        self.gw = gateway_config
        self.arrivals = arrivals
        self.crypto = crypto or CryptoProvider()
        self.timeout_ns = int(gateway_config.request_timeout_ms * MS)
        self.lease_ns = int(gateway_config.read_lease_ms * MS)

        self.sessions: list[GatewaySession] = []
        for i in range(gateway_config.sessions):
            client_id = f"{endpoint.node}:{name}/s{i}"
            self.sessions.append(GatewaySession(i, client_id, workload_factory(client_id, i)))
        self._by_client: dict[str, GatewaySession] = {s.client_id: s for s in self.sessions}
        self._pick_rng = DeterministicRandom(derive_seed(seed, "gateway", endpoint.node, "pick"))

        self.current_view = 0
        self.stats = GatewayStats()
        self.queue: deque[tuple[GatewaySession, Any, int, int]] = deque()
        self.outstanding: dict[tuple[str, int], _InFlight] = {}
        # Read-lease state: committed results by path, and lease freshness.
        self._read_cache: dict[str, tuple[int, int]] = {}  # path -> (size, version)
        self._lease_expires_ns = 0
        self._stopped = False
        self._arrival_timer = None

    # ------------------------------------------------------------------
    # Open-loop arrival engine
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._stopped = False
        self._schedule_next_arrival()

    def stop(self) -> None:
        """Stop generating arrivals; outstanding requests still complete."""
        self._stopped = True
        if self._arrival_timer is not None:
            self.cancel_timer(self._arrival_timer)
            self._arrival_timer = None

    @property
    def completed(self) -> int:
        return self.stats.completed

    def _schedule_next_arrival(self) -> None:
        if self._stopped:
            return
        gap = self.arrivals.next_gap_ns(self.now)
        self._arrival_timer = self.set_timer(gap, self._on_arrival)

    def _on_arrival(self) -> None:
        self._arrival_timer = None
        if self._stopped:
            return
        self.stats.offered += 1
        session = self.sessions[self._pick_rng.randint(0, len(self.sessions) - 1)]
        operation, payload = session.workload.next_operation(session.next_request_id)
        now = self.now

        if self._try_leased_read(session, operation, now):
            self.stats.admitted += 1
        elif session.setup_queue or session.in_setup:
            # session still creating its subtree: park the op, run setup
            self.stats.admitted += 1
            session.backlog.append((operation, payload, now))
            self._advance_setup(session)
        elif len(self.queue) >= self.gw.queue_capacity:
            self.stats.shed += 1
            self.trace("gateway-shed", (session.client_id, operation))
        else:
            self.stats.admitted += 1
            self.queue.append((session, operation, payload, now))
            self._pump()
        self._schedule_next_arrival()

    # ------------------------------------------------------------------
    # Admission queue -> in-flight window
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        """Move queued operations into the in-flight window, coalescing
        same-target requests into one burst per pump."""
        bursts: dict[str, list[Request]] = {}
        while self.queue and len(self.outstanding) < self.gw.max_outstanding:
            session, operation, payload, arrival_ns = self.queue.popleft()
            request = self._prepare(session, operation, payload, arrival_ns, setup=False)
            target = self.config.proposer_replica_for_client(session.client_id, self.current_view)
            bursts.setdefault(target, []).append(request)
        for target, requests in bursts.items():
            if len(requests) == 1:
                self.send((target, "handler"), requests[0])
            else:
                self.send((target, "handler"), RequestBurst(tuple(requests)))

    def _prepare(self, session: GatewaySession, operation: Any, payload: int,
                 arrival_ns: int, setup: bool) -> Request:
        request_id = session.next_request_id
        session.next_request_id += 1
        bare = Request(session.client_id, request_id, operation, payload)
        mac = self.crypto.compute_mac(b"client-session", bare.digestible(), size_hint=32)
        request = Request(session.client_id, request_id, operation, payload, mac)
        key = (session.client_id, request_id)
        timer = self.set_timer(self.timeout_ns, self._on_timeout, key)
        self.outstanding[key] = _InFlight(
            session, request, operation, arrival_ns, self.now, timer, setup
        )
        self.trace("client-invoke", (session.client_id, request_id, operation))
        return request

    def _issue_direct(self, session: GatewaySession, operation: Any, payload: int,
                      arrival_ns: int, setup: bool) -> None:
        request = self._prepare(session, operation, payload, arrival_ns, setup)
        target = self.config.proposer_replica_for_client(session.client_id, self.current_view)
        self.send((target, "handler"), request)

    def _advance_setup(self, session: GatewaySession) -> None:
        if session.in_setup or not session.setup_queue:
            return
        session.in_setup = True
        operation, payload = session.setup_queue.pop(0)
        self._issue_direct(session, operation, payload, self.now, setup=True)

    # ------------------------------------------------------------------
    # Replies
    # ------------------------------------------------------------------
    def on_message(self, src: Address, message: Any) -> None:
        if not isinstance(message, Reply):
            return
        key = (message.client_id, message.request_id)
        pending = self.outstanding.get(key)
        if pending is None:
            return
        self.crypto.compute_mac(b"client-session", message.digestible(), size_hint=32)
        if message.view > self.current_view:
            self.current_view = message.view
        pending.votes[message.replica_id] = message.match_key
        matching = sum(1 for vote in pending.votes.values() if vote == message.match_key)
        if matching >= self.config.f + 1:
            self._complete(key, pending, message.result)

    def _complete(self, key: tuple[str, int], pending: _InFlight, result: Any) -> None:
        del self.outstanding[key]
        self.cancel_timer(pending.timer)
        now = self.now
        self._update_read_cache(pending.operation, result, now)
        self.trace("client-complete", (key[0], key[1], pending.operation, result))
        session = pending.session
        if pending.setup:
            # control-plane op: advance the session's setup sequence
            session.in_setup = False
            if session.setup_queue:
                self._advance_setup(session)
            else:
                self._drain_backlog(session)
        else:
            self.stats.completed += 1
            self.stats.latency.record(now - pending.arrival_ns)
        self._pump()

    def _drain_backlog(self, session: GatewaySession) -> None:
        backlog, session.backlog = session.backlog, []
        for operation, payload, arrival_ns in backlog:
            if len(self.queue) >= self.gw.queue_capacity:
                self.stats.admitted -= 1
                self.stats.shed += 1
                continue
            self.queue.append((session, operation, payload, arrival_ns))
        self._pump()

    # ------------------------------------------------------------------
    # Timeouts
    # ------------------------------------------------------------------
    def _on_timeout(self, key: tuple[str, int]) -> None:
        pending = self.outstanding.get(key)
        if pending is None:
            return
        if pending.retries >= self.gw.max_retries and not pending.setup:
            # give up: free the window slot so fresh traffic can flow
            del self.outstanding[key]
            self.stats.failed += 1
            self.trace("gateway-failed", key)
            self._pump()
            return
        pending.retries += 1
        self.stats.timeouts += 1
        for replica_id in self.config.replica_ids:
            self.send((replica_id, "handler"), pending.request)
        pending.timer = self.set_timer(self.timeout_ns, self._on_timeout, key)

    # ------------------------------------------------------------------
    # Read-lease fast path
    # ------------------------------------------------------------------
    def _try_leased_read(self, session: GatewaySession, operation: Any, now: int) -> bool:
        if self.lease_ns <= 0 or not _is_get(operation):
            return False
        if now >= self._lease_expires_ns:
            return False
        cached = self._read_cache.get(operation[1])
        if cached is None:
            return False
        size, version = cached
        self.stats.leased_reads += 1
        self.stats.completed += 1
        self.stats.latency.record(max(1, self.local_send_cost_ns))
        self.trace("gateway-local-read", (session.client_id, operation[1], size, version))
        return True

    def _update_read_cache(self, operation: Any, result: Any, now: int) -> None:
        if self.lease_ns <= 0:
            return
        # every committed completion proves the group is live: renew the lease
        self._lease_expires_ns = now + self.lease_ns
        if not isinstance(operation, tuple) or not operation:
            return
        if not (isinstance(result, tuple) and result and result[0] == "ok"):
            return
        action = operation[0]
        if action == "create" and len(operation) == 3:
            self._read_cache[operation[1]] = (int(operation[2]), 0)
        elif action == "set" and len(operation) == 3:
            self._read_cache[operation[1]] = (int(operation[2]), int(result[1]))
        elif action == "get" and len(operation) == 2 and len(result) >= 3:
            self._read_cache[operation[1]] = (int(result[1]), int(result[2]))
        elif action == "delete" and len(operation) == 2:
            self._read_cache.pop(operation[1], None)

    # ------------------------------------------------------------------
    def slo_report(self, elapsed_s: float) -> SLOReport:
        report = SLOReport(elapsed_s=elapsed_s, sessions=len(self.sessions))
        stats = self.stats
        report.offered = stats.offered
        report.admitted = stats.admitted
        report.shed = stats.shed
        report.completed = stats.completed
        report.timeouts = stats.timeouts
        report.failed = stats.failed
        report.leased_reads = stats.leased_reads
        report.latency.merge(stats.latency)
        return report


def _is_get(operation: Any) -> bool:
    return (
        isinstance(operation, tuple)
        and len(operation) == 2
        and operation[0] == "get"
        and isinstance(operation[1], str)
    )
