"""``repro-gateway``: drive a gateway-fronted group with open-loop load.

Examples::

    # simulated: 1000 sessions, Poisson 5k ops/s, deterministic under --seed
    repro-gateway --mode sim --sessions 1000 --rate 5000 --duration-ms 500

    # live localhost TCP: coordination service, 90% reads, read leases on
    repro-gateway --mode live --service coordination --workload coordination \\
        --read-fraction 0.9 --read-lease-ms 50 --duration 5

    # bursty overload against a small admission queue (expect shedding)
    repro-gateway --mode sim --arrivals bursty --rate 20000 --queue 64

Prints the SLO report (goodput, p50/p99/p999 latency, shed/timeout
counts); ``--json`` additionally writes it to a file.  Exit status is 0
when the run completed work and met the optional ``--max-p99-ms`` bound.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.clients.workload import CoordinationWorkload, KeyValueWorkload
from repro.gateway.config import GatewayConfig
from repro.gateway.runner import run_gateway_live, run_gateway_sim
from repro.loadgen.arrivals import ARRIVAL_KINDS
from repro.runtime.deployment import SERVICES, DeploymentSpec
from repro.runtime.live import LIVE_PROTOCOLS
from repro.sim.rand import derive_seed

WORKLOADS = ("null", "kv", "coordination")


def _workload_factory(args: argparse.Namespace):
    if args.workload == "null":
        return None  # DeploymentSpec defaults to NullWorkload(payload_size)
    if args.workload == "kv":
        return lambda client_id, index: KeyValueWorkload(
            client_id,
            keys=args.keys,
            payload_size=args.payload_size,
            seed=derive_seed(args.seed, "workload", client_id),
        )
    return lambda client_id, index: CoordinationWorkload(
        client_id,
        args.read_fraction,
        node_size=args.node_size,
        nodes=args.nodes,
        seed=derive_seed(args.seed, "workload", client_id),
    )


def _spec_from_args(args: argparse.Namespace) -> DeploymentSpec:
    gateway = GatewayConfig(
        gateways=args.gateways,
        sessions=args.sessions,
        arrivals=args.arrivals,
        rate_ops=args.rate,
        on_ms=args.on_ms,
        off_ms=args.off_ms,
        period_ms=args.period_ms,
        peak_factor=args.peak_factor,
        queue_capacity=args.queue,
        max_outstanding=args.outstanding,
        request_timeout_ms=args.timeout_ms,
        max_retries=args.max_retries,
        read_lease_ms=args.read_lease_ms,
        sticky_pillars=not args.no_sticky_pillars,
        connection_pool=args.pool,
    )
    spec = DeploymentSpec(
        protocol=args.protocol,
        cores=args.cores,
        service=args.service,
        batch_size=args.batch_size,
        batch_linger_ns=args.batch_linger_us * 1_000,
        rotation=args.rotation,
        crypto_profile=args.crypto,
        num_clients=0,
        client_machines=1,
        payload_size=args.payload_size,
        checkpoint_interval=args.checkpoint_interval,
        window_size=args.window_size,
        seed=args.seed,
        gateway=gateway,
    )
    spec.workload_factory = _workload_factory(args)
    return spec


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-gateway",
        description="Open-loop load through a client-multiplexing gateway tier",
    )
    parser.add_argument("--mode", choices=("sim", "live"), default="sim")
    parser.add_argument("--protocol", choices=LIVE_PROTOCOLS, default="hybster-x")
    parser.add_argument("--service", choices=sorted(SERVICES), default="counter")
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument("--batch-size", type=int, default=1)
    parser.add_argument("--batch-linger-us", type=int, default=0,
                        help="hold a partial batch this long under light load")
    parser.add_argument("--crypto", choices=("openssl", "java", "tcrypto", "real"),
                        default="java",
                        help="crypto cost profile; 'real' times HMAC-SHA256 on this host")
    parser.add_argument("--rotation", action="store_true")
    parser.add_argument("--checkpoint-interval", type=int, default=128)
    parser.add_argument("--window-size", type=int, default=1024)
    # gateway tier
    parser.add_argument("--gateways", type=int, default=1)
    parser.add_argument("--sessions", type=int, default=200,
                        help="logical client sessions per gateway")
    parser.add_argument("--arrivals", choices=ARRIVAL_KINDS, default="poisson")
    parser.add_argument("--rate", type=float, default=2000.0,
                        help="aggregate arrival rate per gateway (ops/s)")
    parser.add_argument("--on-ms", type=float, default=50.0)
    parser.add_argument("--off-ms", type=float, default=50.0)
    parser.add_argument("--period-ms", type=float, default=1000.0)
    parser.add_argument("--peak-factor", type=float, default=3.0)
    parser.add_argument("--queue", type=int, default=1024,
                        help="admission queue capacity (overflow is shed)")
    parser.add_argument("--outstanding", type=int, default=64,
                        help="max in-flight requests toward the group")
    parser.add_argument("--timeout-ms", type=float, default=400.0)
    parser.add_argument("--max-retries", type=int, default=3)
    parser.add_argument("--read-lease-ms", type=float, default=0.0,
                        help="serve cached reads locally while the lease is fresh")
    parser.add_argument("--no-sticky-pillars", action="store_true",
                        help="disable per-session pillar affinity on the proposer")
    parser.add_argument("--pool", type=int, default=1,
                        help="live: parallel TCP connections per peer")
    # workload
    parser.add_argument("--workload", choices=WORKLOADS, default="null")
    parser.add_argument("--payload-size", type=int, default=0)
    parser.add_argument("--keys", type=int, default=16)
    parser.add_argument("--read-fraction", type=float, default=0.9)
    parser.add_argument("--node-size", type=int, default=128)
    parser.add_argument("--nodes", type=int, default=8)
    # run control
    parser.add_argument("--duration-ms", type=int, default=500,
                        help="sim: virtual-time run length")
    parser.add_argument("--duration", type=float, default=5.0,
                        help="live: wall-clock run length in seconds")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--base-port", type=int, default=0)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--json", default="", help="write the SLO report here")
    parser.add_argument("--min-completed", type=int, default=1)
    parser.add_argument("--max-p99-ms", type=float, default=None)
    args = parser.parse_args(argv)

    spec = _spec_from_args(args)
    if args.mode == "sim":
        result = run_gateway_sim(spec, duration_ms=args.duration_ms)
    else:
        result = run_gateway_live(
            spec, duration_s=args.duration, host=args.host, base_port=args.base_port
        )

    print(result)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(result.to_json(), fh, indent=2)
            fh.write("\n")

    if result.state_digests and len(set(result.state_digests)) != 1:
        print("ERROR: replica states diverged", file=sys.stderr)
        return 2
    if result.slo.completed < args.min_completed:
        print(
            f"ERROR: only {result.slo.completed}/{args.min_completed} "
            "requests completed",
            file=sys.stderr,
        )
        return 1
    if args.max_p99_ms is not None and result.slo.latency.count:
        p99 = result.slo.latency.percentile_ms(99)
        if p99 > args.max_p99_ms:
            print(f"ERROR: p99 {p99:.3f} ms exceeds {args.max_p99_ms} ms", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
