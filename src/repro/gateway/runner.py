"""Run a gateway-fronted deployment and produce an SLO report.

The two entry points mirror the benchmark/live split used everywhere
else in the repo:

* :func:`run_gateway_sim` — virtual time, deterministic for a given
  ``spec.seed`` (arrivals, session picks, and workload streams all fork
  from it), so recorded SLO numbers reproduce bit-for-bit;
* :func:`run_gateway_live` — the same deployment over real localhost
  sockets, wall-clock timed, with the gateway's connection pool sized
  from :class:`~repro.gateway.config.GatewayConfig`.

Both expect ``spec.gateway`` to be set and normally ``num_clients=0``:
the gateway tier *is* the client side of the run.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.loadgen.slo import SLOReport
from repro.net.peer import PeerConfig
from repro.runtime.deployment import DeploymentSpec, build_deployment
from repro.sim.tracing import NULL_TRACER, Tracer

MS = 1_000_000


@dataclass
class GatewayRunResult:
    """Outcome of one open-loop gateway run."""

    protocol: str
    mode: str
    slo: SLOReport
    transport_sent: int = 0
    state_digests: list[str] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "protocol": self.protocol,
            "mode": self.mode,
            "transport_sent": self.transport_sent,
            **self.slo.to_json(),
        }

    def __str__(self) -> str:
        return f"{self.protocol} ({self.mode}): {self.slo}"


def _check_spec(spec: DeploymentSpec) -> None:
    if spec.gateway is None:
        raise ConfigurationError("gateway runs need spec.gateway (a GatewayConfig)")


def run_gateway_sim(
    spec: DeploymentSpec,
    *,
    duration_ms: int = 500,
    tracer: Tracer = NULL_TRACER,
) -> GatewayRunResult:
    """Simulated open-loop run: deterministic under ``spec.seed``."""
    _check_spec(spec)
    deployment = build_deployment(spec, tracer=tracer)
    deployment.start_clients()
    deployment.sim.run(until=duration_ms * MS)
    deployment.stop_clients()

    slo = SLOReport()
    for gateway in deployment.gateways:
        slo.merge(gateway.slo_report(deployment.sim.now / 1e9))
    return GatewayRunResult(
        protocol=spec.protocol,
        mode="sim",
        slo=slo,
        transport_sent=sum(
            deployment.network.interface(node).bytes_sent for node in spec.gateway_nodes()
        ),
        state_digests=[
            str(replica.service.state_digestible()) for replica in deployment.replicas
        ],
    )


async def run_gateway_live_async(
    spec: DeploymentSpec,
    *,
    duration_s: float = 5.0,
    tracer: Tracer = NULL_TRACER,
    host: str = "127.0.0.1",
    base_port: int = 0,
) -> GatewayRunResult:
    """Live open-loop run: whole group + gateways in this process."""
    # imported here: repro.runtime.live pulls in asyncio transport machinery
    from repro.runtime.live import build_live_deployment

    _check_spec(spec)
    peer_config = PeerConfig(pool_size=spec.gateway.connection_pool)
    deployment = build_live_deployment(
        spec, tracer=tracer, host=host, base_port=base_port, peer_config=peer_config
    )
    started = time.monotonic()
    try:
        await deployment.start()
        deployment.start_clients()
        while time.monotonic() - started < duration_s:
            await asyncio.sleep(0.02)
        deployment.stop_clients()
        await asyncio.sleep(0.05)  # let in-flight replies drain
        elapsed = time.monotonic() - started
    finally:
        await deployment.stop()

    slo = SLOReport()
    for gateway in deployment.gateways:
        slo.merge(gateway.slo_report(elapsed))
    return GatewayRunResult(
        protocol=spec.protocol,
        mode="live",
        slo=slo,
        transport_sent=deployment.transport.messages_sent,
        state_digests=[
            str(replica.service.state_digestible()) for replica in deployment.replicas
        ],
    )


def run_gateway_live(spec: DeploymentSpec, **kwargs) -> GatewayRunResult:
    return asyncio.run(run_gateway_live_async(spec, **kwargs))
