"""The safety checker: replay merged traces, assert the paper's guarantees.

Input is a :class:`~repro.sim.tracing.Tracer` (in-memory from a sim run,
or merged from per-process JSONL exports of a live run) carrying:

* ``execute`` records — ``(view, order, batch_digest, keys)`` emitted by
  every replica's execution stage;
* ``counter-cert`` records — ``(counter_id, new_value)`` emitted by a
  pillar whenever its TrInX instance certifies a message;
* ``client-invoke`` / ``client-complete`` records — the client-observed
  start and end of each request, with operation and result.

Four independent properties are checked:

**Agreement.**  For every order number, all replicas that executed it
must have executed identical batch *content* (same digest).  This is the
property equivocation attacks — a leader proposing different requests to
different followers under the same order — would break.

**No double execution.**  A request (identified by its ``(client,
request id)`` key) must be executed at exactly one order number on any
replica.  This is what a view change must preserve for batches: a batch
that was half-assembled when the leader died may be re-proposed by the
new leader, but its member requests must never land at a second order —
that would apply a client operation twice.

**Certificate monotonicity.**  Within one ``(node, counter)`` stream,
certified counter values must be strictly increasing: TrInX counters
never repeat or go backwards, which is what makes the certificates
equivocation-proof.  A replayed or double-assigned value here means a
forged or reused certificate slipped through.

**Linearizability.**  For the KV service, every completed ``get`` must
return a value consistent with the real-time order of ``put``
operations: the value of some put that could linearize before the get,
not overwritten by a put that certainly linearized in between, and not
the initial value if a put certainly completed first.  The KV workload
writes unique values per key (request indices under per-client keys),
which makes the interval check exact.

Coordination-service reads get the same treatment: ``create``/``set``
are the writes (the written data size sits at ``operation[2]``, exactly
where a put's value lives), a ``get`` returning ``("ok", size,
version)`` must match some such write that could linearize before it,
and an ``("error", ...)`` result plays the initial-value role.  Paths
that are ever deleted are skipped — the workloads never delete, so this
only forgoes coverage on traces produced outside them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.sim.tracing import Tracer

_INFINITY = float("inf")


@dataclass(frozen=True)
class SafetyViolation:
    """One concrete violation, with enough context to debug it."""

    kind: str  # "agreement" | "double-execution" | "counter" | "linearizability"
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.detail}"


@dataclass
class SafetyReport:
    """Outcome of one checker run over a merged trace."""

    violations: list[SafetyViolation] = field(default_factory=list)
    orders_checked: int = 0
    requests_checked: int = 0
    certificates_checked: int = 0
    reads_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        return (
            f"safety {status}: {self.orders_checked} orders, "
            f"{self.requests_checked} executed requests, "
            f"{self.certificates_checked} certificates, "
            f"{self.reads_checked} reads checked"
        )

    def __str__(self) -> str:
        lines = [self.summary()]
        lines.extend(str(v) for v in self.violations)
        return "\n".join(lines)


def check_safety(tracer: Tracer) -> SafetyReport:
    """Run all four property checks over a merged trace."""
    report = SafetyReport()
    _check_agreement(tracer, report)
    _check_no_double_execution(tracer, report)
    _check_counter_monotonicity(tracer, report)
    _check_linearizability(tracer, report)
    return report


# ----------------------------------------------------------------------
# Agreement
# ----------------------------------------------------------------------
def _check_agreement(tracer: Tracer, report: SafetyReport) -> None:
    # order -> {replica: (digest, keys)}
    executions: dict[int, dict[str, tuple[str, Any]]] = {}
    for record in tracer.select(category="execute"):
        detail = _as_tuple(record.detail)
        if detail is None or len(detail) < 3:
            continue
        _view, order, digest = detail[0], int(detail[1]), detail[2]
        keys = detail[3] if len(detail) > 3 else None
        replica = record.node.split("/", 1)[0]
        per_order = executions.setdefault(order, {})
        if replica in per_order and per_order[replica][0] != digest:
            report.violations.append(
                SafetyViolation(
                    "agreement",
                    f"replica {replica} executed order {order} twice with "
                    f"different content ({per_order[replica][0]} vs {digest})",
                )
            )
        per_order[replica] = (digest, keys)

    report.orders_checked = len(executions)
    for order in sorted(executions):
        per_order = executions[order]
        digests = {digest for digest, _keys in per_order.values()}
        if len(digests) > 1:
            detail = ", ".join(
                f"{replica}={digest} {keys}"
                for replica, (digest, keys) in sorted(per_order.items())
            )
            report.violations.append(
                SafetyViolation(
                    "agreement",
                    f"replicas diverge at order {order}: {detail}",
                )
            )


# ----------------------------------------------------------------------
# No double execution
# ----------------------------------------------------------------------
def _check_no_double_execution(tracer: Tracer, report: SafetyReport) -> None:
    # (replica, request key) -> order where that request first executed
    first_order: dict[tuple[str, Any], int] = {}
    for record in tracer.select(category="execute"):
        detail = _as_tuple(record.detail)
        if detail is None or len(detail) < 4:
            continue  # legacy trace without batch keys: nothing to check
        order = int(detail[1])
        keys = _as_tuple(detail[3])
        if not isinstance(keys, tuple):
            continue
        replica = record.node.split("/", 1)[0]
        for key in keys:
            request = _hashable(key)
            previous = first_order.get((replica, request))
            if previous is None:
                first_order[(replica, request)] = order
                report.requests_checked += 1
            elif previous != order:
                report.violations.append(
                    SafetyViolation(
                        "double-execution",
                        f"replica {replica} executed request {request} at "
                        f"order {previous} and again at order {order}",
                    )
                )


# ----------------------------------------------------------------------
# Certificate monotonicity
# ----------------------------------------------------------------------
def _check_counter_monotonicity(tracer: Tracer, report: SafetyReport) -> None:
    # (node, counter_id) -> last certified value
    last_value: dict[tuple[str, Any], int] = {}
    for record in tracer.select(category="counter-cert"):
        detail = _as_tuple(record.detail)
        if detail is None or len(detail) < 2:
            continue
        counter_id, value = _hashable(detail[0]), int(detail[1])
        report.certificates_checked += 1
        key = (record.node, counter_id)
        previous = last_value.get(key)
        if previous is not None and value <= previous:
            report.violations.append(
                SafetyViolation(
                    "counter",
                    f"{record.node} certified counter {counter_id} value {value} "
                    f"after {previous} (reuse or decrease)",
                )
            )
        if previous is None or value > previous:
            last_value[key] = value


# ----------------------------------------------------------------------
# Linearizability (KV gets against put intervals)
# ----------------------------------------------------------------------
@dataclass
class _Op:
    client: str
    request_id: int
    operation: tuple
    invoke_ns: int
    complete_ns: float  # _INFINITY while pending
    result: Any = None


def _check_linearizability(tracer: Tracer, report: SafetyReport) -> None:
    invokes: dict[tuple[str, int], _Op] = {}
    completed: list[_Op] = []
    for record in tracer.records:
        if record.category == "client-invoke":
            detail = _as_tuple(record.detail)
            if detail is None or len(detail) < 3:
                continue
            client, request_id, operation = detail[0], int(detail[1]), _as_tuple(detail[2])
            if not isinstance(operation, tuple):
                continue  # null workload: nothing to check
            invokes[(client, request_id)] = _Op(
                client, request_id, operation, record.time_ns, _INFINITY
            )
        elif record.category == "client-complete":
            detail = _as_tuple(record.detail)
            if detail is None or len(detail) < 4:
                continue
            client, request_id = detail[0], int(detail[1])
            op = invokes.get((client, request_id))
            if op is None:
                operation = _as_tuple(detail[2])
                if not isinstance(operation, tuple):
                    continue
                # live traces may be truncated: synthesize a zero-length invoke
                op = _Op(client, request_id, operation, record.time_ns, _INFINITY)
                invokes[(client, request_id)] = op
            op.complete_ns = record.time_ns
            op.result = detail[3]
            completed.append(op)

    # Partition by key: writes (put, or create/set for the coordination
    # service) and reads (get), pending writes included as writes with an
    # open-ended interval (they may have taken effect).  Both write
    # families carry the written value at operation[2], so one interval
    # check serves both services.
    writes: dict[str, list[_Op]] = {}
    coord_writes: dict[str, list[_Op]] = {}
    deleted_paths: set[str] = set()
    reads: dict[str, list[_Op]] = {}
    for op in invokes.values():
        if not op.operation:
            continue
        verb = op.operation[0]
        if verb == "put" and len(op.operation) >= 3:
            writes.setdefault(str(op.operation[1]), []).append(op)
        elif verb in ("create", "set") and len(op.operation) >= 3:
            coord_writes.setdefault(str(op.operation[1]), []).append(op)
        elif verb == "delete" and len(op.operation) >= 2:
            deleted_paths.add(str(op.operation[1]))
        elif verb == "get" and len(op.operation) >= 2 and op.complete_ns is not _INFINITY:
            reads.setdefault(str(op.operation[1]), []).append(op)

    for key, key_reads in sorted(reads.items()):
        for read in sorted(key_reads, key=lambda op: op.invoke_ns):
            result = read.result
            if isinstance(result, tuple) and result and result[0] in ("ok", "error"):
                # coordination-service read: compare the returned data
                # size against the create/set history of the path
                if key in deleted_paths:
                    continue
                value = result[1] if result[0] == "ok" and len(result) >= 3 else None
                key_writes = coord_writes.get(key, [])
            else:
                value = result
                key_writes = writes.get(key, [])
            report.reads_checked += 1
            violation = _explain_read(key, read, key_writes, value)
            if violation is not None:
                report.violations.append(SafetyViolation("linearizability", violation))


def _explain_read(key: str, read: _Op, writes: list[_Op], value: Any) -> str | None:
    """Return a violation description for ``read``, or None if legal."""
    if value is None:
        # the initial value: illegal once any put certainly completed first
        for write in writes:
            if write.complete_ns < read.invoke_ns:
                return (
                    f"get({key}) by {read.client}#{read.request_id} returned the "
                    f"initial value, but {write.operation[0]}(...{write.operation[2]!r}) "
                    f"by {write.client}#{write.request_id} completed before it started"
                )
        return None

    candidates = [w for w in writes if _values_equal(w.operation[2], value)]
    if not candidates:
        return (
            f"get({key}) by {read.client}#{read.request_id} returned {value!r}, "
            f"which no write ever produced (phantom value)"
        )
    for write in candidates:
        if write.invoke_ns >= read.complete_ns:
            continue  # the write cannot linearize before this read
        overwritten = any(
            other is not write
            and other.invoke_ns > write.complete_ns
            and other.complete_ns < read.invoke_ns
            for other in writes
        )
        if not overwritten:
            return None
    return (
        f"get({key}) by {read.client}#{read.request_id} returned stale value "
        f"{value!r}: every matching put was overwritten before the get began "
        f"(or started after it ended)"
    )


# ----------------------------------------------------------------------
# Normalization: sim traces hold tuples, JSONL round-trips produce lists
# ----------------------------------------------------------------------
def _as_tuple(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return tuple(_as_tuple(item) for item in value)
    return value


def _hashable(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return tuple(_hashable(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    return value


def _values_equal(written: Any, observed: Any) -> bool:
    return _hashable(written) == _hashable(observed)
