"""repro.scenarios: the fault-matrix scenario engine.

A *scenario* is a small declarative TOML file binding together a
deployment (protocol, group size, pillars, service), a workload, a fault
schedule (chaos filters from :mod:`repro.chaos`), and pass criteria.
The engine executes scenarios against the discrete-event simulator or
the live TCP transport — the same protocol code either way — collects
the per-node traces, and hands the merged timeline to the safety
checker, which asserts:

* **agreement** — no two replicas execute different batch content at
  the same order number;
* **certificate monotonicity** — no TrInX counter value is reused or
  decreases within a (node, counter) stream;
* **linearizability** — client-observed KV operations respect
  real-time order.

``repro-scenarios`` (:mod:`repro.scenarios.cli`) runs the scenario
matrix and prints a per-scenario verdict table.
"""

from repro.scenarios.engine import ScenarioResult, run_scenario
from repro.scenarios.safety import SafetyReport, SafetyViolation, check_safety
from repro.scenarios.spec import FaultSpec, PassCriteria, ScenarioSpec, load_scenario, load_scenarios

__all__ = [
    "FaultSpec",
    "PassCriteria",
    "SafetyReport",
    "SafetyViolation",
    "ScenarioResult",
    "ScenarioSpec",
    "check_safety",
    "load_scenario",
    "load_scenarios",
    "run_scenario",
]
