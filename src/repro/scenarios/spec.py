"""Scenario specifications: declarative TOML → :class:`ScenarioSpec`.

A scenario file names one {protocol × fault schedule × workload} cell of
the fault matrix.  The format (all sections except ``name`` optional):

.. code-block:: toml

    name = "sim-hybster-s-loss"
    description = "2% message loss must not affect safety or liveness"
    mode = "sim"                  # "sim" or "live"
    tags = ["smoke", "loss"]

    [deployment]                  # DeploymentSpec fields
    protocol = "hybster-s"
    service = "kv"
    cores = 2
    num_clients = 4
    client_window = 2
    checkpoint_interval = 32

    [workload]
    kind = "kv"                   # null | kv | coordination | gateway
    keys = 8

    # kind = "gateway" replaces the closed-loop clients with an open-loop
    # gateway tier: the section's other keys are GatewayConfig fields
    # (sessions, arrivals, rate_ops, queue_capacity, read_lease_ms, ...)
    # and [workload.inner] names the per-session workload:
    #
    #     [workload]
    #     kind = "gateway"
    #     sessions = 64
    #     arrivals = "bursty"
    #     rate_ops = 2000.0
    #     [workload.inner]
    #     kind = "kv"

    [run]
    duration_ms = 400             # sim: virtual time; live: wall-clock cap
    requests = 200                # live: stop early once this many completed
    seed = 42
    trinx_verification = true     # false: disable certificate checks (!!)
    processes = false             # live: one OS process per node

    [[faults]]
    kind = "loss"                 # loss | partition | delay | reorder
    rate = 0.02                   #   | crash | equivocate
    start_ms = 0
    end_ms = 300

    [pass]
    min_completed = 50
    safety = true                 # the safety checker must pass
    expect_safety_violation = false   # demonstration scenarios flip this
    max_p99_ms = 50.0             # optional latency-SLO bounds
    max_shed_fraction = 0.2       # gateway runs: cap on shed arrivals

Fault times are milliseconds on the run's clock (simulated time in sim
mode, wall-clock since transport start in live mode).  Every random
fault derives its RNG stream from ``run.seed`` via
:func:`repro.sim.rand.derive_seed`, so a scenario replays bit-for-bit
in the simulator given the same seed.
"""

from __future__ import annotations

import os

try:
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - Python < 3.11
    tomllib = None

from dataclasses import dataclass, field
from typing import Any

from repro.chaos import (
    ChaosPlan,
    CrashWindows,
    Equivocate,
    ExtraDelay,
    LossRate,
    Partition,
    Reorder,
)
from repro.errors import ConfigurationError
from repro.gateway.config import GatewayConfig
from repro.runtime.deployment import PROTOCOLS, SERVICES, DeploymentSpec
from repro.sim.rand import derive_seed

MS = 1_000_000  # ns per millisecond

MODES = ("sim", "live")
FAULT_KINDS = ("loss", "partition", "delay", "reorder", "crash", "equivocate")
WORKLOAD_KINDS = ("null", "kv", "coordination", "gateway")

# [workload] keys consumed by GatewayConfig when kind = "gateway"
_GATEWAY_KEYS = (
    "gateways", "sessions", "arrivals", "rate_ops", "on_ms", "off_ms",
    "period_ms", "peak_factor", "queue_capacity", "max_outstanding",
    "request_timeout_ms", "max_retries", "read_lease_ms", "sticky_pillars",
    "connection_pool",
)

_DEPLOYMENT_KEYS = (
    "protocol", "cores", "ht_enabled", "service", "batch_size", "batch_linger_ns",
    "rotation", "crypto_profile",
    "num_clients", "client_window", "client_machines", "payload_size",
    "reply_payload_size", "checkpoint_interval", "window_size", "noop_delay_ns",
)


@dataclass
class FaultSpec:
    """One fault of the schedule: a kind plus its raw TOML parameters."""

    kind: str
    params: dict[str, Any] = field(default_factory=dict)

    def window_ns(self) -> tuple[int, int | None]:
        start = int(self.params.get("start_ms", 0)) * MS
        end_ms = self.params.get("end_ms")
        return start, (int(end_ms) * MS if end_ms is not None else None)


@dataclass
class PassCriteria:
    """What makes the scenario PASS (beyond not crashing)."""

    min_completed: int = 1
    safety: bool = True
    expect_safety_violation: bool = False
    max_mean_latency_ms: float | None = None
    max_p99_ms: float | None = None
    max_shed_fraction: float | None = None


@dataclass
class ScenarioSpec:
    """A fully parsed scenario, ready for the engine."""

    name: str
    description: str = ""
    mode: str = "sim"
    tags: tuple[str, ...] = ()
    deployment: dict[str, Any] = field(default_factory=dict)
    workload: dict[str, Any] = field(default_factory=dict)
    duration_ms: int = 400
    requests: int = 100
    seed: int = 0
    trinx_verification: bool = True
    processes: bool = False
    faults: list[FaultSpec] = field(default_factory=list)
    criteria: PassCriteria = field(default_factory=PassCriteria)
    path: str = ""

    # ------------------------------------------------------------------
    def deployment_spec(self, seed_override: int | None = None) -> DeploymentSpec:
        """Materialize the DeploymentSpec (with workload factory wired).

        A ``kind = "gateway"`` workload section turns the client tier into
        an open-loop gateway tier: its own keys become the
        :class:`GatewayConfig`, its ``[workload.inner]`` table is the
        per-session workload, and direct clients are disabled.
        """
        seed = self.seed if seed_override is None else seed_override
        spec = DeploymentSpec(seed=seed, **self.deployment)
        workload = self.workload
        if workload.get("kind") == "gateway":
            spec.gateway = _gateway_config(workload)
            spec.num_clients = 0
            workload = dict(workload.get("inner", {}))
        spec.workload_factory = _workload_factory(workload, spec, seed)
        return spec

    def build_filters(self, seed_override: int | None = None) -> list[Any]:
        """Instantiate the fault schedule as chaos filters.

        Each random fault forks its own seed stream from the scenario
        seed and its index, so adding a fault never perturbs another.
        """
        seed = self.seed if seed_override is None else seed_override
        filters: list[Any] = []
        for index, fault in enumerate(self.faults):
            filters.append(_build_filter(fault, derive_seed(seed, "fault", index, fault.kind)))
        return filters

    def chaos_plan(self, seed_override: int | None = None) -> ChaosPlan:
        return ChaosPlan(self.build_filters(seed_override))


# ----------------------------------------------------------------------
# Fault construction
# ----------------------------------------------------------------------
def _build_filter(fault: FaultSpec, seed: int) -> Any:
    params = fault.params
    start_ns, end_ns = fault.window_ns()
    pairs = _pairs(params)
    if fault.kind == "loss":
        loss = LossRate(float(params.get("rate", 0.01)), seed=seed, pairs=pairs)
        # wrap the window around the rate filter so loss can be scheduled
        return _Windowed(loss, start_ns, end_ns)
    if fault.kind == "partition":
        nodes = params.get("nodes")
        if not nodes:
            raise ConfigurationError(f"partition fault needs 'nodes': {params}")
        return Partition(nodes, start_ns=start_ns, end_ns=end_ns)
    if fault.kind == "delay":
        delay = ExtraDelay(
            int(params.get("delay_us", 100)) * 1_000,
            jitter_ns=int(params.get("jitter_us", 0)) * 1_000,
            seed=seed,
            pairs=pairs,
        )
        return _Windowed(delay, start_ns, end_ns)
    if fault.kind == "reorder":
        reorder = Reorder(
            float(params.get("fraction", 0.05)),
            int(params.get("delay_us", 200)) * 1_000,
            jitter_ns=int(params.get("jitter_us", 0)) * 1_000,
            seed=seed,
            pairs=pairs,
        )
        return _Windowed(reorder, start_ns, end_ns)
    if fault.kind == "crash":
        node = params.get("node")
        if not node:
            raise ConfigurationError(f"crash fault needs 'node': {params}")
        windows = params.get("windows_ms")
        if windows:
            windows_ns = [
                (int(w[0]) * MS, int(w[1]) * MS if len(w) > 1 and w[1] is not None else None)
                for w in windows
            ]
        else:
            windows_ns = [(start_ns, end_ns)]
        return CrashWindows(node, windows_ns)
    if fault.kind == "equivocate":
        victims = params.get("victims")
        if not victims:
            raise ConfigurationError(f"equivocate fault needs 'victims': {params}")
        forged = params.get("forged_operation", ["add", 666])
        return Equivocate(
            params.get("source", "r0"),
            victims,
            forged_operation=tuple(forged) if isinstance(forged, list) else forged,
            start_ns=start_ns,
            end_ns=end_ns,
            max_attempts=params.get("max_attempts"),
        )
    raise ConfigurationError(f"unknown fault kind {fault.kind!r}; expected one of {FAULT_KINDS}")


class _Windowed:
    """Restrict an inner filter to a [start_ns, end_ns) activity window."""

    def __init__(self, inner: Any, start_ns: int, end_ns: int | None):
        self.inner = inner
        self.start_ns = start_ns
        self.end_ns = end_ns

    def decide(self, src: str, dst: str, message: Any, size: int, now: int):
        if now < self.start_ns or (self.end_ns is not None and now >= self.end_ns):
            from repro.chaos.base import DELIVER

            return DELIVER
        return self.inner.decide(src, dst, message, size, now)


def _pairs(params: dict) -> set[tuple[str, str]] | None:
    raw = params.get("pairs")
    if raw is None:
        return None
    return {(pair[0], pair[1]) for pair in raw}


# ----------------------------------------------------------------------
# Workload construction
# ----------------------------------------------------------------------
def _gateway_config(workload: dict) -> GatewayConfig:
    params = {k: v for k, v in workload.items() if k not in ("kind", "inner")}
    unknown = set(params) - set(_GATEWAY_KEYS)
    if unknown:
        raise ConfigurationError(
            f"unknown gateway workload keys {sorted(unknown)}; expected {_GATEWAY_KEYS}"
        )
    return GatewayConfig(**params)


def _workload_factory(workload: dict, spec: DeploymentSpec, seed: int):
    from repro.clients.workload import (
        CoordinationWorkload,
        KeyValueWorkload,
        NullWorkload,
    )

    kind = workload.get("kind", "null")
    if kind == "null":
        return None  # DeploymentSpec defaults to NullWorkload(payload_size)
    if kind == "kv":
        keys = int(workload.get("keys", 8))
        payload = int(workload.get("payload_size", spec.payload_size))

        def factory(client_id: str, index: int):
            return KeyValueWorkload(
                client_id, keys=keys, payload_size=payload,
                seed=derive_seed(seed, "workload", client_id),
            )

        return factory
    if kind == "coordination":
        read_fraction = float(workload.get("read_fraction", 0.5))
        node_size = int(workload.get("node_size", 128))
        nodes = int(workload.get("nodes", 8))

        def factory(client_id: str, index: int):
            return CoordinationWorkload(
                client_id, read_fraction, node_size=node_size, nodes=nodes,
                seed=derive_seed(seed, "workload", client_id),
            )

        return factory
    raise ConfigurationError(
        f"unknown workload kind {kind!r}; expected one of {WORKLOAD_KINDS}"
    )


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def load_scenario(path: str) -> ScenarioSpec:
    """Parse and validate one scenario TOML file."""
    if tomllib is None:  # pragma: no cover - Python < 3.11
        raise ConfigurationError("scenario files require Python >= 3.11 (tomllib)")
    with open(path, "rb") as fh:
        raw = tomllib.load(fh)
    name = raw.get("name") or os.path.splitext(os.path.basename(path))[0]
    mode = raw.get("mode", "sim")
    if mode not in MODES:
        raise ConfigurationError(f"{path}: mode must be one of {MODES}, got {mode!r}")

    deployment = dict(raw.get("deployment", {}))
    unknown = set(deployment) - set(_DEPLOYMENT_KEYS)
    if unknown:
        raise ConfigurationError(f"{path}: unknown deployment keys {sorted(unknown)}")
    protocol = deployment.get("protocol", "hybster-x")
    if protocol not in PROTOCOLS:
        raise ConfigurationError(f"{path}: unknown protocol {protocol!r}")
    service = deployment.get("service", "null")
    if service not in SERVICES:
        raise ConfigurationError(f"{path}: unknown service {service!r}")

    run = raw.get("run", {})
    faults = []
    for entry in raw.get("faults", []):
        entry = dict(entry)
        kind = entry.pop("kind", None)
        if kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"{path}: fault kind must be one of {FAULT_KINDS}, got {kind!r}"
            )
        faults.append(FaultSpec(kind, entry))

    workload = dict(raw.get("workload", {}))
    workload_kind = workload.get("kind", "null")
    if workload_kind not in WORKLOAD_KINDS:
        raise ConfigurationError(
            f"{path}: workload kind must be one of {WORKLOAD_KINDS}, got {workload_kind!r}"
        )

    pass_section = raw.get("pass", {})
    criteria = PassCriteria(
        min_completed=int(pass_section.get("min_completed", 1)),
        safety=bool(pass_section.get("safety", True)),
        expect_safety_violation=bool(pass_section.get("expect_safety_violation", False)),
        max_mean_latency_ms=pass_section.get("max_mean_latency_ms"),
        max_p99_ms=pass_section.get("max_p99_ms"),
        max_shed_fraction=pass_section.get("max_shed_fraction"),
    )

    return ScenarioSpec(
        name=name,
        description=raw.get("description", ""),
        mode=mode,
        tags=tuple(raw.get("tags", ())),
        deployment=deployment,
        workload=workload,
        duration_ms=int(run.get("duration_ms", 400)),
        requests=int(run.get("requests", 100)),
        seed=int(run.get("seed", 0)),
        trinx_verification=bool(run.get("trinx_verification", True)),
        processes=bool(run.get("processes", False)),
        faults=faults,
        criteria=criteria,
        path=path,
    )


def load_scenarios(directory: str) -> list[ScenarioSpec]:
    """Load every ``*.toml`` under ``directory``, sorted by name."""
    specs = []
    for entry in sorted(os.listdir(directory)):
        if entry.endswith(".toml"):
            specs.append(load_scenario(os.path.join(directory, entry)))
    return sorted(specs, key=lambda s: s.name)
