"""``repro-scenarios``: execute the fault-matrix and print a verdict table.

Examples::

    repro-scenarios --list                      # show the matrix
    repro-scenarios                             # run every scenario
    repro-scenarios --tag smoke                 # the CI smoke subset
    repro-scenarios --only sim-hybster-s-loss   # one scenario
    repro-scenarios --seed 7 --json out.json    # reseed + machine output
    repro-scenarios --trace-dir /tmp/traces     # keep per-scenario JSONL

Exit status is 0 when every selected scenario passes, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.scenarios.engine import ScenarioResult, run_scenario
from repro.scenarios.spec import ScenarioSpec, load_scenarios

DEFAULT_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "..", "scenarios")


def _select(
    specs: list[ScenarioSpec], only: list[str], tags: list[str], modes: list[str]
) -> list[ScenarioSpec]:
    selected = specs
    if only:
        wanted = set(only)
        selected = [s for s in selected if s.name in wanted]
        missing = wanted - {s.name for s in selected}
        if missing:
            raise SystemExit(f"unknown scenario(s): {sorted(missing)}")
    if tags:
        selected = [s for s in selected if set(tags) & set(s.tags)]
    if modes:
        selected = [s for s in selected if s.mode in modes]
    return selected


def _print_table(results: list[ScenarioResult]) -> None:
    header = (
        f"{'scenario':<36} {'mode':<5} {'protocol':<10} {'verdict':<7} "
        f"{'done':>5} {'chaos d/d/i':>12} {'safety':<9}"
    )
    print(header)
    print("-" * len(header))
    for result in results:
        chaos = f"{result.chaos_dropped}/{result.chaos_delayed}/{result.chaos_injected}"
        safety = "ok" if result.safety.ok else f"{len(result.safety.violations)} viol."
        print(
            f"{result.name:<36} {result.mode:<5} {result.protocol:<10} "
            f"{result.verdict:<7} {result.completed:>5} {chaos:>12} {safety:<9}"
        )
        for failure in result.failures:
            print(f"    ! {failure}")
        if result.error:
            print(f"    ! error: {result.error}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-scenarios",
        description="Run the {protocol x fault x workload} scenario matrix "
        "and check safety on the merged traces",
    )
    parser.add_argument("--dir", default=DEFAULT_DIR,
                        help="directory of scenario TOML files")
    parser.add_argument("--only", action="append", default=[],
                        help="run only the named scenario (repeatable)")
    parser.add_argument("--tag", action="append", default=[],
                        help="run only scenarios carrying this tag (repeatable)")
    parser.add_argument("--mode", action="append", default=[], choices=("sim", "live"),
                        help="restrict to sim or live scenarios")
    parser.add_argument("--seed", type=int, default=None,
                        help="override every scenario's seed")
    parser.add_argument("--json", default="",
                        help="also write results as JSON to this path")
    parser.add_argument("--trace-dir", default="",
                        help="write each scenario's merged trace JSONL here")
    parser.add_argument("--list", action="store_true",
                        help="list matching scenarios without running them")
    args = parser.parse_args(argv)

    directory = os.path.abspath(args.dir)
    if not os.path.isdir(directory):
        print(f"scenario directory not found: {directory}", file=sys.stderr)
        return 2
    specs = _select(load_scenarios(directory), args.only, args.tag, args.mode)
    if not specs:
        print("no scenarios selected", file=sys.stderr)
        return 2

    if args.list:
        for spec in specs:
            tags = f" [{', '.join(spec.tags)}]" if spec.tags else ""
            faults = ", ".join(fault.kind for fault in spec.faults) or "none"
            print(f"{spec.name:<36} {spec.mode:<5} faults: {faults}{tags}")
            if spec.description:
                print(f"    {spec.description}")
        return 0

    if args.trace_dir:
        os.makedirs(args.trace_dir, exist_ok=True)

    results: list[ScenarioResult] = []
    for spec in specs:
        trace_out = (
            os.path.join(args.trace_dir, f"{spec.name}.jsonl") if args.trace_dir else None
        )
        print(f"running {spec.name} ({spec.mode}) ...", flush=True)
        results.append(run_scenario(spec, seed_override=args.seed, trace_out=trace_out))

    print()
    _print_table(results)
    failed = [r for r in results if not r.passed]
    print()
    print(f"{len(results) - len(failed)}/{len(results)} scenarios passed")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump([result.to_json() for result in results], fh, indent=2)
            fh.write("\n")

    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
