"""Scenario execution: run one spec against the simulator or live TCP.

Both paths are the same shape — build the deployment with tracing on,
install the scenario's chaos filters on the transport, optionally switch
off TrInX certificate verification (demonstration scenarios only), run
the workload, then hand the trace to the safety checker and evaluate the
pass criteria.  The sim path runs in virtual time and is deterministic
for a given seed; the live path runs real asyncio processes against the
wall clock, with the whole group hosted in-process so one transport
(and hence one filter chain and one tracer) sees all traffic.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any

from repro.chaos import CrashWindows
from repro.clients.stats import LatencyStats
from repro.errors import ConfigurationError
from repro.runtime.deployment import build_deployment
from repro.scenarios.safety import SafetyReport, check_safety
from repro.scenarios.spec import MS, ScenarioSpec
from repro.sim.tracing import Tracer

TRACE_CATEGORIES = {
    "execute",
    "counter-cert",
    "client-invoke",
    "client-complete",
    "view-installed",  # rare; lets scenarios assert a view change really happened
}


@dataclass
class ScenarioResult:
    """Outcome of one scenario execution."""

    name: str
    mode: str
    protocol: str
    completed: int = 0
    elapsed_ms: float = 0.0
    mean_latency_ms: float | None = None
    p50_ms: float | None = None
    p99_ms: float | None = None
    p999_ms: float | None = None
    retries: int = 0
    shed: int = 0
    shed_fraction: float | None = None
    chaos_dropped: int = 0
    chaos_delayed: int = 0
    chaos_injected: int = 0
    safety: SafetyReport = field(default_factory=SafetyReport)
    failures: list[str] = field(default_factory=list)
    error: str | None = None

    def set_latency(self, latency: LatencyStats) -> None:
        if not latency.count:
            return
        self.mean_latency_ms = latency.mean_ms
        self.p50_ms = latency.percentile_ms(50)
        self.p99_ms = latency.percentile_ms(99)
        self.p999_ms = latency.percentile_ms(99.9)

    @property
    def passed(self) -> bool:
        return not self.failures and self.error is None

    @property
    def verdict(self) -> str:
        if self.error is not None:
            return "ERROR"
        return "PASS" if self.passed else "FAIL"

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "mode": self.mode,
            "protocol": self.protocol,
            "verdict": self.verdict,
            "completed": self.completed,
            "elapsed_ms": round(self.elapsed_ms, 1),
            "mean_latency_ms": (
                round(self.mean_latency_ms, 3) if self.mean_latency_ms is not None else None
            ),
            "p50_ms": round(self.p50_ms, 3) if self.p50_ms is not None else None,
            "p99_ms": round(self.p99_ms, 3) if self.p99_ms is not None else None,
            "p999_ms": round(self.p999_ms, 3) if self.p999_ms is not None else None,
            "retries": self.retries,
            "shed": self.shed,
            "shed_fraction": (
                round(self.shed_fraction, 4) if self.shed_fraction is not None else None
            ),
            "chaos": {
                "dropped": self.chaos_dropped,
                "delayed": self.chaos_delayed,
                "injected": self.chaos_injected,
            },
            "safety": {
                "ok": self.safety.ok,
                "orders_checked": self.safety.orders_checked,
                "certificates_checked": self.safety.certificates_checked,
                "reads_checked": self.safety.reads_checked,
                "violations": [str(v) for v in self.safety.violations],
            },
            "failures": self.failures,
            "error": self.error,
        }


def run_scenario(
    spec: ScenarioSpec,
    *,
    seed_override: int | None = None,
    trace_out: str | None = None,
) -> ScenarioResult:
    """Execute one scenario and evaluate its pass criteria."""
    try:
        if spec.mode == "sim":
            result = _run_sim(spec, seed_override, trace_out)
        elif spec.mode == "live" and spec.processes:
            from repro.scenarios.livenode import run_scenario_processes

            result = asyncio.run(run_scenario_processes(spec, seed_override, trace_out))
        elif spec.mode == "live":
            result = asyncio.run(_run_live(spec, seed_override, trace_out))
        else:  # pragma: no cover - load_scenario validates modes
            raise ConfigurationError(f"unknown mode {spec.mode!r}")
    except ConfigurationError as exc:
        result = ScenarioResult(
            name=spec.name,
            mode=spec.mode,
            protocol=spec.deployment.get("protocol", "hybster-x"),
            error=str(exc),
        )
    return result


# ----------------------------------------------------------------------
# Simulator path
# ----------------------------------------------------------------------
def _run_sim(
    spec: ScenarioSpec, seed_override: int | None, trace_out: str | None
) -> ScenarioResult:
    deployment_spec = spec.deployment_spec(seed_override)
    tracer = Tracer(enabled=True, categories=TRACE_CATEGORIES)
    deployment = build_deployment(deployment_spec, tracer=tracer)

    for chaos_filter in spec.build_filters(seed_override):
        deployment.network.add_filter(chaos_filter)
    if not spec.trinx_verification:
        _disable_trinx_verification(deployment.replicas)

    deployment.start_clients()
    deployment.sim.run(until=spec.duration_ms * MS)

    latency = LatencyStats()
    for client in deployment.clients:
        latency.merge(client.stats)
    for gateway in deployment.gateways:
        latency.merge(gateway.stats.latency)

    result = ScenarioResult(
        name=spec.name,
        mode="sim",
        protocol=deployment_spec.protocol,
        completed=deployment.total_completed(),
        elapsed_ms=deployment.sim.now / MS,
        retries=sum(client.retries for client in deployment.clients)
        + sum(gateway.stats.timeouts for gateway in deployment.gateways),
        chaos_dropped=deployment.network.messages_dropped,
        chaos_delayed=deployment.network.messages_delayed,
        chaos_injected=deployment.network.messages_injected,
    )
    result.set_latency(latency)
    _merge_gateway_stats(result, deployment.gateways)
    _finish(result, spec, tracer, trace_out)
    return result


# ----------------------------------------------------------------------
# Live path
# ----------------------------------------------------------------------
async def _run_live(
    spec: ScenarioSpec, seed_override: int | None, trace_out: str | None
) -> ScenarioResult:
    # imported here: repro.runtime.live pulls in asyncio transport machinery
    from repro.runtime.live import build_live_deployment

    deployment_spec = spec.deployment_spec(seed_override)
    tracer = Tracer(enabled=True, categories=TRACE_CATEGORIES)
    deployment = build_live_deployment(deployment_spec, tracer=tracer, base_port=0)

    chaos_filters = spec.build_filters(seed_override)
    for chaos_filter in chaos_filters:
        deployment.transport.add_filter(chaos_filter)
    if not spec.trinx_verification:
        _disable_trinx_verification(deployment.replicas)

    started = time.monotonic()
    try:
        await deployment.start()
        _schedule_connection_kills(deployment, chaos_filters)
        deployment.start_clients()
        deadline = started + spec.duration_ms / 1_000.0
        while (
            deployment.total_completed() < spec.requests
            and time.monotonic() < deadline
        ):
            await asyncio.sleep(0.02)
        deployment.stop_clients()
        await asyncio.sleep(0.05)  # let in-flight replies drain
    finally:
        await deployment.stop()

    latency = LatencyStats()
    for client in deployment.clients:
        latency.merge(client.stats)
    for gateway in deployment.gateways:
        latency.merge(gateway.stats.latency)

    result = ScenarioResult(
        name=spec.name,
        mode="live",
        protocol=deployment_spec.protocol,
        completed=deployment.total_completed(),
        elapsed_ms=(time.monotonic() - started) * 1_000.0,
        retries=sum(client.retries for client in deployment.clients)
        + sum(gateway.stats.timeouts for gateway in deployment.gateways),
        chaos_dropped=deployment.transport.chaos_dropped,
        chaos_delayed=deployment.transport.chaos_delayed,
        chaos_injected=deployment.transport.chaos_injected,
    )
    result.set_latency(latency)
    _merge_gateway_stats(result, deployment.gateways)
    _finish(result, spec, tracer, trace_out)
    return result


def _schedule_connection_kills(deployment, chaos_filters: list[Any]) -> None:
    """Sever a crashing node's TCP connections at each window start.

    The CrashWindows filter already swallows traffic; killing the node's
    live connections on top exercises the transport's reconnect/backoff
    path — recovery then requires sockets to be re-established, exactly
    as after a real process crash.
    """
    for chaos_filter in chaos_filters:
        if not isinstance(chaos_filter, CrashWindows):
            continue
        for start_ns, _end_ns in chaos_filter.windows:
            deployment.kernel.schedule(
                max(0, start_ns - deployment.kernel.now),
                deployment.transport.drop_connections,
                chaos_filter.node,
            )


# ----------------------------------------------------------------------
# Shared epilogue
# ----------------------------------------------------------------------
def _merge_gateway_stats(result: ScenarioResult, gateways) -> None:
    _merge_gateway_counts(
        result,
        offered=sum(gateway.stats.offered for gateway in gateways),
        shed=sum(gateway.stats.shed for gateway in gateways),
        present=bool(gateways),
    )


def _merge_gateway_counts(
    result: ScenarioResult, *, offered: int, shed: int, present: bool
) -> None:
    if not present:
        return
    result.shed = shed
    result.shed_fraction = shed / offered if offered else 0.0


def _disable_trinx_verification(replicas) -> None:
    for replica in replicas:
        for pillar in getattr(replica, "pillars", ()):
            if hasattr(pillar, "verify_trinx"):
                pillar.verify_trinx = False


def _finish(
    result: ScenarioResult, spec: ScenarioSpec, tracer: Tracer, trace_out: str | None
) -> None:
    if trace_out:
        tracer.write_jsonl(trace_out)
    result.safety = check_safety(tracer)
    _evaluate(result, spec)


def _evaluate(result: ScenarioResult, spec: ScenarioSpec) -> None:
    criteria = spec.criteria
    if result.completed < criteria.min_completed:
        result.failures.append(
            f"completed {result.completed} < required {criteria.min_completed}"
        )
    if criteria.expect_safety_violation:
        if result.safety.ok:
            result.failures.append(
                "expected a safety violation, but the checker found none "
                "(the attack should have succeeded in this configuration)"
            )
    elif criteria.safety and not result.safety.ok:
        result.failures.extend(str(v) for v in result.safety.violations)
    if (
        criteria.max_mean_latency_ms is not None
        and result.mean_latency_ms is not None
        and result.mean_latency_ms > criteria.max_mean_latency_ms
    ):
        result.failures.append(
            f"mean latency {result.mean_latency_ms:.3f} ms exceeds "
            f"{criteria.max_mean_latency_ms} ms"
        )
    if (
        criteria.max_p99_ms is not None
        and result.p99_ms is not None
        and result.p99_ms > criteria.max_p99_ms
    ):
        result.failures.append(
            f"p99 latency {result.p99_ms:.3f} ms exceeds {criteria.max_p99_ms} ms"
        )
    if (
        criteria.max_shed_fraction is not None
        and result.shed_fraction is not None
        and result.shed_fraction > criteria.max_shed_fraction
    ):
        result.failures.append(
            f"shed fraction {result.shed_fraction:.4f} exceeds "
            f"{criteria.max_shed_fraction}"
        )
