"""Process-per-node scenario execution (ROADMAP item 3).

The in-process live path hosts the whole group on one event loop, which
keeps things simple but means a Python-level stall in one replica stalls
them all.  This module runs a live scenario with **one OS process per
node**: the parent spawns a child per replica, client machine, and
gateway node, each child builds only its share of the deployment
(``local_nodes=[node]``) from the *same scenario file and seed*, and the
group talks over real localhost TCP.

Chaos still works: every child installs the scenario's full filter chain
on its own transport.  Filters decide on the *send* path and every
message is sent by exactly one process, so the *set* of chaos decisions
partitions cleanly across processes — each filter instance only ever
sees the traffic its process originates.  (Random filters draw from
per-process streams, so a multi-process run is not bit-identical to the
in-process one; the statistical fault load is the same.)

Safety checking is unchanged: each child writes its trace shard, the
parent merges the shards — the checker orders records by content, not
wall clock — and runs the same :func:`~repro.scenarios.safety.
check_safety` over the merged trace.  Latency percentiles survive the
process boundary because children ship their full
:class:`~repro.clients.stats.LatencyStats` (reservoir included) as JSON.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import os
import signal
import socket
import sys
import tempfile
import time
from typing import Any

from repro.clients.stats import LatencyStats
from repro.errors import ConfigurationError
from repro.sim.tracing import NULL_TRACER, Tracer

# Scan for a free, contiguous port block starting here; stride past the
# whole node layout (gateways sit at base + 96 + k) between candidates.
PORT_SCAN_START = 47200
PORT_SCAN_STRIDE = 128
PORT_SCAN_END = 60000


def _node_ports(spec) -> list[int]:
    """Port *offsets* the live directory will use for ``spec``'s nodes."""
    from repro.runtime.deployment import _replica_ids

    offsets = list(range(len(_replica_ids(spec.protocol))))
    offsets += [64 + j for j in range(spec.client_machines)]
    offsets += [96 + k for k in range(len(spec.gateway_nodes()))]
    return offsets


def find_base_port(spec) -> int:
    """First base port whose whole node layout binds cleanly right now."""
    offsets = _node_ports(spec)
    for base in range(PORT_SCAN_START, PORT_SCAN_END, PORT_SCAN_STRIDE):
        if all(_bindable(base + off) for off in offsets):
            return base
    raise ConfigurationError("no free port block found for a process-per-node run")


def _bindable(port: int) -> bool:
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            sock.bind(("127.0.0.1", port))
        except OSError:
            return False
    return True


# ----------------------------------------------------------------------
# Child: run one node of the scenario
# ----------------------------------------------------------------------
async def _child_amain(args: argparse.Namespace) -> int:
    from repro.net.peer import PeerConfig
    from repro.runtime.live import build_live_deployment
    from repro.scenarios.engine import TRACE_CATEGORIES, _disable_trinx_verification, _schedule_connection_kills
    from repro.scenarios.spec import load_scenario

    spec = load_scenario(args.spec)
    seed = args.seed if args.seed is not None else spec.seed
    deployment_spec = spec.deployment_spec(seed)
    tracer = Tracer(enabled=True, categories=TRACE_CATEGORIES) if args.trace_out else NULL_TRACER
    pool = deployment_spec.gateway.connection_pool if deployment_spec.gateway else 1
    deployment = build_live_deployment(
        deployment_spec,
        tracer=tracer,
        host=args.host,
        base_port=args.base_port,
        local_nodes=[args.node],
        peer_config=PeerConfig(pool_size=pool),
    )
    chaos_filters = spec.build_filters(seed)
    for chaos_filter in chaos_filters:
        deployment.transport.add_filter(chaos_filter)
    if not spec.trinx_verification:
        _disable_trinx_verification(deployment.replicas)

    stop_event = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(sig, stop_event.set)

    started = time.monotonic()
    deadline = started + spec.duration_ms / 1_000.0
    try:
        await deployment.start()
        _schedule_connection_kills(deployment, chaos_filters)
        deployment.start_clients()
        workload_node = bool(deployment.clients or deployment.gateways)
        while not stop_event.is_set():
            now = time.monotonic()
            if workload_node and now >= deadline:
                break
            if not workload_node and now >= deadline + 20.0:
                break  # replica safety net if the parent never signals
            if (
                deployment.clients
                and spec.requests
                and deployment.total_completed() >= spec.requests
            ):
                break
            await asyncio.sleep(0.05)
        deployment.stop_clients()
        await asyncio.sleep(0.05)  # let in-flight replies drain
    finally:
        await deployment.stop()

    if args.trace_out:
        tracer.write_jsonl(f"{args.trace_out}.{args.node}.jsonl")
    latency = LatencyStats()
    for client in deployment.clients:
        latency.merge(client.stats)
    for gateway in deployment.gateways:
        latency.merge(gateway.stats.latency)
    print(json.dumps({
        "node": args.node,
        "completed": deployment.total_completed(),
        "retries": sum(client.retries for client in deployment.clients)
        + sum(gateway.stats.timeouts for gateway in deployment.gateways),
        "offered": sum(gateway.stats.offered for gateway in deployment.gateways),
        "shed": sum(gateway.stats.shed for gateway in deployment.gateways),
        "latency_stats": latency.to_json(),
        "chaos_dropped": deployment.transport.chaos_dropped,
        "chaos_delayed": deployment.transport.chaos_delayed,
        "chaos_injected": deployment.transport.chaos_injected,
        "state_digests": [
            str(replica.service.state_digestible()) for replica in deployment.replicas
        ],
    }))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.scenarios.livenode",
        description="Run one node of a live scenario in this OS process",
    )
    parser.add_argument("--spec", required=True, help="scenario TOML file")
    parser.add_argument("--node", required=True)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--base-port", type=int, required=True)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--trace-out", default="")
    args = parser.parse_args(argv)
    return asyncio.run(_child_amain(args))


# ----------------------------------------------------------------------
# Parent: orchestrate the whole group
# ----------------------------------------------------------------------
async def run_scenario_processes(
    spec, seed_override: int | None = None, trace_out: str | None = None
):
    """Run a live scenario with one OS process per node.

    Returns the same :class:`~repro.scenarios.engine.ScenarioResult` as
    the in-process paths, evaluated against the same pass criteria.
    """
    from repro.runtime.deployment import _replica_ids
    from repro.scenarios.engine import ScenarioResult, _evaluate, _merge_gateway_counts
    from repro.scenarios.safety import check_safety

    if not spec.path or not os.path.exists(spec.path):
        raise ConfigurationError(
            "process-per-node scenarios need the scenario file on disk "
            "(spec.path is how child processes rebuild the run)"
        )
    deployment_spec = spec.deployment_spec(seed_override)
    base_port = find_base_port(deployment_spec)
    replica_nodes = list(_replica_ids(deployment_spec.protocol))
    workload_nodes = [
        f"clients{j}"
        for j in range(deployment_spec.client_machines)
        if deployment_spec.num_clients
    ] + list(deployment_spec.gateway_nodes())
    nodes = replica_nodes + workload_nodes

    tmpdir = tempfile.mkdtemp(prefix="repro-scenario-")
    trace_prefix = os.path.join(tmpdir, "trace")
    seed = spec.seed if seed_override is None else seed_override
    children: dict[str, asyncio.subprocess.Process] = {}
    reports: dict[str, dict[str, Any]] = {}
    started = time.monotonic()
    try:
        for node in nodes:
            children[node] = await asyncio.create_subprocess_exec(
                sys.executable, "-m", "repro.scenarios.livenode",
                "--spec", spec.path, "--node", node,
                "--seed", str(seed), "--base-port", str(base_port),
                "--trace-out", trace_prefix,
                stdout=asyncio.subprocess.PIPE,
            )
        # workload children stop themselves at the duration / request
        # target; replicas serve until we signal them below
        for node in workload_nodes:
            raw, _ = await asyncio.wait_for(
                children[node].communicate(),
                timeout=spec.duration_ms / 1_000.0 + 15,
            )
            reports[node] = json.loads(raw.decode() or "{}")
        for node in replica_nodes:
            if children[node].returncode is None:
                children[node].terminate()
        for node in replica_nodes:
            raw, _ = await asyncio.wait_for(children[node].communicate(), timeout=10)
            reports[node] = json.loads(raw.decode() or "{}")
    finally:
        for child in children.values():
            if child.returncode is None:
                child.terminate()
        for child in children.values():
            if child.returncode is None:
                try:
                    await asyncio.wait_for(child.wait(), timeout=5)
                except asyncio.TimeoutError:
                    child.kill()
    elapsed_ms = (time.monotonic() - started) * 1_000.0

    latency = LatencyStats()
    for report in reports.values():
        if report.get("latency_stats"):
            latency.merge(LatencyStats.from_json(report["latency_stats"]))
    result = ScenarioResult(
        name=spec.name,
        mode="live",
        protocol=deployment_spec.protocol,
        completed=sum(r.get("completed", 0) for r in reports.values()),
        elapsed_ms=elapsed_ms,
        retries=sum(r.get("retries", 0) for r in reports.values()),
        chaos_dropped=sum(r.get("chaos_dropped", 0) for r in reports.values()),
        chaos_delayed=sum(r.get("chaos_delayed", 0) for r in reports.values()),
        chaos_injected=sum(r.get("chaos_injected", 0) for r in reports.values()),
    )
    result.set_latency(latency)
    _merge_gateway_counts(
        result,
        offered=sum(r.get("offered", 0) for r in reports.values()),
        shed=sum(r.get("shed", 0) for r in reports.values()),
        present=bool(deployment_spec.gateway),
    )

    shards = []
    for node in nodes:
        shard = f"{trace_prefix}.{node}.jsonl"
        if os.path.exists(shard):
            shards.append(Tracer.load_jsonl(shard))
    merged = Tracer.merge(*shards) if shards else Tracer(enabled=True)
    if trace_out:
        merged.write_jsonl(trace_out)
    result.safety = check_safety(merged)
    digests = {d for r in reports.values() for d in r.get("state_digests", [])}
    if len(digests) > 1:
        result.failures.append(f"replica states diverged: {sorted(digests)}")
    _evaluate(result, spec)
    return result


if __name__ == "__main__":  # pragma: no cover - child-process entry
    sys.exit(main())
