"""Benchmark execution: warm-up, measurement, and result aggregation.

Mirrors the paper's methodology: clients saturate the system, the run
measures average throughput and latency over a fixed interval after a
warm-up, and CPU and network usage are monitored on all machines.  The
paper averages three 120 s runs on real hardware; the simulator is
deterministic, so one (much shorter) simulated interval carries the same
information.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clients.stats import LatencyStats
from repro.runtime.deployment import Deployment

MILLISECOND = 1_000_000


@dataclass
class BenchmarkResult:
    """Aggregated outcome of one measurement interval."""

    protocol: str
    throughput_ops: float
    latency: LatencyStats
    measure_ns: int
    completed: int
    replica_cpu_utilization: float
    client_cpu_utilization: float
    network_bytes: int
    replica_stats: list[dict]

    @property
    def latency_ms(self) -> float:
        return self.latency.mean_ms

    def __str__(self) -> str:
        return (
            f"{self.protocol}: {self.throughput_ops / 1e3:8.1f} kops/s, "
            f"{self.latency_ms:7.3f} ms mean latency, "
            f"CPU {self.replica_cpu_utilization * 100:5.1f} %"
        )


def run_benchmark(
    deployment: Deployment,
    warmup_ns: int = 100 * MILLISECOND,
    measure_ns: int = 200 * MILLISECOND,
) -> BenchmarkResult:
    """Run the deployment and measure throughput/latency after warm-up."""
    sim = deployment.sim
    deployment.start_clients()
    sim.run(until=sim.now + warmup_ns)

    completed_before = deployment.total_completed()
    busy_before = _busy_ns(deployment.replica_machines)
    client_busy_before = _busy_ns(deployment.client_machines)
    bytes_before = _network_bytes(deployment)
    for client in deployment.clients:
        client.stats = LatencyStats()

    start = sim.now
    sim.run(until=start + measure_ns)
    elapsed = sim.now - start

    completed = deployment.total_completed() - completed_before
    throughput = completed / (elapsed / 1e9) if elapsed else 0.0
    latency = LatencyStats()
    for client in deployment.clients:
        latency.merge(client.stats)

    replica_threads = sum(len(m.threads) for m in deployment.replica_machines)
    client_threads = sum(len(m.threads) for m in deployment.client_machines)
    replica_cpu = (
        (_busy_ns(deployment.replica_machines) - busy_before) / (elapsed * replica_threads)
        if replica_threads
        else 0.0
    )
    client_cpu = (
        (_busy_ns(deployment.client_machines) - client_busy_before) / (elapsed * client_threads)
        if client_threads
        else 0.0
    )

    return BenchmarkResult(
        protocol=deployment.spec.protocol,
        throughput_ops=throughput,
        latency=latency,
        measure_ns=elapsed,
        completed=completed,
        replica_cpu_utilization=min(1.0, replica_cpu),
        client_cpu_utilization=min(1.0, client_cpu),
        network_bytes=_network_bytes(deployment) - bytes_before,
        replica_stats=[replica.stats() for replica in deployment.replicas],
    )


def _busy_ns(machines) -> int:
    return sum(thread.busy_ns for machine in machines for thread in machine.threads)


def _network_bytes(deployment: Deployment) -> int:
    return sum(
        deployment.network.interface(machine.name).bytes_sent
        for machine in deployment.replica_machines + deployment.client_machines
    )
