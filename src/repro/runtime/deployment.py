"""Deployment construction: protocols, machines, clients.

``build_deployment`` turns a :class:`DeploymentSpec` into a fully wired
simulated cluster: replica machines running the selected protocol
configuration, client machines running the workload generators, and the
network connecting them.

Protocol names follow the paper's subjects (§6):

* ``hybster-s`` — sequential basic protocol: one pillar, one TrInX
  instance, plus execution and client-handling threads (3 replicas);
* ``hybster-x`` — full Hybster: one pillar + TrInX instance per core
  (3 replicas);
* ``pbft`` — PBFTcop: three-phase PBFT with consensus-oriented
  parallelization and MAC authenticators (4 replicas);
* ``hybrid-pbft`` — PBFTcop certifying with trusted MACs (4 replicas);
* ``minbft`` — sequential MinBFT on USIG (3 replicas; ablations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.baselines.minbft import build_minbft_group
from repro.baselines.pbft import AUTHENTICATORS, TRUSTED_MACS, build_pbft_group
from repro.clients.client import Client
from repro.clients.workload import NullWorkload, Workload
from repro.core.config import ReplicaGroupConfig
from repro.core.replica import build_group
from repro.crypto.costs import resolve_profile
from repro.crypto.provider import CryptoProvider
from repro.errors import ConfigurationError
from repro.gateway.config import GatewayConfig
from repro.gateway.gateway import GatewayStage
from repro.loadgen.arrivals import make_arrivals
from repro.sim.rand import derive_seed
from repro.runtime.calibration import DEFAULT_CALIBRATION, CalibrationProfile
from repro.services.coordination import CoordinationService
from repro.services.counter import CounterService
from repro.services.kvstore import KeyValueStore
from repro.services.null import NullService
from repro.sim.kernel import Simulator
from repro.sim.network import GIGABIT_PER_SECOND, Network
from repro.sim.process import Endpoint
from repro.sim.resources import Machine
from repro.sim.tracing import NULL_TRACER, Tracer

PROTOCOLS = ("hybster-s", "hybster-x", "pbft", "hybrid-pbft", "minbft")

SERVICES: dict[str, Callable] = {
    "null": NullService,
    "counter": CounterService,
    "kv": KeyValueStore,
    "coordination": CoordinationService,
}


@dataclass
class DeploymentSpec:
    """Everything needed to stand up one benchmark configuration."""

    protocol: str = "hybster-x"
    cores: int = 4
    ht_enabled: bool = True
    service: str = "null"
    batch_size: int = 1
    batch_linger_ns: int = 0
    rotation: bool = False
    # Named crypto cost profile ("openssl" | "java" | "tcrypto" | "real");
    # "real" times HMAC-SHA256 on this host so simulated crypto costs match
    # what live mode actually pays.
    crypto_profile: str = "java"
    num_clients: int = 16
    client_window: int = 4
    client_machines: int = 2
    payload_size: int = 0
    reply_payload_size: int = 0
    checkpoint_interval: int = 128
    window_size: int = 1024
    noop_delay_ns: int = 500_000
    # Master seed for every DeterministicRandom consumer of the run
    # (workloads, chaos filters); sub-seeds are derived per consumer with
    # repro.sim.rand.derive_seed so streams stay independent.
    seed: int = 0
    workload_factory: Callable[[str, int], Workload] | None = None
    calibration: CalibrationProfile = field(default_factory=lambda: DEFAULT_CALIBRATION)
    nic_bandwidth: int = 4 * GIGABIT_PER_SECOND
    latency_ns: int = 35_000
    # Optional serving front door: gateway nodes multiplexing open-loop
    # session traffic (see repro.gateway).  Usually paired with
    # ``num_clients=0`` — the gateways *are* the client tier.
    gateway: GatewayConfig | None = None

    def make_workload(self, client_id: str, index: int) -> Workload:
        if self.workload_factory is not None:
            return self.workload_factory(client_id, index)
        return NullWorkload(self.payload_size)

    def gateway_nodes(self) -> tuple[str, ...]:
        if self.gateway is None:
            return ()
        return tuple(f"gw{i}" for i in range(self.gateway.gateways))


@dataclass
class Deployment:
    """A built cluster, ready for `repro.runtime.benchmark.run_benchmark`."""

    spec: DeploymentSpec
    sim: Simulator
    network: Network
    replicas: list
    replica_machines: list[Machine]
    clients: list[Client]
    client_machines: list[Machine]
    gateways: list[GatewayStage] = field(default_factory=list)
    gateway_machines: list[Machine] = field(default_factory=list)

    def start_clients(self) -> None:
        for client in self.clients:
            client.start()
        for gateway in self.gateways:
            gateway.start()

    def stop_clients(self) -> None:
        for client in self.clients:
            client.stop()
        for gateway in self.gateways:
            gateway.stop()

    def total_completed(self) -> int:
        return sum(client.completed for client in self.clients) + sum(
            gateway.completed for gateway in self.gateways
        )


def _replica_ids(protocol: str) -> tuple[str, ...]:
    if protocol in ("pbft", "hybrid-pbft"):
        return ("r0", "r1", "r2", "r3")
    return ("r0", "r1", "r2")


def _num_pillars(protocol: str, cores: int) -> int:
    if protocol in ("hybster-s", "minbft"):
        return 1
    return cores


def build_deployment(spec: DeploymentSpec, tracer: Tracer = NULL_TRACER) -> Deployment:
    """Construct the simulated cluster for ``spec``."""
    if spec.protocol not in PROTOCOLS:
        raise ConfigurationError(f"unknown protocol {spec.protocol!r}; expected one of {PROTOCOLS}")
    if spec.service not in SERVICES:
        raise ConfigurationError(f"unknown service {spec.service!r}; expected one of {sorted(SERVICES)}")

    sim = Simulator()
    network = Network(sim, latency_ns=spec.latency_ns, default_bandwidth=spec.nic_bandwidth)
    cal = spec.calibration
    crypto_profile = resolve_profile(spec.crypto_profile)

    config = ReplicaGroupConfig(
        replica_ids=_replica_ids(spec.protocol),
        num_pillars=_num_pillars(spec.protocol, spec.cores),
        batch_size=spec.batch_size,
        batch_linger_ns=spec.batch_linger_ns,
        rotation=spec.rotation,
        checkpoint_interval=spec.checkpoint_interval,
        window_size=spec.window_size,
        noop_delay_ns=spec.noop_delay_ns,
    )
    machines = [
        Machine(sim, rid, cores=spec.cores, ht_enabled=spec.ht_enabled)
        for rid in config.replica_ids
    ]
    service_factory = SERVICES[spec.service]

    if spec.protocol in ("hybster-s", "hybster-x"):
        replicas = build_group(
            sim, network, machines, config, service_factory,
            reply_payload_size=spec.reply_payload_size, tracer=tracer,
            message_base_cost_ns=cal.message_base_cost_ns,
            crypto_profile=crypto_profile,
        )
        stages = [
            stage for replica in replicas for stage in replica.endpoint.stages.values()
        ]
    elif spec.protocol in ("pbft", "hybrid-pbft"):
        cert_mode = TRUSTED_MACS if spec.protocol == "hybrid-pbft" else AUTHENTICATORS
        replicas = build_pbft_group(
            sim, network, machines, config, service_factory, cert_mode=cert_mode,
            reply_payload_size=spec.reply_payload_size, tracer=tracer,
            message_base_cost_ns=cal.message_base_cost_ns,
        )
        stages = [
            stage for replica in replicas for stage in replica.endpoint.stages.values()
        ]
    else:  # minbft
        replicas = build_minbft_group(
            sim, network, machines, config, service_factory,
            reply_payload_size=spec.reply_payload_size, tracer=tracer,
            message_base_cost_ns=cal.message_base_cost_ns,
        )
        stages = list(replicas)

    for stage in stages:
        stage.send_cost_ns = cal.send_cost_ns
        stage.control_send_cost_ns = cal.control_send_cost_ns
        stage.local_send_cost_ns = cal.local_send_cost_ns

    # ------------------------------------------------------------------
    # Client machines (the paper dedicates two quad-core hosts)
    # ------------------------------------------------------------------
    client_machines = [
        Machine(sim, f"clients{i}", cores=spec.cores, ht_enabled=spec.ht_enabled)
        for i in range(spec.client_machines)
    ]
    endpoints = [Endpoint(sim, network, machine.name, tracer) for machine in client_machines]
    threads = {machine.name: [] for machine in client_machines}
    for machine in client_machines:
        for t in range(machine.hardware_threads):
            threads[machine.name].append(
                machine.allocate_thread(f"cthread{t}", base_cost_ns=cal.client_base_cost_ns)
            )

    clients: list[Client] = []
    for index in range(spec.num_clients):
        machine_index = index % len(client_machines)
        machine = client_machines[machine_index]
        endpoint = endpoints[machine_index]
        pool = threads[machine.name]
        thread = pool[(index // len(client_machines)) % len(pool)]
        name = f"c{index}"
        client_id = f"{machine.name}:{name}"
        client = Client(
            endpoint,
            thread,
            config,
            name,
            spec.make_workload(client_id, index),
            window=spec.client_window,
            crypto=CryptoProvider(crypto_profile, charge=sim.charge),
        )
        client.send_cost_ns = cal.client_send_cost_ns
        client.control_send_cost_ns = cal.client_send_cost_ns
        clients.append(client)

    # ------------------------------------------------------------------
    # Gateway tier (optional): open-loop session multiplexers
    # ------------------------------------------------------------------
    gateways: list[GatewayStage] = []
    gateway_machines: list[Machine] = []
    if spec.gateway is not None:
        if spec.gateway.sticky_pillars:
            for replica in replicas:
                handler = getattr(replica, "handler", None)
                if handler is not None:
                    handler.sticky_client_pillars = True
        for node in spec.gateway_nodes():
            machine = Machine(sim, node, cores=spec.cores, ht_enabled=spec.ht_enabled)
            gateway_machines.append(machine)
            # a gateway fronts a whole client population: give it 4x the
            # per-machine NIC of a single client host
            endpoint = Endpoint(
                sim, network, node, tracer,
                egress_bandwidth=4 * spec.nic_bandwidth,
                ingress_bandwidth=4 * spec.nic_bandwidth,
            )
            arrivals = make_arrivals(
                spec.gateway.arrivals,
                spec.gateway.rate_ops,
                derive_seed(spec.seed, "gateway", node, "arrivals"),
                **spec.gateway.arrival_params(),
            )
            gateway = GatewayStage(
                endpoint,
                machine.allocate_thread("gateway", base_cost_ns=cal.client_base_cost_ns),
                config,
                spec.gateway,
                arrivals,
                spec.make_workload,
                seed=spec.seed,
                crypto=CryptoProvider(crypto_profile, charge=sim.charge),
            )
            gateway.send_cost_ns = cal.client_send_cost_ns
            gateway.control_send_cost_ns = cal.client_send_cost_ns
            gateways.append(gateway)

    return Deployment(
        spec=spec,
        sim=sim,
        network=network,
        replicas=replicas,
        replica_machines=machines,
        clients=clients,
        client_machines=client_machines,
        gateways=gateways,
        gateway_machines=gateway_machines,
    )
