"""Live mode: run Hybster as real asyncio processes over TCP sockets.

The discrete-event simulator executes protocol stages against a virtual
clock; live mode executes the *same stage code* against the wall clock
and real localhost sockets.  Three small adapters make that possible:

* :class:`LiveKernel` — implements the scheduling surface of
  :class:`~repro.sim.kernel.Simulator` (``now``/``schedule``/``cancel``/
  ``charge``) on top of the asyncio event loop.  ``charge`` is a no-op:
  live handlers consume real CPU time instead of accounting for it.
* :class:`LiveThread` / :class:`LiveMachine` — implement the
  ``submit``/``after_busy`` surface of the simulated CPU model; handlers
  run on the event loop, and sends deferred with ``after_busy`` flush
  when the handler returns (same visibility order as the simulator).
* :class:`~repro.net.transport.TcpTransport` — carries stage envelopes
  as codec frames over per-peer TCP connections.

``build_live_deployment`` reuses :class:`~repro.runtime.deployment.
DeploymentSpec` so a benchmark configuration can be replayed live without
translation (simulation-only fields — NIC bandwidth, latency, the
calibration profile — are ignored).  A process can host the whole group
(``local_nodes=None``, the default: in-process tasks over localhost
sockets) or any subset of nodes (process-per-replica mode, used by the
``repro-live --processes`` runner).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import signal
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.clients.client import Client
from repro.clients.stats import LatencyStats
from repro.core.config import ReplicaGroupConfig
from repro.core.replica import HybsterReplica
from repro.crypto.costs import resolve_profile
from repro.crypto.provider import CryptoProvider
from repro.errors import ConfigurationError
from repro.gateway.gateway import GatewayStage
from repro.loadgen.arrivals import make_arrivals
from repro.net.peer import PeerConfig
from repro.net.transport import TcpTransport
from repro.runtime.deployment import SERVICES, DeploymentSpec, _num_pillars, _replica_ids
from repro.sim.process import Endpoint
from repro.sim.rand import derive_seed
from repro.sim.tracing import NULL_TRACER, Tracer

LIVE_PROTOCOLS = ("hybster-s", "hybster-x")
DEFAULT_BASE_PORT = 47000


# ----------------------------------------------------------------------
# Simulator-surface adapters
# ----------------------------------------------------------------------
class LiveTimer:
    """A cancellable scheduled callback (live analogue of sim Event)."""

    __slots__ = ("kernel", "handle", "cancelled", "fired")

    def __init__(self, kernel: "LiveKernel"):
        self.kernel = kernel
        self.handle: asyncio.TimerHandle | None = None
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        if not self.cancelled and not self.fired:
            self.cancelled = True
            if self.handle is not None:
                self.handle.cancel()
            self.kernel._timers.discard(self)


class LiveKernel:
    """The Simulator API surface, backed by the asyncio event loop.

    ``now`` is integer nanoseconds since kernel creation (monotonic), so
    latency statistics and traces use the same unit as the simulator.
    """

    def __init__(self) -> None:
        self._bound_loop: asyncio.AbstractEventLoop | None = None
        self._t0 = time.monotonic()
        self._timers: set[LiveTimer] = set()
        self.events_processed = 0

    @property
    def _loop(self) -> asyncio.AbstractEventLoop:
        # Bound lazily so deployments can be *built* outside a running
        # loop (inspection, partial construction) and *run* inside one.
        if self._bound_loop is None:
            self._bound_loop = asyncio.get_running_loop()
        return self._bound_loop

    @property
    def now(self) -> int:
        return int((time.monotonic() - self._t0) * 1e9)

    # -- scheduling ----------------------------------------------------
    def schedule(self, delay: int, callback: Callable[..., None], *args: Any) -> LiveTimer:
        timer = LiveTimer(self)
        timer.handle = self._loop.call_later(
            max(0, delay) / 1e9, self._fire, timer, callback, args
        )
        self._timers.add(timer)
        return timer

    def schedule_at(self, time_ns: int, callback: Callable[..., None], *args: Any) -> LiveTimer:
        return self.schedule(time_ns - self.now, callback, *args)

    def _fire(self, timer: LiveTimer, callback: Callable[..., None], args: tuple) -> None:
        self._timers.discard(timer)
        if timer.cancelled:
            return
        timer.fired = True
        self.events_processed += 1
        callback(*args)

    def cancel(self, timer: LiveTimer) -> None:
        timer.cancel()

    def cancel_all(self) -> None:
        """Tear down every outstanding timer (clean shutdown)."""
        for timer in list(self._timers):
            timer.cancel()

    # -- cost accounting -----------------------------------------------
    def charge(self, cost_ns: int) -> None:
        """Live handlers burn real CPU; modelled costs are dropped."""


class LiveThread:
    """The SimThread surface: run handlers on the loop, defer sends.

    The simulator's contract that a handler's outgoing messages become
    visible only after the handler finishes is preserved: actions queued
    with :meth:`after_busy` run right after the handler returns.
    """

    def __init__(self, kernel: LiveKernel, name: str):
        self.kernel = kernel
        self.name = name
        self._deferred: list[Callable[[], None]] = []
        self.handlers_run = 0
        self.handler_errors = 0
        self.busy_ns = 0  # stats parity with SimThread; live CPU is real

    def submit(self, handler: Callable[[Any], None], arg: Any = None) -> None:
        self.kernel._loop.call_soon(self._run, handler, arg)

    def after_busy(self, action: Callable[[], None]) -> None:
        self._deferred.append(action)

    def _run(self, handler: Callable[[Any], None], arg: Any) -> None:
        started = time.monotonic()
        self._deferred = []
        try:
            handler(arg)
        except Exception:  # noqa: BLE001 — a stage bug must not kill the node
            self.handler_errors += 1
            import traceback

            traceback.print_exc(file=sys.stderr)
        deferred, self._deferred = self._deferred, []
        for action in deferred:
            action()
        self.handlers_run += 1
        self.busy_ns += int((time.monotonic() - started) * 1e9)


class LiveMachine:
    """The Machine surface: hands out LiveThreads; placement is the OS's job."""

    def __init__(self, kernel: LiveKernel, name: str, hardware_threads: int = 64):
        self.kernel = kernel
        self.name = name
        self.hardware_threads = hardware_threads
        self.threads: list[LiveThread] = []

    def allocate_thread(self, name: str, base_cost_ns: int = 0) -> LiveThread:
        thread = LiveThread(self.kernel, f"{self.name}/{name}")
        self.threads.append(thread)
        return thread


# ----------------------------------------------------------------------
# Deployment construction
# ----------------------------------------------------------------------
def live_directory(
    spec: DeploymentSpec, host: str = "127.0.0.1", base_port: int = 0
) -> dict[str, tuple[str, int]]:
    """Listen addresses for every node of ``spec``'s group.

    With ``base_port=0`` the OS assigns ports at bind time (single-process
    runs); with a fixed base port the layout is deterministic — replica i
    at ``base_port + i``, client machine j at ``base_port + 64 + j``,
    gateway k at ``base_port + 96 + k`` — so separate OS processes derive
    identical directories from the spec.
    """
    directory: dict[str, tuple[str, int]] = {}
    for index, rid in enumerate(_replica_ids(spec.protocol)):
        directory[rid] = (host, base_port + index if base_port else 0)
    for j in range(spec.client_machines):
        directory[f"clients{j}"] = (host, base_port + 64 + j if base_port else 0)
    for k, node in enumerate(spec.gateway_nodes()):
        directory[node] = (host, base_port + 96 + k if base_port else 0)
    return directory


@dataclass
class LiveDeployment:
    """A (possibly partial) live cluster hosted by this process."""

    spec: DeploymentSpec
    kernel: LiveKernel
    transport: TcpTransport
    config: ReplicaGroupConfig
    replicas: list[HybsterReplica]
    clients: list[Client]
    local_nodes: tuple[str, ...]
    tracer: Tracer = NULL_TRACER
    gateways: list[GatewayStage] = field(default_factory=list)

    async def start(self) -> None:
        """Bind listen sockets and arm the replicas' protocol timers."""
        await self.transport.start()
        for replica in self.replicas:
            replica.start()

    def start_clients(self) -> None:
        for client in self.clients:
            client.start()
        for gateway in self.gateways:
            gateway.start()

    def stop_clients(self) -> None:
        for client in self.clients:
            client.stop()
        for gateway in self.gateways:
            gateway.stop()

    async def stop(self) -> None:
        """Cancel every timer and close every socket this process owns."""
        self.kernel.cancel_all()
        await self.transport.stop()

    def total_completed(self) -> int:
        return sum(client.completed for client in self.clients) + sum(
            gateway.completed for gateway in self.gateways
        )


def build_live_deployment(
    spec: DeploymentSpec,
    *,
    tracer: Tracer = NULL_TRACER,
    host: str = "127.0.0.1",
    base_port: int = 0,
    local_nodes: list[str] | None = None,
    peer_config: PeerConfig = PeerConfig(),
) -> LiveDeployment:
    """Construct the live cluster (or this process's share of it).

    ``local_nodes=None`` hosts every replica and client machine in this
    process; otherwise only the named nodes are built — the rest of the
    group is expected to run elsewhere and is reached via the directory.
    """
    if spec.protocol not in LIVE_PROTOCOLS:
        raise ConfigurationError(
            f"live mode supports {LIVE_PROTOCOLS}, not {spec.protocol!r} "
            "(the baseline protocols still run in the simulator)"
        )
    if spec.service not in SERVICES:
        raise ConfigurationError(f"unknown service {spec.service!r}")

    kernel = LiveKernel()
    directory = live_directory(spec, host, base_port)
    # The transport shares the kernel clock so chaos filters (crash
    # windows, delay schedules) see the same timeline as stage timers.
    transport = TcpTransport(directory, peer_config=peer_config, clock=lambda: kernel.now)

    replica_ids = _replica_ids(spec.protocol)
    client_nodes = tuple(f"clients{j}" for j in range(spec.client_machines))
    gateway_nodes = spec.gateway_nodes()
    if local_nodes is None:
        local = tuple(replica_ids) + client_nodes + gateway_nodes
    else:
        unknown = set(local_nodes) - set(directory)
        if unknown:
            raise ConfigurationError(f"nodes {sorted(unknown)} are not part of the group")
        local = tuple(local_nodes)

    crypto_profile = resolve_profile(spec.crypto_profile)
    config = ReplicaGroupConfig(
        replica_ids=replica_ids,
        num_pillars=_num_pillars(spec.protocol, spec.cores),
        batch_size=spec.batch_size,
        batch_linger_ns=spec.batch_linger_ns,
        rotation=spec.rotation,
        checkpoint_interval=spec.checkpoint_interval,
        window_size=spec.window_size,
        noop_delay_ns=spec.noop_delay_ns,
    )
    service_factory = SERVICES[spec.service]

    replicas: list[HybsterReplica] = []
    for rid in replica_ids:
        if rid not in local:
            continue
        machine = LiveMachine(kernel, rid)
        replica = HybsterReplica(
            kernel,  # type: ignore[arg-type] — duck-typed Simulator surface
            transport,
            machine,  # type: ignore[arg-type] — duck-typed Machine surface
            config,
            rid,
            service_factory(),
            reply_payload_size=spec.reply_payload_size,
            tracer=tracer,
            crypto_profile=crypto_profile,
        )
        _wire_peer_addresses(replica, config)
        if spec.gateway is not None and spec.gateway.sticky_pillars:
            replica.handler.sticky_client_pillars = True
        replicas.append(replica)

    clients: list[Client] = []
    for j, node in enumerate(client_nodes):
        if node not in local:
            continue
        machine = LiveMachine(kernel, node)
        endpoint = Endpoint(kernel, transport, node, tracer)  # type: ignore[arg-type]
        for index in range(spec.num_clients):
            if index % spec.client_machines != j:
                continue
            name = f"c{index}"
            client_id = f"{node}:{name}"
            clients.append(
                Client(
                    endpoint,
                    machine.allocate_thread(name),  # type: ignore[arg-type]
                    config,
                    name,
                    spec.make_workload(client_id, index),
                    window=spec.client_window,
                    crypto=CryptoProvider(crypto_profile, charge=kernel.charge),
                )
            )

    gateways: list[GatewayStage] = []
    for node in gateway_nodes:
        if node not in local:
            continue
        machine = LiveMachine(kernel, node)
        endpoint = Endpoint(kernel, transport, node, tracer)  # type: ignore[arg-type]
        arrivals = make_arrivals(
            spec.gateway.arrivals,
            spec.gateway.rate_ops,
            derive_seed(spec.seed, "gateway", node, "arrivals"),
            **spec.gateway.arrival_params(),
        )
        gateways.append(
            GatewayStage(
                endpoint,
                machine.allocate_thread("gateway"),  # type: ignore[arg-type]
                config,
                spec.gateway,
                arrivals,
                spec.make_workload,
                seed=spec.seed,
                crypto=CryptoProvider(crypto_profile, charge=kernel.charge),
            )
        )

    return LiveDeployment(
        spec=spec,
        kernel=kernel,
        transport=transport,
        config=config,
        replicas=replicas,
        clients=clients,
        local_nodes=local,
        tracer=tracer,
        gateways=gateways,
    )


def _wire_peer_addresses(replica: HybsterReplica, config: ReplicaGroupConfig) -> None:
    """Point a replica at its peers by name alone.

    The simulated builder wires peers object-to-object; live replicas may
    live in different OS processes, but peer addresses are fully
    determined by the group configuration (pillar counts are identical
    across the group), so names suffice.
    """
    for peer_id in config.replica_ids:
        if peer_id == replica.replica_id:
            continue
        for index, pillar in enumerate(replica.pillars):
            pillar.peer_addresses[peer_id] = (peer_id, f"pillar{index}")
        replica.coordinator.peer_exec_addresses[peer_id] = (peer_id, "exec")


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------
@dataclass
class LiveRunResult:
    """Outcome of one live run (this process's clients)."""

    protocol: str
    completed: int
    elapsed_s: float
    latency: LatencyStats
    retries: int
    replica_stats: list[dict] = field(default_factory=list)
    transport_sent: int = 0
    transport_dropped: int = 0
    chaos_dropped: int = 0
    chaos_delayed: int = 0
    chaos_injected: int = 0
    state_digests: list[str] = field(default_factory=list)

    @property
    def throughput_ops(self) -> float:
        return self.completed / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def to_json(self) -> dict:
        return {
            "protocol": self.protocol,
            "completed": self.completed,
            "elapsed_s": round(self.elapsed_s, 3),
            "throughput_ops": round(self.throughput_ops, 1),
            "mean_latency_ms": round(self.latency.mean_ms, 3) if self.latency.count else None,
            "latency_ms": self.latency.percentiles_ms() if self.latency.count else None,
            "retries": self.retries,
            "transport_sent": self.transport_sent,
            "transport_dropped": self.transport_dropped,
            "chaos_dropped": self.chaos_dropped,
            "chaos_delayed": self.chaos_delayed,
            "chaos_injected": self.chaos_injected,
            "state_digests": self.state_digests,
        }

    def __str__(self) -> str:
        if self.latency.count:
            p = self.latency.percentiles_ms()
            latency = (
                f"{p['mean']:.3f} ms (p50 {p['p50']:.3f} / p99 {p['p99']:.3f} / "
                f"p999 {p['p999']:.3f})"
            )
        else:
            latency = "n/a"
        chaos = ""
        if self.chaos_dropped or self.chaos_delayed or self.chaos_injected:
            chaos = (
                f", chaos: {self.chaos_dropped} dropped / "
                f"{self.chaos_delayed} delayed / {self.chaos_injected} injected"
            )
        return (
            f"{self.protocol} (live): {self.completed} requests in {self.elapsed_s:.2f} s "
            f"({self.throughput_ops:.0f} ops/s), mean latency {latency}, "
            f"{self.transport_sent} frames sent, {self.transport_dropped} dropped"
            f"{chaos}"
        )


def _collect_result(deployment: LiveDeployment, elapsed_s: float) -> LiveRunResult:
    latency = LatencyStats()
    for client in deployment.clients:
        latency.merge(client.stats)
    for gateway in deployment.gateways:
        latency.merge(gateway.stats.latency)
    return LiveRunResult(
        protocol=deployment.spec.protocol,
        completed=deployment.total_completed(),
        elapsed_s=elapsed_s,
        latency=latency,
        retries=sum(client.retries for client in deployment.clients)
        + sum(gateway.stats.timeouts for gateway in deployment.gateways),
        replica_stats=[replica.stats() for replica in deployment.replicas],
        transport_sent=deployment.transport.messages_sent,
        transport_dropped=deployment.transport.messages_dropped,
        chaos_dropped=deployment.transport.chaos_dropped,
        chaos_delayed=deployment.transport.chaos_delayed,
        chaos_injected=deployment.transport.chaos_injected,
        state_digests=[
            str(replica.service.state_digestible()) for replica in deployment.replicas
        ],
    )


async def run_live(
    spec: DeploymentSpec,
    *,
    target_requests: int = 100,
    max_duration_s: float = 10.0,
    tracer: Tracer = NULL_TRACER,
    host: str = "127.0.0.1",
    base_port: int = 0,
) -> LiveRunResult:
    """Boot the whole group in this process and run until ``target_requests``
    complete (or ``max_duration_s`` elapses).  The canonical quickstart /
    smoke-test entry point."""
    deployment = build_live_deployment(
        spec, tracer=tracer, host=host, base_port=base_port
    )
    started = time.monotonic()
    try:
        await deployment.start()
        deployment.start_clients()
        while (
            deployment.total_completed() < target_requests
            and time.monotonic() - started < max_duration_s
        ):
            await asyncio.sleep(0.02)
        deployment.stop_clients()
        await asyncio.sleep(0.05)  # let in-flight replies drain
        return _collect_result(deployment, time.monotonic() - started)
    finally:
        await deployment.stop()


async def run_live_node(
    spec: DeploymentSpec,
    node: str,
    *,
    target_requests: int = 0,
    max_duration_s: float = 30.0,
    tracer: Tracer = NULL_TRACER,
    host: str = "127.0.0.1",
    base_port: int = DEFAULT_BASE_PORT,
    stop_event: asyncio.Event | None = None,
) -> LiveRunResult:
    """Run a single node of the group in this OS process.

    Replica nodes serve until ``stop_event`` fires (the parent's SIGTERM)
    or ``max_duration_s`` expires; client nodes additionally stop as soon
    as their share of ``target_requests`` completed.
    """
    deployment = build_live_deployment(
        spec, tracer=tracer, host=host, base_port=base_port, local_nodes=[node]
    )
    started = time.monotonic()
    try:
        await deployment.start()
        deployment.start_clients()
        while time.monotonic() - started < max_duration_s:
            if stop_event is not None and stop_event.is_set():
                break
            if (
                deployment.clients
                and target_requests
                and deployment.total_completed() >= target_requests
            ):
                break
            await asyncio.sleep(0.05)
        deployment.stop_clients()
        await asyncio.sleep(0.05)
        return _collect_result(deployment, time.monotonic() - started)
    finally:
        await deployment.stop()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _spec_from_args(args: argparse.Namespace) -> DeploymentSpec:
    return DeploymentSpec(
        protocol=args.protocol,
        cores=args.cores,
        service=args.service,
        batch_size=args.batch_size,
        batch_linger_ns=args.batch_linger_us * 1_000,
        rotation=args.rotation,
        num_clients=args.clients,
        client_window=args.window,
        client_machines=args.client_machines,
        payload_size=args.payload_size,
        checkpoint_interval=args.checkpoint_interval,
        window_size=args.window_size,
        seed=args.seed,
        crypto_profile=args.crypto,
    )


def _write_trace(tracer: Tracer, path: str, node: str | None = None) -> None:
    if not path:
        return
    target = f"{path}.{node}.jsonl" if node else path
    tracer.write_jsonl(target)


async def _run_group_processes(args: argparse.Namespace) -> int:
    """Process-per-node mode: spawn one child per replica and client node."""
    spec = _spec_from_args(args)
    if args.base_port == 0:
        args.base_port = DEFAULT_BASE_PORT
    nodes = list(_replica_ids(spec.protocol)) + [
        f"clients{j}" for j in range(spec.client_machines)
    ]
    children: dict[str, asyncio.subprocess.Process] = {}
    passthrough = [
        "--protocol", spec.protocol, "--service", spec.service,
        "--cores", str(spec.cores), "--batch-size", str(spec.batch_size),
        "--batch-linger-us", str(spec.batch_linger_ns // 1_000),
        "--clients", str(spec.num_clients), "--window", str(spec.client_window),
        "--client-machines", str(spec.client_machines),
        "--payload-size", str(spec.payload_size),
        "--checkpoint-interval", str(spec.checkpoint_interval),
        "--window-size", str(spec.window_size),
        "--requests", str(args.requests), "--duration", str(args.duration),
        "--base-port", str(args.base_port), "--host", args.host,
        "--seed", str(args.seed), "--crypto", spec.crypto_profile,
    ]
    if spec.rotation:
        passthrough.append("--rotation")
    if args.trace_out:
        passthrough += ["--trace-out", args.trace_out]
    try:
        for node in nodes:
            children[node] = await asyncio.create_subprocess_exec(
                sys.executable, "-m", "repro.runtime.live", "--role", "node",
                "--node", node, *passthrough,
                stdout=asyncio.subprocess.PIPE,
            )
        total = 0
        for node, child in children.items():
            if not node.startswith("clients"):
                continue
            raw, _ = await asyncio.wait_for(
                child.communicate(), timeout=args.duration + 15
            )
            result = json.loads(raw.decode() or "{}")
            total += result.get("completed", 0)
            print(f"{node}: {result}")
        print(f"total completed across client processes: {total}")
        return 0 if total >= args.requests else 1
    finally:
        for child in children.values():
            if child.returncode is None:
                child.terminate()
        for child in children.values():
            if child.returncode is None:
                try:
                    await asyncio.wait_for(child.wait(), timeout=5)
                except asyncio.TimeoutError:
                    child.kill()
        if args.trace_out:
            _merge_child_traces(args.trace_out, nodes)


def _merge_child_traces(path: str, nodes: list[str]) -> None:
    import os

    tracers = []
    for node in nodes:
        part = f"{path}.{node}.jsonl"
        if os.path.exists(part):
            tracers.append(Tracer.load_jsonl(part))
    if tracers:
        Tracer.merge(*tracers).write_jsonl(path)


async def _amain(args: argparse.Namespace) -> int:
    tracer = Tracer(enabled=True) if args.trace_out else NULL_TRACER
    if args.role == "node":
        # the parent stops replica children with SIGTERM; exit cleanly so
        # traces and stats still get written
        stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(sig, stop_event.set)
        result = await run_live_node(
            _spec_from_args(args),
            args.node,
            target_requests=_per_node_target(args),
            max_duration_s=args.duration,
            tracer=tracer,
            host=args.host,
            base_port=args.base_port or DEFAULT_BASE_PORT,
            stop_event=stop_event,
        )
        _write_trace(tracer, args.trace_out, node=args.node)
        print(json.dumps(result.to_json()))
        return 0
    if args.processes:
        return await _run_group_processes(args)
    result = await run_live(
        _spec_from_args(args),
        target_requests=args.requests,
        max_duration_s=args.duration,
        tracer=tracer,
        host=args.host,
        base_port=args.base_port,
    )
    _write_trace(tracer, args.trace_out)
    print(result)
    if result.state_digests and len(set(result.state_digests)) != 1:
        print("ERROR: replica states diverged", file=sys.stderr)
        return 2
    if result.completed < args.requests:
        print(
            f"ERROR: only {result.completed}/{args.requests} requests completed "
            f"within {args.duration:.0f} s",
            file=sys.stderr,
        )
        return 1
    return 0


def _per_node_target(args: argparse.Namespace) -> int:
    """A client process's share of the request target (replicas: unlimited)."""
    if not args.node.startswith("clients"):
        return 0
    # Each client machine hosts an equal share of the clients; stopping at
    # a proportional share keeps process-mode runs from waiting on the
    # slowest machine longer than necessary.
    return max(1, args.requests // max(1, args.client_machines))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-live",
        description="Run a Hybster group live over localhost TCP sockets",
    )
    parser.add_argument("--protocol", choices=LIVE_PROTOCOLS, default="hybster-s")
    parser.add_argument("--service", choices=sorted(SERVICES), default="counter")
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument("--batch-size", type=int, default=1)
    parser.add_argument("--batch-linger-us", type=int, default=0,
                        help="hold a partial batch this long under light load")
    parser.add_argument("--crypto", choices=("openssl", "java", "tcrypto", "real"),
                        default="java",
                        help="crypto cost profile; 'real' times HMAC-SHA256 on this host")
    parser.add_argument("--rotation", action="store_true")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--window", type=int, default=8)
    parser.add_argument("--client-machines", type=int, default=1)
    parser.add_argument("--payload-size", type=int, default=0)
    parser.add_argument("--checkpoint-interval", type=int, default=128)
    parser.add_argument("--window-size", type=int, default=1024)
    parser.add_argument("--requests", type=int, default=100,
                        help="stop once this many requests completed")
    parser.add_argument("--duration", type=float, default=10.0,
                        help="hard wall-clock limit in seconds")
    parser.add_argument("--seed", type=int, default=0,
                        help="master seed for all DeterministicRandom users")
    parser.add_argument("--base-port", type=int, default=0,
                        help="0 = OS-assigned (single process only)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--trace-out", default="",
                        help="write a JSONL trace (merged across processes)")
    parser.add_argument("--processes", action="store_true",
                        help="one OS process per replica / client machine")
    parser.add_argument("--role", choices=("group", "node"), default="group",
                        help=argparse.SUPPRESS)
    parser.add_argument("--node", default="", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.role == "node" and not args.node:
        parser.error("--role node requires --node")
    return asyncio.run(_amain(args))


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
