"""Deployment and benchmark harness.

This layer reproduces the paper's testbed (§6, "Setup"): six machines
with quad-core i7-6700 CPUs (Hyper-Threading on, Turbo Boost off) on
switched gigabit Ethernet — 3 or 4 replica machines depending on the
protocol plus two client machines — and the measurement methodology
(saturating clients with bounded asynchronous request windows, average
latency/throughput over a measurement interval after warm-up).
"""

from repro.runtime.calibration import CalibrationProfile, DEFAULT_CALIBRATION
from repro.runtime.deployment import Deployment, DeploymentSpec, build_deployment
from repro.runtime.benchmark import BenchmarkResult, run_benchmark

__all__ = [
    "CalibrationProfile",
    "DEFAULT_CALIBRATION",
    "Deployment",
    "DeploymentSpec",
    "build_deployment",
    "BenchmarkResult",
    "run_benchmark",
]
