"""Calibration constants for the performance model.

The crypto and enclave costs are fixed by measurements reported in the
paper (see :mod:`repro.crypto.costs`).  The remaining free parameters of
the model describe the Java prototype's framework overhead and are
calibrated once against the paper's headline numbers (§6.2):

* ``message_base_cost_ns`` — per-handler-invocation cost of receiving a
  message (deserialization, queueing, dispatch);
* ``send_cost_ns`` — per-remote-message cost of serializing and writing
  to a socket (this is what batching amortizes);
* ``local_send_cost_ns`` — in-memory hand-off between stages;
* ``client_*`` — the same constants for the client-side implementation.

A single profile is used for *all* protocol configurations — the
protocols differ only in the number and size of messages and crypto
operations they perform, exactly as on the real testbed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CalibrationProfile:
    message_base_cost_ns: int = 1_000
    send_cost_ns: int = 2_200
    control_send_cost_ns: int = 900
    local_send_cost_ns: int = 250
    client_base_cost_ns: int = 800
    client_send_cost_ns: int = 1_500


DEFAULT_CALIBRATION = CalibrationProfile()
