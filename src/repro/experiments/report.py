"""Structured results and ASCII rendering for experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class Series:
    """One curve of a figure: a label and (x, y) points."""

    label: str
    points: list[tuple[Any, float]] = field(default_factory=list)

    def add(self, x: Any, y: float) -> None:
        self.points.append((x, y))

    def y_values(self) -> list[float]:
        return [y for _x, y in self.points]

    def value_at(self, x: Any) -> float | None:
        for point_x, y in self.points:
            if point_x == x:
                return y
        return None

    @property
    def final(self) -> float:
        return self.points[-1][1]

    @property
    def peak(self) -> float:
        return max(y for _x, y in self.points)


@dataclass
class FigureResult:
    """All series of one reproduced figure, plus context for the report."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    paper_reference: dict[str, float] = field(default_factory=dict)

    def series_by_label(self, label: str) -> Series:
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(f"no series {label!r} in {self.figure_id}")

    def add_series(self, series: Series) -> Series:
        self.series.append(series)
        return series

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Readable report: one row per x value, one column per series."""
        lines = [f"=== {self.figure_id}: {self.title} ===", f"y: {self.y_label}"]
        xs: list[Any] = []
        for series in self.series:
            for x, _y in series.points:
                if x not in xs:
                    xs.append(x)
        header = f"{self.x_label:>16} " + " ".join(f"{s.label:>14}" for s in self.series)
        lines.append(header)
        for x in xs:
            cells = []
            for series in self.series:
                value = series.value_at(x)
                cells.append(f"{value:14.1f}" if value is not None else " " * 14)
            lines.append(f"{str(x):>16} " + " ".join(cells))
        if self.paper_reference:
            lines.append("paper reference: " + ", ".join(
                f"{k}={v:g}" for k, v in self.paper_reference.items()
            ))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)
