"""Figure 5b — protocol throughput vs cores: 0-byte requests, unbatched,
rotating leader.

Every consensus instance orders a single request, so the per-message costs
of the ordering protocols dominate.  Expected shape (paper, 4 cores):
HybsterX ≈ 165 k highest; PBFTcop ≈ 140 k; HybridPBFT ~30 % below PBFTcop
(many small messages, each paying the enclave entry and the slow SDK
hash); HybsterS flat around 40 k — the only configuration confined by a
sequential ordering protocol.
"""

from __future__ import annotations

from repro.experiments.protocol_common import PROTOCOL_LABELS, measure_point
from repro.experiments.report import FigureResult, Series

MILLISECOND = 1_000_000

PROTOCOLS = ("hybster-x", "hybster-s", "hybrid-pbft", "pbft")


def run(scale: str = "quick") -> FigureResult:
    if scale == "quick":
        cores_list, measure_ns, load = (4,), 40 * MILLISECOND, 0.6
    else:
        cores_list, measure_ns, load = (1, 2, 3, 4), 80 * MILLISECOND, 1.0
    result = FigureResult(
        figure_id="fig5b",
        title="Throughput, 0 bytes, unbatched, rotating leader",
        x_label="cores",
        y_label="kops/s",
        paper_reference={
            "HybsterX @4": 165,
            "PBFTcop @4": 140,
            "HybsterS @4": 40,
        },
    )
    for protocol in PROTOCOLS:
        series = result.add_series(Series(PROTOCOL_LABELS[protocol]))
        for cores in cores_list:
            point = measure_point(
                protocol,
                cores=cores,
                batch_size=1,
                rotation=True,
                measure_ns=measure_ns,
                load_factor=load * (cores / 4),
            )
            series.add(cores, point.throughput_ops / 1e3)
    result.notes.append(
        "HybsterS is confined by its sequential ordering; the parallel "
        "protocols scale with the core count"
    )
    return result


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run("full").render())
