"""Figure 5a — trusted-subsystem certification throughput vs core count.

Reproduces the §6.1 microbenchmark: a varying number of cores (two
hardware threads each) independently certify 32-byte messages, comparing

* TrInX, one enclave instance per thread, accessed natively and via JNI;
* Multi-TrInX, all instances inside a single shared enclave;
* the plain (insecure) library implementations — the SGX SDK's TCrypto,
  OpenSSL, and pure Java;
* CASH, the FPGA subsystem behind CheapBFT (single channel, 57 µs/cert).

Expected shape (paper): the plain libraries scale linearly (OpenSSL out
of range), TrInX scales to ~1.3 M certs/s on four cores with a small JNI
penalty, Multi-TrInX tracks TrInX up to three cores and falls back at
four, and CASH stays flat at ~17.5 k/s regardless of core count.
"""

from __future__ import annotations

from repro.baselines.cash import CashSubsystem
from repro.crypto.costs import JAVA, OPENSSL, TCRYPTO
from repro.crypto.provider import CryptoProvider
from repro.experiments.report import FigureResult, Series
from repro.sim.kernel import Simulator
from repro.sim.resources import Machine
from repro.trinx.enclave import EnclavePlatform
from repro.trinx.multi import MultiTrInX
from repro.trinx.trinx import TrInX

SECRET = b"figure5a-group-secret-000000000!"
MESSAGE = b"m" * 32

VARIANTS = (
    "TrInX (native)",
    "TrInX (JNI)",
    "Multi-TrInX",
    "TCrypto",
    "OpenSSL",
    "Java",
    "CASH",
)


class _CertLoop:
    """A worker thread that certifies messages back-to-back."""

    def __init__(self, sim: Simulator, thread, certify):
        self.sim = sim
        self.thread = thread
        self.certify = certify
        self.ops = 0
        self._stopped = False

    def start(self) -> None:
        self.thread.submit(self._step)

    def stop(self) -> None:
        self._stopped = True

    def _step(self, _arg=None) -> None:
        if self._stopped:
            return
        self.certify()
        self.ops += 1
        self.thread.submit(self._step)


def _make_certifier(variant: str, sim: Simulator, index: int, num_threads: int, shared: dict):
    if variant == "TrInX (native)":
        platform = EnclavePlatform(charge=sim.charge, via_jni=False)
        instance = TrInX(platform, f"native/{index}", SECRET)
        counter = {"value": 0}

        def certify():
            counter["value"] += 1
            instance.create_independent(0, counter["value"], MESSAGE, size_hint=32)

        return certify
    if variant == "TrInX (JNI)":
        platform = EnclavePlatform(charge=sim.charge, via_jni=True)
        instance = TrInX(platform, f"jni/{index}", SECRET)
        counter = {"value": 0}

        def certify():
            counter["value"] += 1
            instance.create_independent(0, counter["value"], MESSAGE, size_hint=32)

        return certify
    if variant == "Multi-TrInX":
        multi = shared.get("multi")
        if multi is None:
            platform = EnclavePlatform(charge=sim.charge, via_jni=False)
            multi = MultiTrInX(
                platform, "multi", SECRET, num_instances=num_threads, sharing_threads=num_threads
            )
            shared["multi"] = multi
        instance = multi.instance(index)
        counter = {"value": 0}

        def certify():
            counter["value"] += 1
            instance.create_independent(0, counter["value"], MESSAGE, size_hint=32)

        return certify
    if variant == "CASH":
        cash = shared.get("cash")
        if cash is None:
            cash = CashSubsystem(sim, "cash", SECRET)
            shared["cash"] = cash
        counter = {"value": 0}

        def certify():
            counter["value"] += 1
            cash.create_certificate(0, counter["value"], MESSAGE)

        return certify
    profile = {"TCrypto": TCRYPTO, "OpenSSL": OPENSSL, "Java": JAVA}[variant]
    provider = CryptoProvider(profile, charge=sim.charge)

    def certify():
        provider.compute_mac(SECRET, MESSAGE, size_hint=32)

    return certify


def measure_variant(variant: str, cores: int, measure_ns: int = 5_000_000) -> float:
    """Certification throughput (ops/s) of ``variant`` on ``cores`` cores."""
    sim = Simulator()
    machine = Machine(sim, "bench", cores=cores)
    num_threads = machine.hardware_threads  # both hardware threads per core
    shared: dict = {}
    loops = []
    for index in range(num_threads):
        thread = machine.allocate_thread(f"w{index}")
        certify = _make_certifier(variant, sim, index, num_threads, shared)
        loops.append(_CertLoop(sim, thread, certify))
    for loop in loops:
        loop.start()
    sim.run(until=measure_ns)
    for loop in loops:
        loop.stop()
    total_ops = sum(loop.ops for loop in loops)
    return total_ops / (measure_ns / 1e9)


def run(scale: str = "quick") -> FigureResult:
    measure_ns = 2_000_000 if scale == "quick" else 10_000_000
    result = FigureResult(
        figure_id="fig5a",
        title="Trusted subsystem throughput, 32-byte messages",
        x_label="cores",
        y_label="certifications per second",
        paper_reference={
            "TrInX (native) @4": 1_300_000,
            "single TrInX instance": 240_000,
            "CASH": 17_500,
        },
    )
    for variant in VARIANTS:
        series = result.add_series(Series(variant))
        for cores in (1, 2, 3, 4):
            series.add(cores, measure_variant(variant, cores, measure_ns))
    result.notes.append(
        "plain libraries scale linearly; TrInX multiplies across enclaves; "
        "Multi-TrInX contends in its shared enclave at 4 cores; CASH is a "
        "single FPGA channel"
    )
    return result


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run("full").render())
