"""Shared helpers for the protocol throughput/latency experiments."""

from __future__ import annotations

from repro.runtime.benchmark import BenchmarkResult, run_benchmark
from repro.runtime.deployment import DeploymentSpec, build_deployment
from repro.sim.tracing import NULL_TRACER, Tracer

MILLISECOND = 1_000_000

# Tracer every measure_point-built deployment emits into.  The experiments
# CLI installs a real tracer for --trace-out; default is the free no-op.
_trace_sink: Tracer = NULL_TRACER


def set_trace_sink(tracer: Tracer) -> None:
    """Route traces from subsequently built deployments to ``tracer``."""
    global _trace_sink
    _trace_sink = tracer

PROTOCOL_LABELS = {
    "hybster-x": "HybsterX",
    "hybster-s": "HybsterS",
    "hybrid-pbft": "HybridPBFT",
    "pbft": "PBFTcop",
    "minbft": "MinBFT",
}

# Saturation client counts per protocol, scaled by configuration.  The paper
# "configures a number of clients that saturates the system"; these were
# found empirically for the simulated testbed.
SATURATION_CLIENTS = {
    ("hybster-s", 1): (150, 8),
    ("hybster-x", 1): (400, 8),
    ("pbft", 1): (500, 8),
    ("hybrid-pbft", 1): (500, 8),
    ("minbft", 1): (150, 8),
    ("hybster-s", 16): (600, 16),
    ("hybster-x", 16): (2000, 32),
    ("pbft", 16): (2000, 32),
    ("hybrid-pbft", 16): (2000, 32),
    ("minbft", 16): (600, 16),
}


def measure_point(
    protocol: str,
    cores: int = 4,
    batch_size: int = 1,
    rotation: bool = True,
    num_clients: int | None = None,
    client_window: int | None = None,
    payload_size: int = 0,
    reply_payload_size: int = 0,
    service: str = "null",
    workload_factory=None,
    warmup_ns: int = 50 * MILLISECOND,
    measure_ns: int = 60 * MILLISECOND,
    load_factor: float = 1.0,
) -> BenchmarkResult:
    """Run one saturation (or fixed-load) benchmark point."""
    default_clients, default_window = SATURATION_CLIENTS[(protocol, 16 if batch_size > 1 else 1)]
    clients = num_clients if num_clients is not None else max(4, int(default_clients * load_factor))
    if client_window is not None:
        window = client_window
    else:
        # scale the per-client window with the load so low-load points are
        # genuinely low load (the paper's latency curves start near idle)
        window = max(1, int(round(default_window * min(1.0, load_factor * 2))))
    spec = DeploymentSpec(
        protocol=protocol,
        cores=cores,
        batch_size=batch_size,
        rotation=rotation,
        num_clients=clients,
        client_window=window,
        payload_size=payload_size,
        reply_payload_size=reply_payload_size,
        service=service,
        workload_factory=workload_factory,
    )
    deployment = build_deployment(spec, tracer=_trace_sink)
    return run_benchmark(deployment, warmup_ns=warmup_ns, measure_ns=measure_ns)
