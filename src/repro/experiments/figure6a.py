"""Figure 6a — average latency vs throughput: 0-byte payloads, batched,
fixed leader.

The load (number of clients) increases until each configuration
saturates.  Expected shape (paper): all configurations start at 0.5-0.6 ms;
HybsterX sits ~20 % below its competitors (two-phase ordering: four
message delays end-to-end instead of five) and saturates last (~900 k);
saturation order HybsterX > HybridPBFT > PBFTcop > HybsterS (~310 k).
"""

from __future__ import annotations

from repro.experiments.protocol_common import PROTOCOL_LABELS, measure_point
from repro.experiments.report import FigureResult, Series

MILLISECOND = 1_000_000

PROTOCOLS = ("hybster-x", "hybster-s", "hybrid-pbft", "pbft")
BATCH = 16


def run(scale: str = "quick", payload_size: int = 0, figure_id: str = "fig6a") -> FigureResult:
    if scale == "quick":
        load_factors, measure_ns = (0.05, 0.4, 1.0), 30 * MILLISECOND
    else:
        load_factors, measure_ns = (0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0, 1.3), 50 * MILLISECOND
    result = FigureResult(
        figure_id=figure_id,
        title=f"Latency vs throughput, {payload_size} B payloads, batched, fixed leader",
        x_label="load step",
        y_label="kops/s @ ms (encoded as throughput; latency in companion series)",
        paper_reference=(
            {"HybsterX saturation": 900, "PBFTcop saturation": 660, "HybsterS saturation": 310}
            if payload_size == 0
            else {"saturation order": 0}
        ),
    )
    for protocol in PROTOCOLS:
        throughput_series = result.add_series(Series(PROTOCOL_LABELS[protocol]))
        latency_series = result.add_series(Series(f"{PROTOCOL_LABELS[protocol]} ms"))
        for load in load_factors:
            point = measure_point(
                protocol,
                cores=4,
                batch_size=BATCH,
                rotation=False,
                payload_size=payload_size,
                reply_payload_size=payload_size,
                measure_ns=measure_ns,
                load_factor=load,
            )
            throughput_series.add(load, point.throughput_ops / 1e3)
            latency_series.add(load, point.latency_ms)
    result.notes.append(
        "HybsterX needs four message delays end-to-end (two-phase ordering), "
        "the PBFT variants five; saturation points mirror Figure 5c with a "
        "single proposing replica"
    )
    return result


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run("full").render())
