"""Figure 6b — average latency vs throughput with 1-KiB payloads.

Identical methodology to Figure 6a but requests *and* replies carry one
kilobyte.  The paper reports lower but comparable numbers, with the
network becoming an additional limiting factor near saturation (the
0-byte benchmark is purely CPU-bound).
"""

from __future__ import annotations

from repro.experiments.figure6a import run as run_6a
from repro.experiments.report import FigureResult

PAYLOAD = 1024


def run(scale: str = "quick") -> FigureResult:
    result = run_6a(scale, payload_size=PAYLOAD, figure_id="fig6b")
    result.title = "Latency vs throughput, 1 KiB payloads, batched, fixed leader"
    result.notes.append("the network adds a limiting factor that 0-byte runs lack")
    return result


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run("full").render())
