"""Figure 5c — protocol throughput vs cores: 0-byte requests, batched,
rotating leader.

Batching amortizes per-instance protocol costs, so the client-facing work
(request MACs, reply MACs, socket writes) dominates and HybridPBFT
catches up with PBFTcop.  Expected shape (paper, 4 cores): HybsterX
≈ 1.04 M highest; PBFTcop ≈ 890 k; HybsterS saturates around 400 k.
The §6.2 headline: HybsterX speeds up 3.77× from one to four cores with
rotation (3.91× without) — the first hybrid protocol that scales at all.
"""

from __future__ import annotations

from repro.experiments.protocol_common import PROTOCOL_LABELS, measure_point
from repro.experiments.report import FigureResult, Series

MILLISECOND = 1_000_000

PROTOCOLS = ("hybster-x", "hybster-s", "hybrid-pbft", "pbft")
BATCH = 16


def run(scale: str = "quick") -> FigureResult:
    if scale == "quick":
        cores_list, measure_ns, load = (4,), 40 * MILLISECOND, 0.6
    else:
        cores_list, measure_ns, load = (1, 2, 3, 4), 60 * MILLISECOND, 1.0
    result = FigureResult(
        figure_id="fig5c",
        title="Throughput, 0 bytes, batched, rotating leader",
        x_label="cores",
        y_label="kops/s",
        paper_reference={
            "HybsterX @4": 1040,
            "PBFTcop @4": 890,
            "HybsterS @4": 400,
            "HybsterX speedup 4c/1c": 3.77,
        },
    )
    for protocol in PROTOCOLS:
        series = result.add_series(Series(PROTOCOL_LABELS[protocol]))
        for cores in cores_list:
            point = measure_point(
                protocol,
                cores=cores,
                batch_size=BATCH,
                rotation=True,
                measure_ns=measure_ns,
                load_factor=load * (cores / 4),
            )
            series.add(cores, point.throughput_ops / 1e3)
    if len(cores_list) > 1:
        hybx = result.series_by_label("HybsterX")
        speedup = hybx.value_at(cores_list[-1]) / max(hybx.value_at(cores_list[0]), 1e-9)
        result.notes.append(f"HybsterX speedup {cores_list[-1]}c vs {cores_list[0]}c: {speedup:.2f}x")
    result.notes.append("batching amortizes ordering costs; client I/O paths dominate")
    return result


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run("full").render())
