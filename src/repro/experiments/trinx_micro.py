"""§6.1 headline numbers — single-instance TrInX rate and TrInX vs CASH.

The paper measures 240,000 certifications/s for a single TrInX instance
on a dedicated thread, against 17,500 for the FPGA-based CASH (57 µs per
certificate, single channel): a ~14× advantage before instance
multiplication even starts.
"""

from __future__ import annotations

from repro.baselines.cash import CashSubsystem
from repro.experiments.figure5a import SECRET, MESSAGE, _CertLoop
from repro.experiments.report import FigureResult, Series
from repro.sim.kernel import Simulator
from repro.sim.resources import Machine
from repro.trinx.enclave import EnclavePlatform
from repro.trinx.trinx import TrInX


def single_thread_rate(kind: str, measure_ns: int = 5_000_000) -> float:
    """Certifications/s of one instance on one dedicated (full-speed) thread."""
    sim = Simulator()
    machine = Machine(sim, "bench", cores=1)
    thread = machine.allocate_thread("w0")  # sibling slot left empty
    counter = {"value": 0}
    if kind == "trinx":
        instance = TrInX(EnclavePlatform(charge=sim.charge), "solo", SECRET)

        def certify():
            counter["value"] += 1
            instance.create_independent(0, counter["value"], MESSAGE, size_hint=32)

    elif kind == "cash":
        cash = CashSubsystem(sim, "cash", SECRET)

        def certify():
            counter["value"] += 1
            cash.create_certificate(0, counter["value"], MESSAGE)

    else:
        raise ValueError(f"unknown kind {kind!r}")
    loop = _CertLoop(sim, thread, certify)
    loop.start()
    sim.run(until=measure_ns)
    loop.stop()
    return loop.ops / (measure_ns / 1e9)


def run(scale: str = "quick") -> FigureResult:
    measure_ns = 2_000_000 if scale == "quick" else 20_000_000
    result = FigureResult(
        figure_id="trinx-micro",
        title="Single-instance certification rate: TrInX vs CASH",
        x_label="subsystem",
        y_label="certifications per second",
        paper_reference={"TrInX": 240_000, "CASH": 17_500},
    )
    series = result.add_series(Series("measured"))
    series.add("TrInX", single_thread_rate("trinx", measure_ns))
    series.add("CASH", single_thread_rate("cash", measure_ns))
    trinx_rate = series.value_at("TrInX")
    cash_rate = series.value_at("CASH")
    result.notes.append(f"advantage: {trinx_rate / cash_rate:.1f}x (paper: ~13.7x)")
    return result


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run("full").render())
