"""Figure 6c — coordination service throughput vs read rate.

The ZooKeeper-inspired service of §6.4: clients store and retrieve
128-byte nodes; the proportion of reads varies from 0 % to 100 %.  No
read optimization exists — reads run through the full protocol — and no
rotation is used, so a single replica proposes everything.

Expected shape (paper): HybsterX 10-20 % above HybridPBFT, 30-40 % above
PBFTcop, and 2.5-3× its own sequential basic protocol, roughly flat
across read rates.
"""

from __future__ import annotations

from repro.clients.workload import CoordinationWorkload
from repro.experiments.protocol_common import PROTOCOL_LABELS, measure_point
from repro.experiments.report import FigureResult, Series

MILLISECOND = 1_000_000

PROTOCOLS = ("hybster-x", "hybster-s", "hybrid-pbft", "pbft")
BATCH = 16
NODE_SIZE = 128


def run(scale: str = "quick") -> FigureResult:
    if scale == "quick":
        read_rates, measure_ns, load = (0.0, 0.5, 1.0), 30 * MILLISECOND, 0.5
    else:
        read_rates, measure_ns, load = (0.0, 0.25, 0.5, 0.75, 1.0), 50 * MILLISECOND, 0.8
    # clients create their subtrees sequentially before the measurement; the
    # warm-up must cover that setup phase plus steady-state ramp-up
    warmup_ns = 200 * MILLISECOND
    result = FigureResult(
        figure_id="fig6c",
        title="Coordination service throughput vs read rate (128-byte nodes)",
        x_label="read fraction",
        y_label="kops/s",
        paper_reference={
            "HybsterX over HybridPBFT": 1.15,
            "HybsterX over PBFTcop": 1.35,
            "HybsterX over HybsterS": 2.75,
        },
    )
    for protocol in PROTOCOLS:
        series = result.add_series(Series(PROTOCOL_LABELS[protocol]))
        for read_rate in read_rates:
            def factory(client_id: str, index: int, _rate=read_rate):
                return CoordinationWorkload(
                    client_id, read_fraction=_rate, node_size=NODE_SIZE, seed=index
                )

            point = measure_point(
                protocol,
                cores=4,
                batch_size=BATCH,
                rotation=False,
                service="coordination",
                workload_factory=factory,
                warmup_ns=warmup_ns,
                measure_ns=measure_ns,
                load_factor=load,
            )
            series.add(read_rate, point.throughput_ops / 1e3)
    result.notes.append(
        "strong consistency: reads are ordered like writes, so throughput "
        "stays roughly flat across the read/write mix"
    )
    return result


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run("full").render())
