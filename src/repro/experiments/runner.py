"""CLI entry point: regenerate any table/figure of the paper.

Usage::

    repro-experiments fig5a [--scale quick|full]
    repro-experiments all --scale quick
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import figure5a, figure5b, figure5c, figure6a, figure6b, figure6c, trinx_micro
from repro.experiments.protocol_common import set_trace_sink
from repro.sim.tracing import Tracer

EXPERIMENTS = {
    "trinx": trinx_micro.run,
    "fig5a": figure5a.run,
    "fig5b": figure5b.run,
    "fig5c": figure5c.run,
    "fig6a": figure6a.run,
    "fig6b": figure6b.run,
    "fig6c": figure6c.run,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the evaluation figures of 'Hybrids on Steroids' (EuroSys '17)",
    )
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    parser.add_argument("--scale", choices=("quick", "full"), default="quick")
    parser.add_argument(
        "--trace-out",
        default="",
        help="write protocol traces of the simulated runs to this JSONL file",
    )
    args = parser.parse_args(argv)

    tracer = None
    if args.trace_out:
        tracer = Tracer(enabled=True)
        set_trace_sink(tracer)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.time()
        result = EXPERIMENTS[name](args.scale)
        print(result.render())
        print(f"({name} took {time.time() - started:.1f}s wall time)\n")
    if tracer is not None:
        count = tracer.write_jsonl(args.trace_out)
        print(f"wrote {count} trace records to {args.trace_out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
