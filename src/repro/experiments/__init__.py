"""Experiment harnesses: one module per table/figure of the paper's §6.

Each module exposes ``run(scale)`` returning a :class:`FigureResult`
(structured series plus the paper's reference values) and can render an
ASCII report.  ``scale`` is ``"quick"`` (seconds of wall time, used by the
pytest benchmarks) or ``"full"`` (longer measurement windows).

Use the CLI to regenerate any figure::

    repro-experiments fig5a --scale quick
    repro-experiments all --scale full
"""

from repro.experiments.report import FigureResult, Series

__all__ = ["FigureResult", "Series"]
