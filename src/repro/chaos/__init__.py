"""Transport-agnostic chaos injection.

The paper's system model is partially synchronous with up to f hybrid
faults; this package creates exactly those conditions behind the shared
:class:`~repro.net.base.Transport` seam, so the *same* fault filter
objects plug into the discrete-event :class:`~repro.sim.network.Network`
(``add_filter``) and into the live asyncio
:class:`~repro.net.transport.TcpTransport` (``add_filter``).  Protocol
code never sees the difference: messages are dropped, delayed, reordered,
or tampered with before they reach the wire.

Filters inspect ``(src, dst, message, size, now)`` — ``message`` is the
:class:`~repro.sim.process.Envelope` both transports carry — and return a
:class:`FilterDecision`: deliver, drop, deliver after an extra delay, or
deliver a *replacement* message (the tampering primitive equivocation
attacks are built from).
"""

from repro.chaos.base import DELIVER, FilterDecision, MessageFilter
from repro.chaos.filters import (
    ChaosPlan,
    CrashWindows,
    Equivocate,
    ExtraDelay,
    FaultPlan,
    LossRate,
    Partition,
    Reorder,
    TargetedDrop,
)

__all__ = [
    "DELIVER",
    "FilterDecision",
    "MessageFilter",
    "ChaosPlan",
    "CrashWindows",
    "Equivocate",
    "ExtraDelay",
    "FaultPlan",
    "LossRate",
    "Partition",
    "Reorder",
    "TargetedDrop",
]
