"""The chaos filter library: drops, delays, partitions, reordering,
whole-node crash/recovery, and equivocation attempts.

These filters are deliberately transport-agnostic — the same instances
drive the simulated network and the live TCP transport:

* :class:`LossRate` — drop a random fraction of messages (seeded RNG).
* :class:`Partition` — isolate a set of nodes during a time window.
* :class:`TargetedDrop` — drop messages matching a predicate (used to
  build the Figure-3 scenario, e.g. "R2 receives no ordering messages").
* :class:`ExtraDelay` — add constant or random latency between node pairs.
* :class:`Reorder` — delay a random fraction of messages by a random
  amount, so they overtake each other (partial synchrony's reordering).
* :class:`CrashWindows` — silence a whole node (no sends, no receives)
  during one or more windows; when a window closes the node *recovers*
  with its state intact and catches up through retransmissions and state
  transfer.
* :class:`Equivocate` — tamper with a proposer's PREPAREs towards a
  subset of peers while the rest receive the genuine message: the classic
  equivocation attempt that TrInX counter certificates must expose.
* :class:`ChaosPlan` — compose several filters.

Time (``now``) is nanoseconds on whichever clock the host transport uses:
simulated time in the discrete-event network, monotonic wall-clock time
since transport construction in live mode.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Any, Callable, Iterable

from repro.chaos.base import DELIVER, FilterDecision
from repro.sim.rand import DeterministicRandom


class LossRate:
    """Drop each message independently with probability ``rate``."""

    def __init__(self, rate: float, seed: int = 0, pairs: set[tuple[str, str]] | None = None):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.pairs = pairs
        self._rng = DeterministicRandom(seed)

    def decide(self, src: str, dst: str, message: Any, size: int, now: int) -> FilterDecision:
        if self.pairs is not None and (src, dst) not in self.pairs:
            return DELIVER
        if self._rng.random() < self.rate:
            return FilterDecision(drop=True)
        return DELIVER


class Partition:
    """Cut all traffic to and from ``nodes`` during [start_ns, end_ns)."""

    def __init__(self, nodes: Iterable[str], start_ns: int = 0, end_ns: int | None = None):
        self.nodes = set(nodes)
        self.start_ns = start_ns
        self.end_ns = end_ns

    def active(self, now: int) -> bool:
        if now < self.start_ns:
            return False
        return self.end_ns is None or now < self.end_ns

    def decide(self, src: str, dst: str, message: Any, size: int, now: int) -> FilterDecision:
        if self.active(now) and (src in self.nodes) != (dst in self.nodes):
            return FilterDecision(drop=True)
        return DELIVER


class TargetedDrop:
    """Drop messages for which ``predicate(src, dst, message)`` is true."""

    def __init__(self, predicate: Callable[[str, str, Any], bool]):
        self.predicate = predicate
        self.dropped = 0

    def decide(self, src: str, dst: str, message: Any, size: int, now: int) -> FilterDecision:
        if self.predicate(src, dst, message):
            self.dropped += 1
            return FilterDecision(drop=True)
        return DELIVER


class ExtraDelay:
    """Add latency between node pairs: constant plus optional jitter."""

    def __init__(
        self,
        delay_ns: int,
        jitter_ns: int = 0,
        seed: int = 0,
        pairs: set[tuple[str, str]] | None = None,
    ):
        if delay_ns < 0 or jitter_ns < 0:
            raise ValueError("delays must be non-negative")
        self.delay_ns = delay_ns
        self.jitter_ns = jitter_ns
        self.pairs = pairs
        self._rng = DeterministicRandom(seed)

    def decide(self, src: str, dst: str, message: Any, size: int, now: int) -> FilterDecision:
        if self.pairs is not None and (src, dst) not in self.pairs:
            return DELIVER
        extra = self.delay_ns
        if self.jitter_ns:
            extra += self._rng.randint(0, self.jitter_ns)
        return FilterDecision(extra_delay_ns=extra)


class Reorder:
    """Delay a random ``fraction`` of messages by a random amount.

    A held-back message is overtaken by everything sent in the meantime,
    which is exactly the reordering a partially synchronous network may
    exhibit.  Protocol stages must therefore tolerate, e.g., COMMITs
    arriving before their PREPARE.
    """

    def __init__(
        self,
        fraction: float,
        delay_ns: int,
        jitter_ns: int = 0,
        seed: int = 0,
        pairs: set[tuple[str, str]] | None = None,
    ):
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"reorder fraction must be in [0, 1], got {fraction}")
        if delay_ns < 0 or jitter_ns < 0:
            raise ValueError("delays must be non-negative")
        self.fraction = fraction
        self.delay_ns = delay_ns
        self.jitter_ns = jitter_ns
        self.pairs = pairs
        self._rng = DeterministicRandom(seed)
        self.reordered = 0

    def decide(self, src: str, dst: str, message: Any, size: int, now: int) -> FilterDecision:
        if self.pairs is not None and (src, dst) not in self.pairs:
            return DELIVER
        if self._rng.random() >= self.fraction:
            return DELIVER
        self.reordered += 1
        extra = self.delay_ns
        if self.jitter_ns:
            extra += self._rng.randint(0, self.jitter_ns)
        return FilterDecision(extra_delay_ns=extra)


class CrashWindows:
    """Fail-stop a whole node during windows; it recovers when one closes.

    While a window is active the node neither sends nor receives — the
    live analogue of SIGSTOP plus unplugged cables.  Unlike a permanent
    partition, the schedule *ends*: the node comes back with its protocol
    state intact and rejoins through retransmissions, FILL-GAP nudges,
    checkpoints, and state transfer.
    """

    def __init__(self, node: str, windows: Iterable[tuple[int, int | None]]):
        self.node = node
        self.windows = [(start, end) for start, end in windows]
        self.dropped = 0

    def crashed(self, now: int) -> bool:
        for start, end in self.windows:
            if now >= start and (end is None or now < end):
                return True
        return False

    def decide(self, src: str, dst: str, message: Any, size: int, now: int) -> FilterDecision:
        if (src == self.node or dst == self.node) and self.crashed(now):
            self.dropped += 1
            return FilterDecision(drop=True)
        return DELIVER


class Equivocate:
    """Tamper with a proposer's PREPAREs towards ``victims``.

    Models the classic equivocation attempt of a faulty leader: peers in
    ``victims`` receive a PREPARE whose batch was swapped for a forged
    request while the genuine certificate is kept attached; everyone else
    receives the real message.  Because Hybster's independent counter
    certificates bind the certificate to the message digest, verifying
    replicas reject the tampered copy and the attack degrades into an
    omission — unless certificate verification is switched off, in which
    case the safety checker must catch the resulting divergence.

    ``forged_operation`` is the service operation planted in the forged
    request (pick one the scenario's service accepts so the divergence is
    observable, e.g. ``("add", 666)`` for the counter service).
    """

    def __init__(
        self,
        source: str,
        victims: Iterable[str],
        forged_operation: Any = ("add", 666),
        start_ns: int = 0,
        end_ns: int | None = None,
        max_attempts: int | None = None,
    ):
        self.source = source
        self.victims = set(victims)
        self.forged_operation = forged_operation
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.max_attempts = max_attempts
        self.attempts = 0

    def active(self, now: int) -> bool:
        if now < self.start_ns:
            return False
        if self.end_ns is not None and now >= self.end_ns:
            return False
        return self.max_attempts is None or self.attempts < self.max_attempts

    def decide(self, src: str, dst: str, message: Any, size: int, now: int) -> FilterDecision:
        if src != self.source or dst not in self.victims or not self.active(now):
            return DELIVER
        # Local imports: keep the chaos package importable without pulling
        # the whole protocol stack in at module load.
        from repro.messages.client import Request
        from repro.messages.ordering import Prepare
        from repro.sim.process import Envelope

        inner = getattr(message, "message", message)
        if not isinstance(inner, Prepare) or inner.certificate is None or not inner.batch:
            return DELIVER
        self.attempts += 1
        original = inner.batch[0]
        forged_request = Request(
            original.client_id,
            original.request_id,
            self.forged_operation,
            original.payload_size,
            original.mac,
        )
        forged = dc_replace(inner, batch=(forged_request,) + inner.batch[1:])
        if isinstance(message, Envelope):
            return FilterDecision(replace=Envelope(message.src, message.dst_stage, forged))
        return FilterDecision(replace=forged)


class ChaosPlan:
    """Compose filters: first drop wins, delays accumulate, last replace wins."""

    def __init__(self, filters: Iterable[Any] = ()):
        self.filters = list(filters)

    def add(self, message_filter: Any) -> None:
        self.filters.append(message_filter)

    def decide(self, src: str, dst: str, message: Any, size: int, now: int) -> FilterDecision:
        total_delay = 0
        replacement = None
        for message_filter in self.filters:
            decision = message_filter.decide(src, dst, message, size, now)
            if decision.drop:
                return decision
            total_delay += decision.extra_delay_ns
            if decision.replace is not None:
                replacement = decision.replace
                message = decision.replace
        if total_delay or replacement is not None:
            return FilterDecision(extra_delay_ns=total_delay, replace=replacement)
        return DELIVER


# Historical name from repro.sim.faults; same composition semantics.
FaultPlan = ChaosPlan
