"""The decision types every chaos filter speaks.

Kept dependency-free so both transports (``repro.sim.network`` and
``repro.net.transport``) can import them without cycles.
"""

from __future__ import annotations

from typing import Any, Protocol


class FilterDecision:
    """Outcome for one message: deliver, drop, delay, or replace.

    ``replace`` carries a substitute message (an Envelope) delivered in
    place of the original — the tampering primitive used to model
    man-in-the-middle modification and equivocation attempts.  A decision
    may combine ``replace`` with ``extra_delay_ns``.
    """

    __slots__ = ("drop", "extra_delay_ns", "replace")

    def __init__(self, drop: bool = False, extra_delay_ns: int = 0, replace: Any = None):
        self.drop = drop
        self.extra_delay_ns = extra_delay_ns
        self.replace = replace


DELIVER = FilterDecision()


class MessageFilter(Protocol):
    """Decides the fate of a message in flight (see repro.chaos.filters)."""

    def decide(self, src: str, dst: str, message: Any, size: int, now: int) -> FilterDecision:
        ...  # pragma: no cover - protocol
