"""Shared message infrastructure."""

from __future__ import annotations

# Type tag, lengths, checksum, sender id.  This is not only an accounting
# estimate: the real frame header of the wire codec (repro.wire.framing)
# is laid out to exactly this size, so encoded messages and the bandwidth
# model charge the same framing overhead.
MESSAGE_HEADER_SIZE = 20


class ProtocolMessage:
    """Marker base class; subclasses are frozen dataclasses.

    Subclasses implement ``wire_size`` and ``digestible``.  ``digestible``
    must cover every field a certificate is supposed to bind — tests forge
    messages by varying single fields and expect verification to fail.
    """

    def wire_size(self) -> int:
        raise NotImplementedError

    def digestible(self):
        raise NotImplementedError

    def wire_padding(self) -> int:
        """Modelled payload bytes that are not materialized in memory.

        The benchmark messages account for request/reply payloads via a
        size field instead of carrying real buffers.  The wire codec
        appends this many zero bytes when encoding, so a live network
        transmits the bytes the simulator's bandwidth model charges for.
        """
        return 0


def certificate_size(certificate) -> int:
    """Wire size of an (optional) attached certificate or authenticator."""
    if certificate is None:
        return 0
    return certificate.wire_size()
