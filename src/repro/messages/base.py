"""Shared message infrastructure."""

from __future__ import annotations

MESSAGE_HEADER_SIZE = 20  # type tag, lengths, sender id — typical framing


class ProtocolMessage:
    """Marker base class; subclasses are frozen dataclasses.

    Subclasses implement ``wire_size`` and ``digestible``.  ``digestible``
    must cover every field a certificate is supposed to bind — tests forge
    messages by varying single fields and expect verification to fail.
    """

    def wire_size(self) -> int:
        raise NotImplementedError

    def digestible(self):
        raise NotImplementedError


def certificate_size(certificate) -> int:
    """Wire size of an (optional) attached certificate or authenticator."""
    if certificate is None:
        return 0
    return certificate.wire_size()
