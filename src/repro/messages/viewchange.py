"""View-change messages (paper §5.2.3, §5.3.3).

A VIEW-CHANGE announces that its sender aborted view ``v_from`` to support
the leader of ``v_to``.  Its *continuing* counter certificate
``tau(r, O, [v_to|0], [previous])`` anchors the sender's ordering history:
the unforgeable previous value forces even a faulty replica to include the
PREPAREs of every instance it actively participated in since its stable
checkpoint — and prevents it from ever sending another order message for
the aborted view.

For the parallel protocol the external messages are *split*: each pillar
issues one part certified by its own TrInX instance, and receivers only
act once all ``num_parts`` parts of a replica's message arrived (the part
count is fixed by the group configuration).  The sequential protocol is
simply the one-part case.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.messages.base import MESSAGE_HEADER_SIZE, ProtocolMessage, certificate_size
from repro.messages.checkpointing import Checkpoint
from repro.messages.ordering import Prepare
from repro.trinx.certificates import CounterCertificate, MultiCounterCertificate


@dataclass(frozen=True)
class ViewChange(ProtocolMessage):
    """One (part of a) VIEW-CHANGE message.

    ``checkpoint_order``/``checkpoint_certificate`` prove the position of
    the sender's ordering window; ``prepares`` are the PREPAREs of all
    window instances of this part's pillar the sender participated in.
    """

    replica: str
    v_from: int
    v_to: int
    checkpoint_order: int
    checkpoint_certificate: tuple[Checkpoint, ...]
    prepares: tuple[Prepare, ...]
    certificate: CounterCertificate | None = None
    # rotating-leader configurations seal all ordering lanes of the pillar
    # with one multi-counter continuing certificate instead
    multi_certificate: MultiCounterCertificate | None = None
    pillar: int = 0
    num_parts: int = 1

    def digestible(self):
        return (
            "view-change",
            self.replica,
            self.v_from,
            self.v_to,
            self.checkpoint_order,
            tuple(prepare.digestible() for prepare in self.prepares),
            self.pillar,
            self.num_parts,
        )

    def wire_size(self) -> int:
        return (
            MESSAGE_HEADER_SIZE
            + 24
            + sum(checkpoint.wire_size() for checkpoint in self.checkpoint_certificate)
            + sum(prepare.wire_size() for prepare in self.prepares)
            + certificate_size(self.certificate)
            + certificate_size(self.multi_certificate)
        )

    @property
    def key(self) -> tuple[str, int]:
        return (self.replica, self.v_to)


@dataclass(frozen=True)
class NewView(ProtocolMessage):
    """One (part of a) NEW-VIEW: the proof that ``v_to`` starts correctly.

    ``view_changes`` is the new-view certificate (q VIEW-CHANGEs for
    ``v_to``), ``acks`` supplements it with NEW-VIEW-ACKs when fewer than
    f+1 of the VIEW-CHANGEs share the base view; ``prepares`` re-propose
    every potentially committed assignment in view ``v_to``.
    """

    leader: str
    v_to: int
    base_view: int
    checkpoint_order: int
    checkpoint_certificate: tuple[Checkpoint, ...]
    view_changes: tuple[ViewChange, ...]
    acks: tuple["NewViewAck", ...]
    prepares: tuple[Prepare, ...]
    pillar: int = 0
    num_parts: int = 1

    def digestible(self):
        return (
            "new-view",
            self.leader,
            self.v_to,
            self.base_view,
            self.checkpoint_order,
            tuple(vc.digestible() for vc in self.view_changes),
            tuple(prepare.digestible() for prepare in self.prepares),
            self.pillar,
            self.num_parts,
        )

    def wire_size(self) -> int:
        return (
            MESSAGE_HEADER_SIZE
            + 24
            + sum(checkpoint.wire_size() for checkpoint in self.checkpoint_certificate)
            + sum(vc.wire_size() for vc in self.view_changes)
            + sum(ack.wire_size() for ack in self.acks)
            + sum(prepare.wire_size() for prepare in self.prepares)
        )


@dataclass(frozen=True)
class NewViewAck(ProtocolMessage):
    """Acknowledgment that ``view`` was properly established.

    Sent by a replica that installs a NEW-VIEW for a view it had already
    aborted; carries the PREPAREs learned from that NEW-VIEW so at least
    one correct replica propagates them.  Needs no counter certificate —
    omitting it is indistinguishable from a fault the protocol tolerates.
    """

    replica: str
    view: int
    prepares: tuple[Prepare, ...]
    pillar: int = 0
    num_parts: int = 1

    def digestible(self):
        return (
            "new-view-ack",
            self.replica,
            self.view,
            tuple(prepare.digestible() for prepare in self.prepares),
            self.pillar,
        )

    def wire_size(self) -> int:
        return (
            MESSAGE_HEADER_SIZE
            + 12
            + sum(prepare.wire_size() for prepare in self.prepares)
        )
