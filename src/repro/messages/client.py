"""Client-facing messages: REQUEST and REPLY."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.messages.base import MESSAGE_HEADER_SIZE, ProtocolMessage


@dataclass(frozen=True)
class Request(ProtocolMessage):
    """A client command.

    ``operation`` is the logical command executed by the service (kept
    small and digestible); ``payload_size`` models the benchmark payload
    the paper attaches to requests without materializing the bytes.
    ``request_id`` increases per client, making requests idempotent keys
    for the reply cache.
    """

    client_id: str
    request_id: int
    operation: Any
    payload_size: int = 0
    mac: bytes | None = None

    def digestible(self):
        return ("request", self.client_id, self.request_id, self.operation, self.payload_size)

    def wire_size(self) -> int:
        return MESSAGE_HEADER_SIZE + 16 + _operation_size(self.operation) + self.payload_size + (
            32 if self.mac is not None else 0
        )

    def wire_padding(self) -> int:
        return self.payload_size

    @property
    def key(self) -> tuple[str, int]:
        return (self.client_id, self.request_id)


@dataclass(frozen=True)
class Reply(ProtocolMessage):
    """A replica's answer to a request.

    Clients accept a result once f+1 replies from distinct replicas match
    on ``(request_id, result)``.  ``result_size`` models reply payloads.
    """

    replica_id: str
    client_id: str
    request_id: int
    view: int
    result: Any
    result_size: int = 0

    def digestible(self):
        return ("reply", self.replica_id, self.client_id, self.request_id, self.result)

    def wire_size(self) -> int:
        return MESSAGE_HEADER_SIZE + 24 + _operation_size(self.result) + self.result_size

    def wire_padding(self) -> int:
        return self.result_size

    @property
    def match_key(self) -> tuple[int, Any]:
        """What clients compare across replicas: the result for a request id."""
        return (self.request_id, _freeze(self.result))


@dataclass(frozen=True)
class RequestBurst(ProtocolMessage):
    """Several requests of one client, coalesced into one wire message.

    Closed-loop clients refill their window in bursts (a committed batch
    completes many requests at once); sending the refill as one message
    over the client's connection matches real client libraries and keeps
    the per-message framework cost amortized.
    """

    requests: tuple[Request, ...]

    def digestible(self):
        return ("request-burst", tuple(request.digestible() for request in self.requests))

    def wire_size(self) -> int:
        return MESSAGE_HEADER_SIZE + sum(request.wire_size() for request in self.requests)


def _operation_size(operation: Any) -> int:
    """Rough wire encoding size of a logical operation value."""
    if operation is None:
        return 1
    if isinstance(operation, (int, float)):
        return 8
    if isinstance(operation, bool):
        return 1
    if isinstance(operation, str):
        return len(operation.encode("utf-8"))
    if isinstance(operation, bytes):
        return len(operation)
    if isinstance(operation, (tuple, list)):
        return sum(_operation_size(item) for item in operation) + 4
    if isinstance(operation, dict):
        return sum(_operation_size(k) + _operation_size(v) for k, v in operation.items()) + 4
    return 16


def _freeze(value: Any):
    """Make a result hashable for quorum matching at clients."""
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    return value
