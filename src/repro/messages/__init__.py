"""Protocol message types.

Messages are immutable dataclasses.  Two aspects matter to the rest of
the system:

* ``wire_size()`` — the bytes the message would occupy on the network,
  feeding the bandwidth model (requests carry an explicit payload size so
  the 0 B / 128 B / 1 KiB / 4 KiB experiments of §6.3 work without
  materializing payloads);
* ``digestible()`` — the canonical content covered by digests, MACs and
  trusted-counter certificates, so equivocation attempts are detected by
  real cryptographic comparison.
"""

from repro.messages.base import MESSAGE_HEADER_SIZE, ProtocolMessage
from repro.messages.client import Reply, Request, RequestBurst
from repro.messages.ordering import Commit, InstanceFetch, Prepare
from repro.messages.checkpointing import Checkpoint
from repro.messages.viewchange import NewView, NewViewAck, ViewChange
from repro.messages.statetransfer import StateRequest, StateResponse

__all__ = [
    "MESSAGE_HEADER_SIZE",
    "ProtocolMessage",
    "Request",
    "RequestBurst",
    "Reply",
    "Prepare",
    "Commit",
    "InstanceFetch",
    "Checkpoint",
    "ViewChange",
    "NewView",
    "NewViewAck",
    "StateRequest",
    "StateResponse",
]
