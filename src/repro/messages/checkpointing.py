"""Checkpoint messages (paper §5.2.2).

Checkpoints are not subject to equivocation — all correct replicas reach
the same state after the same order number — so a CHECKPOINT only needs a
*trusted MAC* certificate (non-repudiable, but no counter advance) over
the state digest.  The digest covers the service snapshot **and** the
vector of last return values per client, which fallen-behind replicas
need to answer skipped requests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.messages.base import MESSAGE_HEADER_SIZE, ProtocolMessage, certificate_size
from repro.trinx.certificates import CounterCertificate


@dataclass(frozen=True)
class Checkpoint(ProtocolMessage):
    """Announcement that ``replica`` snapshotted its state at ``order``."""

    order: int
    replica: str
    state_digest: bytes
    certificate: CounterCertificate | None = None

    def digestible(self):
        return ("checkpoint", self.order, self.replica, self.state_digest)

    def agreement_key(self) -> tuple[int, bytes]:
        """What a quorum must match on: the order number and state digest."""
        return (self.order, self.state_digest)

    def wire_size(self) -> int:
        return MESSAGE_HEADER_SIZE + 8 + 32 + certificate_size(self.certificate)
