"""Replica-internal messages (Figure 4 of the paper).

These never cross the network: pillars, the execution stage, and the
client handler of one replica exchange them via asynchronous in-memory
message passing (the consensus-oriented parallelization scheme).  They
still flow through the simulated threads so their handling cost lands on
the right core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.messages.checkpointing import Checkpoint
from repro.messages.client import Request
from repro.messages.ordering import Prepare
from repro.messages.viewchange import NewView, NewViewAck, ViewChange


@dataclass(frozen=True)
class ExecRequest:
    """Pillar -> execution: instance ``order`` committed with ``batch``."""

    order: int
    view: int
    batch: tuple[Request, ...]


@dataclass(frozen=True)
class CkReached:
    """Execution -> responsible pillar: state snapshot at ``order`` taken."""

    order: int
    state_digest: bytes


@dataclass(frozen=True)
class CkStable:
    """Responsible pillar -> all pillars and execution: checkpoint stable."""

    order: int
    certificate: tuple[Checkpoint, ...]


@dataclass(frozen=True)
class OrderRequest:
    """Client handler -> pillar: propose these verified client requests."""

    requests: tuple[Request, ...]


@dataclass(frozen=True)
class FillGap:
    """Execution -> pillar: the global sequence stalls at ``order``; if we
    are its proposer and have not proposed it yet, propose (a no-op)."""

    order: int


@dataclass(frozen=True)
class Executed:
    """Execution -> client handler: requests done (clears follower timers)."""

    keys: tuple[tuple[str, int], ...]


@dataclass(frozen=True)
class RequestVc:
    """Any stage -> view-change coordinator: progress is suspect.

    ``resend_only`` marks nudges that must never *start* a view change —
    they only ask for a re-multicast of an in-flight VIEW-CHANGE (e.g.
    when ordering traffic shows the pending view established elsewhere).
    """

    reason: str
    suspected_view: int
    resend_only: bool = False


@dataclass(frozen=True)
class PrepareVc:
    """Coordinator -> pillars: collect state for aborting into ``v_to``."""

    v_to: int


@dataclass(frozen=True)
class UnitVc:
    """Pillar -> coordinator: this pillar's window contents for the abort."""

    pillar: int
    v_to: int
    checkpoint_order: int
    prepares: tuple[Prepare, ...]


@dataclass(frozen=True)
class VcReady:
    """Coordinator -> pillars: create and multicast your VIEW-CHANGE part."""

    v_from: int
    v_to: int
    checkpoint_order: int
    checkpoint_certificate: tuple[Checkpoint, ...]
    prepares_by_pillar: tuple[tuple[Prepare, ...], ...]


@dataclass(frozen=True)
class ForwardVc:
    """Pillar -> coordinator: verified external VIEW-CHANGE part received."""

    part: ViewChange


@dataclass(frozen=True)
class ForwardNv:
    """Pillar -> coordinator: verified external NEW-VIEW part received."""

    part: NewView


@dataclass(frozen=True)
class ForwardAck:
    """Pillar -> coordinator: external NEW-VIEW-ACK part received."""

    part: NewViewAck


@dataclass(frozen=True)
class NvReady:
    """Coordinator -> leader pillars: issue your NEW-VIEW part.

    ``prepares_by_pillar[i]`` holds the (gap-filled) re-proposals pillar i
    must certify with fresh independent certificates in the new view.
    """

    v_to: int
    base_view: int
    checkpoint_order: int
    checkpoint_certificate: tuple[Checkpoint, ...]
    view_changes: tuple[ViewChange, ...]
    acks: tuple[NewViewAck, ...]
    prepares_by_pillar: tuple[tuple[Prepare, ...], ...]


@dataclass(frozen=True)
class NvStable:
    """Coordinator -> pillars + execution: view ``v_to`` is stable.

    Pillars adopt the window position and acknowledge their share of the
    re-proposed prepares; the execution stage state-transfers if the
    checkpoint is ahead of what it has executed.
    """

    v_to: int
    checkpoint_order: int
    checkpoint_certificate: tuple[Checkpoint, ...]
    prepares_by_pillar: tuple[tuple[Prepare, ...], ...]


@dataclass(frozen=True)
class AckReady:
    """Coordinator -> pillars: send a NEW-VIEW-ACK part for ``view``."""

    view: int
    prepares_by_pillar: tuple[tuple[Prepare, ...], ...]


@dataclass(frozen=True)
class ResendVc:
    """Coordinator -> pillars: re-multicast your cached VIEW-CHANGE part."""

    v_to: int


@dataclass(frozen=True)
class ResendNv:
    """Coordinator -> pillars: re-send your cached NEW-VIEW part to a peer."""

    v_to: int
    target: str


@dataclass(frozen=True)
class ReplyJob:
    """Execution -> replier thread: MAC and transmit these replies.

    One job per executed batch; the replies inside go to distinct clients
    (separate transmissions), but the hand-off cost is paid once.
    """

    replies: tuple[Any, ...]  # repro.messages.client.Reply


@dataclass(frozen=True)
class ReReply:
    """Client handler -> execution: re-send the cached reply for a retry."""

    request: Request


@dataclass(frozen=True)
class ViewInstalled:
    """Coordinator -> client handler: the replica entered a stable view.

    ``covered_keys`` are the request keys re-proposed by the NEW-VIEW; a
    handler that just became the proposer must not order them again.
    """

    view: int
    covered_keys: tuple[tuple[str, int], ...] = ()


@dataclass(frozen=True)
class RequestState:
    """Pillar -> coordinator: we fell behind; fetch state from ``source``."""

    checkpoint_order: int
    source: str


@dataclass(frozen=True)
class StateInstall:
    """Coordinator -> execution: adopt this checkpoint state.

    The execution stage recomputes the state digest after restoring and
    rolls back if it does not match ``expected_digest`` (the digest the
    quorum certificate vouches for), so a lying state-transfer peer cannot
    corrupt the replica.
    """

    checkpoint_order: int
    snapshot: Any
    reply_vector: tuple[tuple[str, int, Any], ...]
    expected_digest: bytes | None = None


@dataclass(frozen=True)
class StateInstalled:
    """Execution -> coordinator: outcome of a StateInstall."""

    checkpoint_order: int
    success: bool

