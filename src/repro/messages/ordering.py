"""Ordering messages of Hybster's two-phase protocol (paper §5.2.1).

The leader of view ``v`` proposes a batch of requests for order number
``o`` in a PREPARE certified with an *independent* counter certificate
``tau(leader, O, [v|o], -)``; every follower acknowledges with a COMMIT
carrying its own independent certificate over the same flattened value.
The PREPARE doubles as the leader's acknowledgment — no dedicated leader
COMMIT exists.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.messages.base import MESSAGE_HEADER_SIZE, ProtocolMessage, certificate_size
from repro.messages.client import Request
from repro.trinx.certificates import CounterCertificate


@dataclass(frozen=True)
class Prepare(ProtocolMessage):
    """The proposer's message binding ``batch`` to instance ``(view, order)``.

    ``reproposal`` marks PREPAREs issued inside a NEW-VIEW: they are always
    certified by the new view's primary (with the primary's own lane
    counter), even for order numbers whose lane belongs to another replica
    under a rotating-leader configuration.
    """

    view: int
    order: int
    batch: tuple[Request, ...]
    leader: str
    certificate: CounterCertificate | None = None
    reproposal: bool = False
    # Root over the ordered per-request leaf digests, as certified by the
    # proposer's TrInX instance (see repro.trinx.trinx.batch_root).
    # Verifiers recompute it from the batch they received, so the field is
    # a commitment, not a trusted input.
    batch_digest: bytes | None = None

    def digestible(self):
        return (
            "prepare",
            self.view,
            self.order,
            self.leader,
            tuple(request.digestible() for request in self.batch),
            self.reproposal,
        )

    def certified_digestible(self):
        """The fixed-size header the enclave certifies alongside the batch
        root — everything that binds the batch to its slot except the
        requests themselves."""
        return ("prepare-header", self.view, self.order, self.leader, self.reproposal)

    def proposal_digestible(self):
        """What COMMITs agree on: the request assignment, not the sender."""
        return ("proposal", self.view, self.order, tuple(r.digestible() for r in self.batch))

    def wire_size(self) -> int:
        return (
            MESSAGE_HEADER_SIZE
            + 16
            + sum(request.wire_size() for request in self.batch)
            + certificate_size(self.certificate)
            + (32 if self.batch_digest is not None else 0)
        )

    @property
    def is_noop(self) -> bool:
        """Empty instances fill gaps left by parallel ordering / view changes."""
        return len(self.batch) == 0


@dataclass(frozen=True)
class Commit(ProtocolMessage):
    """A follower's acknowledgment of the leader's proposal.

    ``proposal_digest`` is the digest of the acknowledged PREPARE's
    proposal, so two COMMITs for the same instance match exactly when they
    acknowledge the same assignment.
    """

    view: int
    order: int
    replica: str
    proposal_digest: bytes
    certificate: CounterCertificate | None = None

    def digestible(self):
        return ("commit", self.view, self.order, self.replica, self.proposal_digest)

    def wire_size(self) -> int:
        return MESSAGE_HEADER_SIZE + 16 + 32 + certificate_size(self.certificate)


@dataclass(frozen=True)
class InstanceFetch(ProtocolMessage):
    """Ask peers to retransmit their ordering messages for ``order``.

    Sent when the execution stage detects a gap: the proposer answers with
    its PREPARE, followers with their COMMITs.  Needs no certificate — a
    forged fetch only triggers retransmission of messages that are
    self-certifying anyway.
    """

    order: int
    view: int

    def digestible(self):
        return ("instance-fetch", self.order, self.view)

    def wire_size(self) -> int:
        return MESSAGE_HEADER_SIZE + 12
