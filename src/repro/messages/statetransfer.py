"""State-transfer messages.

A fallen-behind replica fetches the service state of the newest stable
checkpoint from a peer.  Correctness of the received snapshot is checked
against the digest in the checkpoint quorum certificate, so the peer need
not be trusted.  The snapshot includes the reply vector (last result per
client) because skipped requests are never executed locally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.messages.base import MESSAGE_HEADER_SIZE, ProtocolMessage
from repro.messages.checkpointing import Checkpoint


@dataclass(frozen=True)
class StateRequest(ProtocolMessage):
    """Ask a peer for the state at (or after) ``min_order``."""

    replica: str
    min_order: int

    def digestible(self):
        return ("state-request", self.replica, self.min_order)

    def wire_size(self) -> int:
        return MESSAGE_HEADER_SIZE + 8


@dataclass(frozen=True)
class StateResponse(ProtocolMessage):
    """A stable checkpoint's certificate plus the matching snapshot."""

    replica: str
    checkpoint_order: int
    checkpoint_certificate: tuple[Checkpoint, ...]
    snapshot: Any
    snapshot_size: int
    view: int

    def digestible(self):
        return ("state-response", self.replica, self.checkpoint_order, self.view)

    def wire_size(self) -> int:
        return (
            MESSAGE_HEADER_SIZE
            + 16
            + sum(checkpoint.wire_size() for checkpoint in self.checkpoint_certificate)
            + self.snapshot_size
        )
