"""The TrInX trusted-counter instance.

One :class:`TrInX` object corresponds to one enclave: in HybsterS a
replica has a single instance; in HybsterX every pillar gets its own.
The API follows §5.1 of the paper:

* ``create_continuing(tc, tv', m)`` — requires ``tv' >= tv``; the MAC
  covers the previous value ``tv``, then the counter advances to ``tv'``.
  With ``tv' == tv`` this degenerates into a *trusted MAC* (several
  certificates may share the value, bound to different messages).
* ``create_independent(tc, tv', m)`` — requires ``tv' > tv`` strictly, so
  at most one valid certificate exists per counter value; the previous
  value is not part of the MAC.
* multi-counter variants amortize one enclave call over many counters.
* ``verify*`` — any instance holding the group secret can verify any
  certificate; verification never mutates counters.

Faulty replicas in the tests attack *through* this API (choosing counter
values, skipping views); the enclave itself is trusted and only fails by
crashing, which is exactly the hybrid fault model.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Any, Sequence

from repro.crypto.digests import canonical_bytes
from repro.errors import CounterRegressionError, UnknownCounterError
from repro.trinx.certificates import CounterCertificate, MultiCounterCertificate
from repro.trinx.enclave import EnclavePlatform, SealedState

_CONTINUING_TAG = "trinx-continuing"
_INDEPENDENT_TAG = "trinx-independent"
_MULTI_TAG = "trinx-multi"
_BATCH_TAG = "trinx-batch"

# Accounting for batched certification: the untrusted side hands the
# enclave the proposal header plus one 32-byte digest per request, so the
# enclave hashes ``header + 32 * n`` bytes instead of the whole batch.
BATCH_HEADER_HINT = 32
BATCH_LEAF_SIZE = 32


def batch_size_hint(num_leaves: int) -> int:
    """Bytes the enclave hashes for a batched certificate."""
    return BATCH_HEADER_HINT + BATCH_LEAF_SIZE * num_leaves


def batch_root(leaf_digests: Sequence[bytes]) -> bytes:
    """Order-sensitive root over per-request leaf digests.

    A flat hash chain rather than a Merkle tree: batches are small (tens
    of requests) and verifiers always hold the whole batch, so membership
    proofs are never needed — only the all-or-nothing binding.  The leaf
    count is mixed in so a batch cannot be extended or truncated.
    """
    hasher = hashlib.sha256(b"trinx-batch-root")
    hasher.update(len(leaf_digests).to_bytes(4, "big"))
    for leaf in leaf_digests:
        hasher.update(leaf)
    return hasher.digest()


class TrInX:
    """A single TrInX enclave instance with ``num_counters`` counters."""

    def __init__(
        self,
        platform: EnclavePlatform,
        instance_id: str,
        group_secret: bytes,
        num_counters: int = 4,
    ):
        if num_counters < 1:
            raise UnknownCounterError("a TrInX instance needs at least one counter")
        self.platform = platform
        self.instance_id = instance_id
        self._group_secret = group_secret
        self._counters = [0] * num_counters
        self.certificates_issued = 0

    # ------------------------------------------------------------------
    # Introspection (untrusted view)
    # ------------------------------------------------------------------
    @property
    def num_counters(self) -> int:
        return len(self._counters)

    def current_value(self, counter: int) -> int:
        self._check_counter(counter)
        return self._counters[counter]

    def _check_counter(self, counter: int) -> None:
        if not 0 <= counter < len(self._counters):
            raise UnknownCounterError(
                f"counter {counter} out of range [0, {len(self._counters)}) on {self.instance_id!r}"
            )

    # ------------------------------------------------------------------
    # MAC core (conceptually inside the enclave)
    # ------------------------------------------------------------------
    def _mac(self, fields: tuple) -> bytes:
        return hmac.new(self._group_secret, canonical_bytes(fields), hashlib.sha256).digest()

    @staticmethod
    def _message_digest(message: Any) -> bytes:
        return hashlib.sha256(canonical_bytes(message)).digest()

    # ------------------------------------------------------------------
    # Certificate creation
    # ------------------------------------------------------------------
    def create_continuing(
        self, counter: int, new_value: int, message: Any, size_hint: int = 32
    ) -> CounterCertificate:
        """Issue ``tau(self, tc, tv', tv)``; requires ``tv' >= tv``."""
        self._check_counter(counter)
        current = self._counters[counter]
        if new_value < current:
            raise CounterRegressionError(
                f"continuing certificate needs new_value >= {current}, got {new_value}"
            )
        mac = self._mac(
            (_CONTINUING_TAG, self.instance_id, counter, new_value, current, self._message_digest(message))
        )
        self._counters[counter] = new_value
        self.certificates_issued += 1
        self.platform.account_call(size_hint)
        return CounterCertificate(self.instance_id, counter, new_value, current, mac)

    def create_independent(
        self, counter: int, new_value: int, message: Any, size_hint: int = 32
    ) -> CounterCertificate:
        """Issue ``tau(self, tc, tv', -)``; requires strictly ``tv' > tv``."""
        self._check_counter(counter)
        current = self._counters[counter]
        if new_value <= current:
            raise CounterRegressionError(
                f"independent certificate needs new_value > {current}, got {new_value}"
            )
        mac = self._mac(
            (_INDEPENDENT_TAG, self.instance_id, counter, new_value, self._message_digest(message))
        )
        self._counters[counter] = new_value
        self.certificates_issued += 1
        self.platform.account_call(size_hint)
        return CounterCertificate(self.instance_id, counter, new_value, None, mac)

    def create_independent_batch(
        self,
        counter: int,
        new_value: int,
        header: Any,
        leaf_digests: Sequence[bytes],
        size_hint: int | None = None,
    ) -> CounterCertificate:
        """One independent certificate over a whole request batch.

        TrInc-lineage batching: the untrusted side digests each request
        (cheap, vectorized, outside the enclave) and passes the proposal
        header plus the ordered leaf digests; the enclave binds the
        counter transition to the header digest and the *root* over the
        leaves.  Tampering with any member request, reordering the batch,
        or splicing a request from another certified batch changes the
        root and voids the certificate, yet the enclave only ever hashes
        ``header + 32 * n`` bytes.
        """
        self._check_counter(counter)
        current = self._counters[counter]
        if new_value <= current:
            raise CounterRegressionError(
                f"independent certificate needs new_value > {current}, got {new_value}"
            )
        root = batch_root(leaf_digests)
        mac = self._mac(
            (_BATCH_TAG, self.instance_id, counter, new_value, self._message_digest(header), root)
        )
        self._counters[counter] = new_value
        self.certificates_issued += 1
        self.platform.account_call(
            size_hint if size_hint is not None else batch_size_hint(len(leaf_digests))
        )
        return CounterCertificate(self.instance_id, counter, new_value, None, mac)

    def create_trusted_mac(self, counter: int, message: Any, size_hint: int = 32) -> CounterCertificate:
        """Non-repudiable MAC: a continuing certificate with ``tv' == tv``."""
        self._check_counter(counter)
        return self.create_continuing(counter, self._counters[counter], message, size_hint=size_hint)

    def create_multi_continuing(
        self, new_values: dict[int, int], message: Any, size_hint: int = 32
    ) -> MultiCounterCertificate:
        """One MAC attesting a continuing transition on several counters."""
        entries = []
        for counter in sorted(new_values):
            self._check_counter(counter)
            new_value = new_values[counter]
            current = self._counters[counter]
            if new_value < current:
                raise CounterRegressionError(
                    f"counter {counter}: continuing needs new_value >= {current}, got {new_value}"
                )
            entries.append((counter, new_value, current))
        mac = self._mac(
            (_MULTI_TAG, self.instance_id, tuple(entries), self._message_digest(message))
        )
        for counter, new_value, _previous in entries:
            self._counters[counter] = new_value
        self.certificates_issued += 1
        self.platform.account_call(size_hint)
        return MultiCounterCertificate(self.instance_id, tuple(entries), mac)

    # ------------------------------------------------------------------
    # Verification (any instance, any issuer, counters untouched)
    # ------------------------------------------------------------------
    def verify(self, certificate: CounterCertificate, message: Any, size_hint: int = 32) -> bool:
        """Recompute the MAC under the group secret; True iff it matches."""
        self.platform.account_call(size_hint)
        digest = self._message_digest(message)
        if certificate.previous_value is None:
            expected = self._mac(
                (_INDEPENDENT_TAG, certificate.issuer, certificate.counter, certificate.new_value, digest)
            )
        else:
            expected = self._mac(
                (
                    _CONTINUING_TAG,
                    certificate.issuer,
                    certificate.counter,
                    certificate.new_value,
                    certificate.previous_value,
                    digest,
                )
            )
        return hmac.compare_digest(expected, certificate.mac)

    def verify_batch(
        self,
        certificate: CounterCertificate,
        header: Any,
        leaf_digests: Sequence[bytes],
        size_hint: int | None = None,
    ) -> bool:
        """Verify a batched certificate against recomputed leaf digests.

        The verifier recomputes each request's leaf digest from the batch
        it actually received, so a certificate only verifies when *every*
        member is byte-identical and in the certified order.
        """
        self.platform.account_call(
            size_hint if size_hint is not None else batch_size_hint(len(leaf_digests))
        )
        expected = self._mac(
            (
                _BATCH_TAG,
                certificate.issuer,
                certificate.counter,
                certificate.new_value,
                self._message_digest(header),
                batch_root(leaf_digests),
            )
        )
        return hmac.compare_digest(expected, certificate.mac)

    def verify_multi(self, certificate: MultiCounterCertificate, message: Any, size_hint: int = 32) -> bool:
        self.platform.account_call(size_hint)
        expected = self._mac(
            (_MULTI_TAG, certificate.issuer, certificate.entries, self._message_digest(message))
        )
        return hmac.compare_digest(expected, certificate.mac)

    # ------------------------------------------------------------------
    # Sealing (restart / replay-protection model)
    # ------------------------------------------------------------------
    def seal(self) -> SealedState:
        """Seal the current counter state for a later restart."""
        return self.platform.seal(self.instance_id, tuple(self._counters), self._group_secret)

    @classmethod
    def launch(cls, platform: EnclavePlatform, state: SealedState) -> "TrInX":
        """Restart an instance from sealed state; stale state is refused."""
        platform.check_unseal(state)
        instance = cls(platform, state.enclave_id, state.group_secret, num_counters=len(state.counters))
        instance._counters = list(state.counters)
        return instance
