"""TrInX — the SGX-based trusted counter subsystem (paper §5.1).

TrInX tailors TrInc for Hybster: a small enclave holding a set of
monotonic counters and a group-wide secret key, able to issue four kinds
of certificates over outgoing messages:

* **continuing** counter certificates ``tau(tss, tc, tv', tv)`` — include
  the previous counter value, forcing a replica to account for every value
  in between (the view-change protocol's anchor);
* **independent** counter certificates ``tau(tss, tc, tv', -)`` — strictly
  increasing, hence at most one valid certificate per counter value (the
  equivocation-prevention mechanism of the ordering protocol);
* **multi-counter** certificates — one MAC attesting several counters;
* **trusted MACs** — continuing certificates with ``tv' == tv``: cheap
  non-repudiable replacements for digital signatures.

The enclave is simulated in software: unforgeability is real (HMAC-SHA256
under a sealed group secret), monotonicity is enforced, rollback of sealed
state is refused, and every call is charged the calibrated SGX cost
(mode switch + in-enclave TCrypto hash + counter update, ≈ 4.15 µs for
32-byte messages ≈ the paper's 240 k certifications/s per instance).
"""

from repro.trinx.certificates import CounterCertificate, MultiCounterCertificate
from repro.trinx.enclave import EnclavePlatform, SealedState
from repro.trinx.trinx import TrInX
from repro.trinx.multi import MultiTrInX

__all__ = [
    "CounterCertificate",
    "MultiCounterCertificate",
    "EnclavePlatform",
    "SealedState",
    "TrInX",
    "MultiTrInX",
]
