"""Multi-TrInX: several TrInX instances hosted in a *single* enclave.

The paper evaluates this variant in §6.1: instead of one enclave per
thread, one trusted execution environment hosts all counter instances and
is entered by every thread.  Up to three cores (six hardware threads) it
performs comparably to independent instances, but at four cores it falls
back — entering the same enclave from many threads incurs synchronization
overhead at the SDK/processor level even when counters sit on distinct
cache lines.

We model that finding directly: each call pays an extra contention cost
that grows quadratically once the number of threads sharing the enclave
exceeds :data:`CONTENTION_KNEE` hardware threads.  The knee and slope are
calibrated so the Figure-5a curves cross exactly where the paper's do
(comparable through 6 threads, below TrInX at 8).
"""

from __future__ import annotations

from repro.trinx.enclave import EnclavePlatform
from repro.trinx.trinx import TrInX

CONTENTION_KNEE = 6  # hardware threads sharing the enclave before contention bites
CONTENTION_SLOPE_NS = 300  # per (threads - knee)^2, added to every call


class MultiTrInX:
    """A shared enclave hosting one TrInX sub-instance per pillar/thread.

    ``sharing_threads`` is the number of hardware threads that will enter
    the enclave concurrently; the contention surcharge is derived from it
    at construction time (the deployment knows its thread layout up
    front, just like the prototype pins its threads at start-up).
    """

    def __init__(
        self,
        platform: EnclavePlatform,
        enclave_id: str,
        group_secret: bytes,
        num_instances: int,
        counters_per_instance: int = 4,
        sharing_threads: int | None = None,
    ):
        self.platform = platform
        self.enclave_id = enclave_id
        threads = sharing_threads if sharing_threads is not None else num_instances
        over = max(0, threads - CONTENTION_KNEE)
        self.contention_ns = CONTENTION_SLOPE_NS * over * over
        self._instances = [
            _SharedEnclaveInstance(self, f"{enclave_id}/{i}", group_secret, counters_per_instance)
            for i in range(num_instances)
        ]

    def instance(self, index: int) -> TrInX:
        return self._instances[index]

    @property
    def instances(self) -> list[TrInX]:
        return list(self._instances)


class _SharedEnclaveInstance(TrInX):
    """A TrInX instance whose enclave calls pay the shared-enclave surcharge."""

    def __init__(self, host: MultiTrInX, instance_id: str, group_secret: bytes, num_counters: int):
        super().__init__(host.platform, instance_id, group_secret, num_counters)
        self._host = host
        # Route accounting through a wrapper that adds contention cost.
        self.platform = _ContendedPlatformView(host.platform, host)


class _ContendedPlatformView:
    """Platform facade adding the shared-enclave contention surcharge."""

    def __init__(self, platform: EnclavePlatform, host: MultiTrInX):
        self._platform = platform
        self._host = host

    def account_call(self, message_size: int, extra_ns: int = 0) -> None:
        self._platform.account_call(message_size, extra_ns=extra_ns + self._host.contention_ns)

    def seal(self, enclave_id, counters, group_secret):
        return self._platform.seal(enclave_id, counters, group_secret)

    def check_unseal(self, state):
        return self._platform.check_unseal(state)

    @property
    def calls(self) -> int:
        return self._platform.calls
