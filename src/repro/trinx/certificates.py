"""Certificate datatypes issued by TrInX instances.

Certificates are plain values: they travel inside protocol messages and
are verified by *any* TrInX instance holding the group secret.  The MAC
binds exactly the fields the paper lists — issuing instance id, counter
id, new value, previous value (continuing only), and the message itself —
so tests can exercise forgery and substitution attacks field by field.
"""

from __future__ import annotations

from dataclasses import dataclass

CONTINUING = "continuing"
INDEPENDENT = "independent"

MAC_SIZE = 32
CERT_HEADER_SIZE = 24  # issuer id, counter id, values (wire encoding estimate)


@dataclass(frozen=True)
class CounterCertificate:
    """A certificate over one trusted counter.

    ``previous_value`` is the counter value before this certification for
    continuing certificates, and ``None`` for independent certificates
    (which promise only that ``new_value`` was fresh and strictly higher
    than everything certified before on that counter).
    """

    issuer: str
    counter: int
    new_value: int
    previous_value: int | None
    mac: bytes

    @property
    def kind(self) -> str:
        return INDEPENDENT if self.previous_value is None else CONTINUING

    @property
    def is_trusted_mac(self) -> bool:
        """Trusted MACs are continuing certificates that left the counter alone."""
        return self.previous_value is not None and self.previous_value == self.new_value

    def wire_size(self) -> int:
        return CERT_HEADER_SIZE + MAC_SIZE


@dataclass(frozen=True)
class MultiCounterCertificate:
    """One MAC attesting the state transition of several counters.

    ``entries`` maps counter id to ``(new_value, previous_value)`` with
    ``previous_value`` None for independent entries.  Used by pillars to
    prove the state of all their counters with a single enclave call.
    """

    issuer: str
    entries: tuple[tuple[int, int, int | None], ...]
    mac: bytes

    def wire_size(self) -> int:
        return CERT_HEADER_SIZE + MAC_SIZE + 16 * len(self.entries)

    def value_of(self, counter: int) -> int | None:
        for counter_id, new_value, _previous in self.entries:
            if counter_id == counter:
                return new_value
        return None
