"""Software model of the trusted execution environment.

An :class:`EnclavePlatform` stands in for the SGX-capable CPU of one
machine.  It launches enclaves, seals their state, and — like the paper
assumes of the execution platform — prevents undetected *replay attacks*
in which an adversary restarts an enclave from a stale copy of its sealed
state to roll trusted counters back:

* sealed state carries a monotonic version number,
* the platform remembers the newest version sealed per enclave identity,
* launching from anything older raises :class:`ReplayProtectionError`.

The platform also owns the cost accounting for crossing into the trusted
execution environment.  Every enclave call charges the SGX mode switch
plus the in-enclave TCrypto hash to the simulated CPU via the ``charge``
callable (usually ``Simulator.charge``); pure-logic tests pass ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.crypto.costs import COUNTER_UPDATE_NS, JNI_CROSSING_NS, SGX_SWITCH_NS, TCRYPTO
from repro.errors import ReplayProtectionError, SealedKeyMismatchError


@dataclass(frozen=True)
class SealedState:
    """Counter state sealed to the platform, as SGX sealing would produce.

    The payload is only readable by enclaves of the same identity on the
    same platform; we model that by keeping it opaque to protocol code
    (nothing outside this module inspects ``counters``).
    """

    enclave_id: str
    version: int
    counters: tuple[int, ...]
    group_secret: bytes


class EnclavePlatform:
    """Launch point and replay guard for the enclaves of one machine.

    ``charge`` receives nanosecond costs for every enclave call; the
    optional ``via_jni`` flag adds the Java-to-native crossing the paper's
    prototype pays (its replicas are written in Java, TrInX in C/C++).
    """

    def __init__(self, charge: Callable[[int], None] | None = None, via_jni: bool = False):
        self.charge = charge
        self.via_jni = via_jni
        self._latest_versions: dict[str, int] = {}
        self.calls = 0

    # ------------------------------------------------------------------
    # Cost accounting
    # ------------------------------------------------------------------
    def enter_call_cost_ns(self, message_size: int) -> int:
        """Cost of one certification/verification call into the enclave."""
        cost = SGX_SWITCH_NS + TCRYPTO.op_ns(message_size) + COUNTER_UPDATE_NS
        if self.via_jni:
            cost += JNI_CROSSING_NS
        return cost

    def account_call(self, message_size: int, extra_ns: int = 0) -> None:
        """Charge one enclave call against the simulated CPU."""
        self.calls += 1
        if self.charge is not None:
            self.charge(self.enter_call_cost_ns(message_size) + extra_ns)

    # ------------------------------------------------------------------
    # Sealing and replay protection
    # ------------------------------------------------------------------
    def seal(self, enclave_id: str, counters: tuple[int, ...], group_secret: bytes) -> SealedState:
        """Produce sealed state for ``enclave_id`` and advance its version."""
        version = self._latest_versions.get(enclave_id, 0) + 1
        self._latest_versions[enclave_id] = version
        return SealedState(enclave_id, version, counters, group_secret)

    def check_unseal(self, state: SealedState) -> None:
        """Refuse to launch from sealed state that is not the newest.

        This is the monotonic-version check the paper assumes the platform
        performs to prevent resetting a trusted subsystem.
        """
        latest = self._latest_versions.get(state.enclave_id)
        if latest is None:
            # first launch on this platform: adopt the version
            self._latest_versions[state.enclave_id] = state.version
            return
        if state.version < latest:
            raise ReplayProtectionError(
                f"stale sealed state for {state.enclave_id!r}: "
                f"version {state.version} < latest {latest}"
            )
        self._latest_versions[state.enclave_id] = state.version


@dataclass
class GroupConfiguration:
    """Out-of-band provisioning a trusted administrator performs once.

    All TrInX instances of a replica group share the same secret; the
    administrator also fixes how many counters each instance provides.
    Instance ids are public knowledge (part of the group configuration).
    """

    group_secret: bytes
    counters_per_instance: int = 4
    instance_ids: list[str] = field(default_factory=list)

    def validate_secret(self, secret: bytes) -> None:
        if secret != self.group_secret:
            raise SealedKeyMismatchError("instance provisioned with a different group secret")
