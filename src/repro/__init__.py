"""repro — a reproduction of "Hybrids on Steroids: SGX-Based High
Performance BFT" (Behl, Distler, Kapitza; EuroSys 2017).

The package implements the Hybster replication protocol, its TrInX
trusted counter subsystem, the paper's baselines, and the complete
evaluation harness, all running on a deterministic discrete-event
simulation of the paper's testbed.  Start with:

* :mod:`repro.core` — the Hybster protocol (HybsterS/HybsterX),
* :mod:`repro.trinx` — the trusted subsystem,
* :mod:`repro.runtime` — one-call benchmark deployments,
* :mod:`repro.experiments` — regenerate any figure of the paper.

See README.md for a quickstart and DESIGN.md for the architecture.
"""

__version__ = "0.1.0"

from repro.core.config import ReplicaGroupConfig
from repro.core.replica import HybsterReplica, build_group
from repro.trinx.trinx import TrInX
from repro.trinx.enclave import EnclavePlatform

__all__ = [
    "__version__",
    "ReplicaGroupConfig",
    "HybsterReplica",
    "build_group",
    "TrInX",
    "EnclavePlatform",
]
