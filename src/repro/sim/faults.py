"""Fault injection for the simulated network and replicas.

The paper's system model is partially synchronous: messages may be delayed
or lost for arbitrary (but finite) periods.  These filters create exactly
those conditions deterministically:

* :class:`LossRate` — drop a random fraction of messages (seeded RNG).
* :class:`Partition` — isolate a set of nodes during a time window.
* :class:`TargetedDrop` — drop messages matching a predicate (used to build
  the Figure-3 scenario, e.g. "R2 receives no ordering messages").
* :class:`ExtraDelay` — add constant or random latency between node pairs.
* :class:`FaultPlan` — compose several filters.

Crash faults of whole replicas are modelled by partitioning them away
forever; Byzantine behaviour is modelled in protocol code (see
``repro.core`` test doubles), not in the network.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.sim.network import DELIVER, FilterDecision
from repro.sim.rand import DeterministicRandom


class LossRate:
    """Drop each message independently with probability ``rate``."""

    def __init__(self, rate: float, seed: int = 0, pairs: set[tuple[str, str]] | None = None):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.pairs = pairs
        self._rng = DeterministicRandom(seed)

    def decide(self, src: str, dst: str, message: Any, size: int, now: int) -> FilterDecision:
        if self.pairs is not None and (src, dst) not in self.pairs:
            return DELIVER
        if self._rng.random() < self.rate:
            return FilterDecision(drop=True)
        return DELIVER


class Partition:
    """Cut all traffic to and from ``nodes`` during [start_ns, end_ns)."""

    def __init__(self, nodes: Iterable[str], start_ns: int = 0, end_ns: int | None = None):
        self.nodes = set(nodes)
        self.start_ns = start_ns
        self.end_ns = end_ns

    def active(self, now: int) -> bool:
        if now < self.start_ns:
            return False
        return self.end_ns is None or now < self.end_ns

    def decide(self, src: str, dst: str, message: Any, size: int, now: int) -> FilterDecision:
        if self.active(now) and (src in self.nodes) != (dst in self.nodes):
            return FilterDecision(drop=True)
        return DELIVER


class TargetedDrop:
    """Drop messages for which ``predicate(src, dst, message)`` is true."""

    def __init__(self, predicate: Callable[[str, str, Any], bool]):
        self.predicate = predicate
        self.dropped = 0

    def decide(self, src: str, dst: str, message: Any, size: int, now: int) -> FilterDecision:
        if self.predicate(src, dst, message):
            self.dropped += 1
            return FilterDecision(drop=True)
        return DELIVER


class ExtraDelay:
    """Add latency between node pairs: constant plus optional jitter."""

    def __init__(
        self,
        delay_ns: int,
        jitter_ns: int = 0,
        seed: int = 0,
        pairs: set[tuple[str, str]] | None = None,
    ):
        if delay_ns < 0 or jitter_ns < 0:
            raise ValueError("delays must be non-negative")
        self.delay_ns = delay_ns
        self.jitter_ns = jitter_ns
        self.pairs = pairs
        self._rng = DeterministicRandom(seed)

    def decide(self, src: str, dst: str, message: Any, size: int, now: int) -> FilterDecision:
        if self.pairs is not None and (src, dst) not in self.pairs:
            return DELIVER
        extra = self.delay_ns
        if self.jitter_ns:
            extra += self._rng.randint(0, self.jitter_ns)
        return FilterDecision(extra_delay_ns=extra)


class FaultPlan:
    """Compose filters: first drop wins, delays accumulate."""

    def __init__(self, filters: Iterable[Any] = ()):
        self.filters = list(filters)

    def add(self, message_filter: Any) -> None:
        self.filters.append(message_filter)

    def decide(self, src: str, dst: str, message: Any, size: int, now: int) -> FilterDecision:
        total_delay = 0
        for message_filter in self.filters:
            decision = message_filter.decide(src, dst, message, size, now)
            if decision.drop:
                return decision
            total_delay += decision.extra_delay_ns
        if total_delay:
            return FilterDecision(extra_delay_ns=total_delay)
        return DELIVER
