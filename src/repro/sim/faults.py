"""Fault injection for simulated runs — now a thin façade over
:mod:`repro.chaos`.

The filter implementations were lifted into the transport-agnostic
:mod:`repro.chaos` package so the *same* objects plug into both the
discrete-event :class:`~repro.sim.network.Network` and the live TCP
transport (:class:`~repro.net.transport.TcpTransport`).  This module
re-exports them so existing imports keep working.

Available filters (see :mod:`repro.chaos.filters` for details):

* :class:`LossRate` — drop a random fraction of messages (seeded RNG).
* :class:`Partition` — isolate a set of nodes during a time window.
* :class:`TargetedDrop` — drop messages matching a predicate (used to
  build the Figure-3 scenario, e.g. "R2 receives no ordering messages").
* :class:`ExtraDelay` — add constant or random latency between node pairs.
* :class:`Reorder` — randomly delay a fraction of messages so they
  overtake later ones.
* :class:`CrashWindows` — crash a whole node for bounded windows and let
  it *recover* afterwards (crash faults are no longer limited to
  permanent partitions).
* :class:`Equivocate` — tamper with PREPAREs towards selected peers, the
  equivocation attempt TrInX certificates must expose.
* :class:`FaultPlan` / :class:`ChaosPlan` — compose several filters.

Byzantine behaviour beyond message tampering is modelled in protocol code
(see :mod:`repro.byzantine`), not in the network.
"""

from __future__ import annotations

from repro.chaos.base import DELIVER, FilterDecision, MessageFilter
from repro.chaos.filters import (
    ChaosPlan,
    CrashWindows,
    Equivocate,
    ExtraDelay,
    FaultPlan,
    LossRate,
    Partition,
    Reorder,
    TargetedDrop,
)

__all__ = [
    "DELIVER",
    "FilterDecision",
    "MessageFilter",
    "ChaosPlan",
    "CrashWindows",
    "Equivocate",
    "ExtraDelay",
    "FaultPlan",
    "LossRate",
    "Partition",
    "Reorder",
    "TargetedDrop",
]
