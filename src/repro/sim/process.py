"""Actor-style stages: the unit of concurrency protocol code runs in.

A :class:`Stage` is a message handler bound to one simulated thread
(:class:`~repro.sim.resources.SimThread`).  Replica pillars, execution
stages, and clients are all stages.  Stages on the same machine share an
:class:`Endpoint`, which owns the machine's network identity and routes
incoming messages to the addressed stage.

Addressing: a stage is reached at ``(node, stage_name)``.  Sends between
stages of the same node bypass the network entirely — this is the
asynchronous in-memory message passing of the consensus-oriented
parallelization scheme — while remote sends go through whatever
:class:`~repro.net.base.Transport` the endpoint was built with: the
bandwidth/latency model of :mod:`repro.sim.network` in simulation, or
real TCP sockets (:mod:`repro.net.transport`) in live mode.  Stage code
is identical in both.

All outgoing communication initiated inside a handler is deferred until
the handler's CPU busy period ends, so no stage can emit a message before
it has "paid" for computing it.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import ConfigurationError, SimulationError
from repro.net.base import Transport
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.resources import SimThread
from repro.sim.tracing import NULL_TRACER, Tracer

Address = tuple[str, str]


class Envelope:
    """Internal wrapper carrying the source/destination stage names."""

    __slots__ = ("src", "dst_stage", "message")

    def __init__(self, src: Address, dst_stage: str, message: Any):
        self.src = src
        self.dst_stage = dst_stage
        self.message = message


class Endpoint:
    """A machine's network identity; dispatches envelopes to its stages.

    ``egress_bandwidth``/``ingress_bandwidth`` size the node's simulated
    NIC (gateway nodes front whole client populations and get fatter
    pipes than a single client machine); the live transport accepts and
    ignores them.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Transport,
        node: str,
        tracer: Tracer = NULL_TRACER,
        egress_bandwidth: int | None = None,
        ingress_bandwidth: int | None = None,
    ):
        self.sim = sim
        self.network = network
        self.node = node
        self.tracer = tracer
        self.stages: dict[str, "Stage"] = {}
        network.register(
            node,
            self._receive,
            egress_bandwidth=egress_bandwidth,
            ingress_bandwidth=ingress_bandwidth,
        )

    def add_stage(self, stage: "Stage") -> None:
        if stage.name in self.stages:
            raise ConfigurationError(f"stage {stage.name!r} already exists on node {self.node!r}")
        self.stages[stage.name] = stage

    def _receive(self, src_node: str, envelope: Envelope) -> None:
        stage = self.stages.get(envelope.dst_stage)
        if stage is None and "/" in envelope.dst_stage:
            # Session-suffix routing: a gateway's logical sessions are
            # addressed as "<stage>/<session>" (their client_id embeds the
            # suffix); the owning stage demultiplexes by client id.
            stage = self.stages.get(envelope.dst_stage.split("/", 1)[0])
        if stage is None:
            return  # late message for a stage that was never created; drop
        stage._enqueue(envelope.src, envelope.message)


class Stage:
    """Base class for protocol participants.

    Subclasses implement :meth:`on_message` and may use :meth:`send`,
    :meth:`set_timer`, and :meth:`trace`.  Construction wires the stage
    into its endpoint; the owner supplies the simulated thread the stage
    is pinned to (several stages may share one thread, e.g. a pillar and
    its timers).
    """

    def __init__(self, endpoint: Endpoint, thread: SimThread, name: str):
        self.endpoint = endpoint
        self.thread = thread
        self.name = name
        self.sim = endpoint.sim
        self.network = endpoint.network
        endpoint.add_stage(self)
        self._in_handler = False
        # CPU cost of emitting one message (serialization + socket write for
        # remote sends, queue hand-off for local ones); set by the runtime.
        # Small control messages (fixed-size acknowledgments) are cheaper:
        # real implementations coalesce their socket writes.
        self.send_cost_ns = 0
        self.control_send_cost_ns = 0
        self.control_size_threshold = 256
        self.local_send_cost_ns = 0

    # ------------------------------------------------------------------
    @property
    def address(self) -> Address:
        return (self.endpoint.node, self.name)

    @property
    def now(self) -> int:
        return self.sim.now

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def _enqueue(self, src: Address, message: Any) -> None:
        self.thread.submit(self._handle, (src, message))

    def _handle(self, item: tuple[Address, Any]) -> None:
        src, message = item
        self._in_handler = True
        try:
            self.on_message(src, message)
        finally:
            self._in_handler = False

    def on_message(self, src: Address, message: Any) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, dst: Address, message: Any, size: int | None = None) -> None:
        """Send ``message`` to a stage address, local or remote.

        Inside a handler the transmission is deferred to the end of the
        current CPU busy period; outside (bootstrap code) it happens now.
        """
        if self._in_handler:
            if dst[0] == self.endpoint.node:
                self.sim.charge(self.local_send_cost_ns)
            else:
                wire = size if size is not None else _wire_size(message)
                if wire < self.control_size_threshold:
                    self.sim.charge(self.control_send_cost_ns)
                else:
                    self.sim.charge(self.send_cost_ns)
            self.thread.after_busy(lambda: self._transmit(dst, message, size))
        else:
            self._transmit(dst, message, size)

    def _transmit(self, dst: Address, message: Any, size: int | None) -> None:
        dst_node, dst_stage = dst
        if dst_node == self.endpoint.node:
            stage = self.endpoint.stages.get(dst_stage)
            if stage is None:
                raise SimulationError(f"unknown local stage {dst_stage!r} on {dst_node!r}")
            stage._enqueue(self.address, message)
            return
        wire_size = size if size is not None else _wire_size(message)
        self.network.send(self.endpoint.node, dst_node, Envelope(self.address, dst_stage, message), wire_size)

    def broadcast(self, dsts: list[Address], message: Any, size: int | None = None) -> None:
        """Send separate copies of ``message`` to each address."""
        for dst in dsts:
            self.send(dst, message, size)

    # ------------------------------------------------------------------
    # Timers and tracing
    # ------------------------------------------------------------------
    def set_timer(self, delay_ns: int, callback: Callable[..., None], *args: Any) -> Event:
        """Run ``callback(*args)`` on this stage's thread after ``delay_ns``."""
        return self.sim.schedule(delay_ns, self._fire_timer, callback, args)

    def _fire_timer(self, callback: Callable[..., None], args: tuple[Any, ...]) -> None:
        self.thread.submit(self._run_timer, (callback, args))

    def _run_timer(self, item: tuple[Callable[..., None], tuple[Any, ...]]) -> None:
        callback, args = item
        self._in_handler = True
        try:
            callback(*args)
        finally:
            self._in_handler = False

    def cancel_timer(self, event: Event) -> None:
        self.sim.cancel(event)

    def trace(self, category: str, detail: Any = None) -> None:
        self.endpoint.tracer.emit(self.sim.now, f"{self.endpoint.node}/{self.name}", category, detail)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Stage {self.endpoint.node}/{self.name}>"


def _wire_size(message: Any) -> int:
    """Best-effort wire size: messages expose wire_size(); default 64 B."""
    wire_size = getattr(message, "wire_size", None)
    if callable(wire_size):
        return int(wire_size())
    return 64
