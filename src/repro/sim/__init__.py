"""Deterministic discrete-event simulation kernel.

This package is the substrate that replaces the paper's physical testbed
(six quad-core machines on switched gigabit Ethernet).  Protocol code runs
unmodified on top of it and exchanges real messages; only *time* is virtual:

* :mod:`repro.sim.kernel` — the event loop (integer-nanosecond clock).
* :mod:`repro.sim.resources` — CPU cores and hardware threads with FIFO
  service and hyper-threading slowdown.
* :mod:`repro.sim.network` — latency + per-NIC bandwidth network model.
* :mod:`repro.sim.faults` — message drop/delay/partition injection.
* :mod:`repro.sim.process` — actor-style stages bound to simulated threads.

Everything is deterministic given the seed passed to the fault injectors;
the kernel itself contains no randomness.
"""

from repro.sim.events import Event, EventQueue
from repro.sim.kernel import Simulator
from repro.sim.network import Network, NetworkInterface
from repro.sim.process import Stage
from repro.sim.resources import CostMeter, Machine, SimThread
from repro.sim.timeunits import MICROSECOND, MILLISECOND, NANOSECOND, SECOND, ns_to_seconds, seconds_to_ns

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "Network",
    "NetworkInterface",
    "Stage",
    "CostMeter",
    "Machine",
    "SimThread",
    "NANOSECOND",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "ns_to_seconds",
    "seconds_to_ns",
]
