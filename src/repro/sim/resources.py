"""CPU resource model: machines, cores, and simulated hardware threads.

The paper's testbed machines have an Intel i7-6700 — four cores at 3.4 GHz
with Hyper-Threading enabled.  We model a machine as a set of cores, each
exposing up to two *hardware threads*.  A software thread (pillar, client
stage, execution stage, ...) is pinned to one hardware thread.

Hyper-threading is modelled dynamically: a handler runs at full core
speed while the sibling hardware thread idles and at ``ht_efficiency``
of it while the sibling is busy (default 0.65, i.e. a fully loaded core
delivers 1.3 cores worth of work — matching the commonly measured
25-35 % SMT benefit and the paper's sub-linear thread scaling).

Each :class:`SimThread` is a non-preemptive FIFO server: handlers submitted
to it run to completion in submission order, occupying the thread for their
reported CPU cost divided by the thread speed.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator

DEFAULT_HT_EFFICIENCY = 0.65


class CostMeter:
    """Accumulates CPU cost reported by code running inside a handler."""

    __slots__ = ("total_ns",)

    def __init__(self) -> None:
        self.total_ns = 0

    def add(self, cost_ns: int) -> None:
        self.total_ns += cost_ns

    def reset(self) -> int:
        """Return the accumulated cost and reset the meter."""
        total = self.total_ns
        self.total_ns = 0
        return total


class SimThread:
    """A software thread pinned to one simulated hardware thread.

    Work arrives via :meth:`submit` as ``(handler, arg)`` pairs.  The
    handler runs logically at its start time; the CPU cost it reports via
    ``sim.charge`` (plus an optional fixed ``base_cost_ns`` per handler)
    determines how long the thread stays busy.  Actions the handler defers
    through :meth:`after_busy` (typically network sends) take effect at the
    moment the busy period ends, so downstream replicas never observe
    messages earlier than the sender could have produced them.

    Hyper-threading is dynamic: when the sibling hardware thread on the
    same core is busy at the start of a handler, the handler runs at
    ``ht_efficiency`` of full speed; when the sibling idles, the thread
    gets the whole core — matching how real SMT cores behave.
    """

    def __init__(self, sim: Simulator, name: str, speed: float = 1.0, base_cost_ns: int = 0):
        if speed <= 0:
            raise ConfigurationError(f"thread speed must be positive, got {speed}")
        self.sim = sim
        self.name = name
        self.speed = speed
        self.base_cost_ns = base_cost_ns
        self.sibling: "SimThread | None" = None
        self.sibling_penalty = 1.0  # speed multiplier while the sibling is busy
        self._mailbox: deque[tuple[Callable[[Any], None], Any]] = deque()
        self._busy = False
        self._meter = CostMeter()
        self._deferred: list[Callable[[], None]] = []
        self.busy_ns = 0
        self.handlers_run = 0

    # ------------------------------------------------------------------
    def submit(self, handler: Callable[[Any], None], arg: Any = None) -> None:
        """Enqueue a handler invocation on this thread."""
        self._mailbox.append((handler, arg))
        if not self._busy:
            self._busy = True
            self.sim.schedule(0, self._run_next)

    def after_busy(self, action: Callable[[], None]) -> None:
        """Defer ``action`` until the current handler's busy period ends.

        Must only be called from within a handler running on this thread.
        """
        self._deferred.append(action)

    @property
    def queue_length(self) -> int:
        """Number of handlers waiting (excluding the one running)."""
        return len(self._mailbox)

    @property
    def busy_now(self) -> bool:
        return self._busy

    def _current_speed(self) -> float:
        if self.sibling is not None and self.sibling._busy:
            return self.speed * self.sibling_penalty
        return self.speed

    def utilization(self, elapsed_ns: int) -> float:
        """Fraction of ``elapsed_ns`` this thread spent busy."""
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self.busy_ns / elapsed_ns)

    # ------------------------------------------------------------------
    def _run_next(self) -> None:
        if not self._mailbox:
            self._busy = False
            return
        handler, arg = self._mailbox.popleft()
        previous_meter = self.sim.active_meter
        self.sim.active_meter = self._meter
        self._deferred = []
        try:
            handler(arg)
        finally:
            self.sim.active_meter = previous_meter
        cost_ns = self._meter.reset() + self.base_cost_ns
        busy_ns = int(round(cost_ns / self._current_speed()))
        self.busy_ns += busy_ns
        self.handlers_run += 1
        deferred = self._deferred
        self._deferred = []
        self.sim.schedule(busy_ns, self._finish, deferred)

    def _finish(self, deferred: list[Callable[[], None]]) -> None:
        for action in deferred:
            action()
        self._run_next()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimThread {self.name} speed={self.speed:.2f} queued={len(self._mailbox)}>"


class Core:
    """A physical core exposing up to two hardware-thread slots."""

    def __init__(self, index: int, ht_enabled: bool = True):
        self.index = index
        self.ht_enabled = ht_enabled
        self.slots_used = 0

    @property
    def capacity(self) -> int:
        return 2 if self.ht_enabled else 1


class Machine:
    """A simulated host: cores plus a speed model for pinned threads.

    ``allocate_thread`` pins software threads to hardware-thread slots in
    a fill-cores-first order (one thread per core before doubling up),
    mirroring how the prototype pins its pillars.  Sibling relationships
    are fixed at allocation time; allocate all threads before running.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        cores: int = 4,
        ht_enabled: bool = True,
        ht_efficiency: float = DEFAULT_HT_EFFICIENCY,
    ):
        if cores < 1:
            raise ConfigurationError(f"machine needs at least one core, got {cores}")
        if not 0.5 <= ht_efficiency <= 1.0:
            raise ConfigurationError(f"ht_efficiency must be in [0.5, 1.0], got {ht_efficiency}")
        self.sim = sim
        self.name = name
        self.cores = [Core(i, ht_enabled) for i in range(cores)]
        self.ht_efficiency = ht_efficiency
        self.threads: list[SimThread] = []
        self._assignments: list[Core] = []

    @property
    def hardware_threads(self) -> int:
        return sum(core.capacity for core in self.cores)

    def allocate_thread(self, name: str, base_cost_ns: int = 0) -> SimThread:
        """Pin a new software thread to the least-loaded core."""
        core = min(self.cores, key=lambda c: (c.slots_used, c.index))
        if core.slots_used >= core.capacity:
            raise ConfigurationError(
                f"machine {self.name} is out of hardware threads "
                f"({self.hardware_threads} available, {len(self.threads)} allocated)"
            )
        core.slots_used += 1
        thread = SimThread(self.sim, f"{self.name}/{name}", speed=1.0, base_cost_ns=base_cost_ns)
        self.threads.append(thread)
        self._assignments.append(core)
        self._recompute_speeds()
        return thread

    def _recompute_speeds(self) -> None:
        by_core: dict[int, list[SimThread]] = {}
        for thread, core in zip(self.threads, self._assignments):
            by_core.setdefault(core.index, []).append(thread)
        for threads in by_core.values():
            if len(threads) == 1:
                threads[0].sibling = None
                threads[0].sibling_penalty = 1.0
            else:
                first, second = threads[0], threads[1]
                first.sibling, second.sibling = second, first
                first.sibling_penalty = self.ht_efficiency
                second.sibling_penalty = self.ht_efficiency

    def total_utilization(self, elapsed_ns: int) -> float:
        """Average busy fraction across all allocated threads."""
        if not self.threads:
            return 0.0
        return sum(t.utilization(elapsed_ns) for t in self.threads) / len(self.threads)
