"""Time units for the simulation kernel.

The simulator clock is an integer number of nanoseconds.  Integers keep the
event queue ordering exact and the simulation bit-for-bit deterministic;
floating-point seconds are only used at the measurement boundary (reports,
statistics) via :func:`ns_to_seconds`.
"""

from __future__ import annotations

NANOSECOND: int = 1
MICROSECOND: int = 1_000
MILLISECOND: int = 1_000_000
SECOND: int = 1_000_000_000


def seconds_to_ns(seconds: float) -> int:
    """Convert (possibly fractional) seconds to integer nanoseconds."""
    return int(round(seconds * SECOND))


def us_to_ns(micros: float) -> int:
    """Convert (possibly fractional) microseconds to integer nanoseconds."""
    return int(round(micros * MICROSECOND))


def ms_to_ns(millis: float) -> int:
    """Convert (possibly fractional) milliseconds to integer nanoseconds."""
    return int(round(millis * MILLISECOND))


def ns_to_seconds(nanos: int) -> float:
    """Convert integer nanoseconds to floating-point seconds."""
    return nanos / SECOND


def ns_to_us(nanos: int) -> float:
    """Convert integer nanoseconds to floating-point microseconds."""
    return nanos / MICROSECOND


def ns_to_ms(nanos: int) -> float:
    """Convert integer nanoseconds to floating-point milliseconds."""
    return nanos / MILLISECOND
