"""The discrete-event simulator kernel.

A :class:`Simulator` owns the virtual clock and the event queue.  All other
simulation objects (threads, NICs, timers) schedule callbacks through it.

The kernel also hosts the *active cost meter*: while a simulated thread runs
a protocol handler, crypto and trusted-subsystem objects report their CPU
cost through :meth:`Simulator.charge`, and the thread converts the total
into busy time.  Outside any handler (plain unit tests), charges are
silently dropped so protocol code can run without a simulator.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue


class Simulator:
    """Deterministic discrete-event loop with an integer-nanosecond clock."""

    def __init__(self) -> None:
        self.now: int = 0
        self._queue = EventQueue()
        self._running = False
        self.active_meter: "CostMeterProtocol | None" = None
        self.events_processed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` nanoseconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self._queue.push(self.now + delay, callback, args)

    def schedule_at(self, time: int, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute timestamp."""
        if time < self.now:
            raise SimulationError(f"cannot schedule into the past (t={time} < now={self.now})")
        return self._queue.push(time, callback, args)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        if not event.cancelled:
            event.cancel()
            self._queue.note_cancelled()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the next event.  Returns False if the queue was empty."""
        if len(self._queue) == 0:
            return False
        event = self._queue.pop()
        self.now = event.time
        self.events_processed += 1
        event.fire()
        return True

    def run(self, until: int | None = None, max_events: int | None = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have been processed.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fired earlier, so back-to-back ``run`` calls
        observe a continuous timeline.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        processed = 0
        try:
            while True:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                if max_events is not None and processed >= max_events:
                    break
                self.step()
                processed += 1
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Cost accounting
    # ------------------------------------------------------------------
    def charge(self, cost_ns: int) -> None:
        """Report CPU work performed by the currently running handler.

        The active :class:`~repro.sim.resources.CostMeter` (installed by the
        simulated thread that is executing the handler) accumulates the cost;
        if no meter is active the charge is dropped, which makes protocol
        logic usable in plain unit tests without a timing model.
        """
        if self.active_meter is not None:
            self.active_meter.add(cost_ns)


class CostMeterProtocol:
    """Structural interface for cost meters (see resources.CostMeter)."""

    def add(self, cost_ns: int) -> None:  # pragma: no cover - interface only
        raise NotImplementedError


class NullSimulator(Simulator):
    """A simulator whose clock never advances.

    Useful for exercising protocol logic in tests that do not care about
    timing: scheduled events can still be run manually via :meth:`step`.
    """
