"""Event queue for the discrete-event simulator.

Events are ordered by ``(time, sequence)`` where the sequence number is a
monotonically increasing insertion counter.  Ties in time are therefore
resolved in FIFO order, which keeps simulations deterministic without any
dependence on callback identity or hash ordering.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SimulationError


class Event:
    """A scheduled callback.

    Events are created through :meth:`repro.sim.kernel.Simulator.schedule`
    and may be cancelled via :meth:`cancel` before they fire.  Cancelled
    events stay in the heap but are skipped when popped.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: int, seq: int, callback: Callable[..., None], args: tuple[Any, ...]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback.  Called by the kernel only."""
        self.callback(*self.args)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} seq={self.seq}{state} {getattr(self.callback, '__qualname__', self.callback)}>"


class EventQueue:
    """A binary-heap priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(self, time: int, callback: Callable[..., None], args: tuple[Any, ...] = ()) -> Event:
        """Insert a new event and return its handle."""
        event = Event(time, self._seq, callback, args)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise SimulationError("pop() from an empty event queue")

    def peek_time(self) -> int | None:
        """Return the timestamp of the next live event, or None if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def note_cancelled(self) -> None:
        """Account for an externally cancelled event (keeps __len__ honest)."""
        self._live -= 1
