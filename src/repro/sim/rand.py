"""Seeded randomness for deterministic simulations.

Every stochastic element (loss rates, jitter, workload think times) draws
from its own :class:`DeterministicRandom` stream so that adding one source
of randomness never perturbs another — runs are reproducible bit-for-bit
given the experiment seed.
"""

from __future__ import annotations

import random
import zlib


def derive_seed(master: int, *parts: object) -> int:
    """Derive a stable sub-seed from a master seed and labelling parts.

    Unlike ``hash()``, the derivation is stable across interpreter runs
    even for strings (``PYTHONHASHSEED`` does not apply), so seeds plumbed
    through CLIs (``--seed``) reproduce chaos schedules bit-for-bit.
    """
    material = repr((master,) + parts).encode("utf-8")
    return zlib.crc32(material) & 0x7FFFFFFF


class DeterministicRandom:
    """A thin, explicitly seeded wrapper around :class:`random.Random`."""

    def __init__(self, seed: int):
        self.seed = seed
        self._rng = random.Random(seed)

    def random(self) -> float:
        return self._rng.random()

    def randint(self, low: int, high: int) -> int:
        return self._rng.randint(low, high)

    def choice(self, seq):
        return self._rng.choice(seq)

    def shuffle(self, seq) -> None:
        self._rng.shuffle(seq)

    def expovariate(self, rate: float) -> float:
        return self._rng.expovariate(rate)

    def fork(self, stream: int) -> "DeterministicRandom":
        """Derive an independent stream (stable across runs)."""
        return DeterministicRandom(hash((self.seed, stream)) & 0x7FFFFFFF)
