"""Network model: per-NIC bandwidth queues plus propagation latency.

The testbed in the paper connects each machine through 1 Gb/s switched
Ethernet (four NICs per machine).  We model a node's connectivity as one
:class:`NetworkInterface` with an aggregate egress and ingress bandwidth
and FIFO serialization: a message occupies the sender's egress for
``size / bandwidth`` seconds, travels for a constant propagation latency,
then occupies the receiver's ingress for the same transmission time.
The ingress queue is what makes all-to-all protocol phases (and reply
incast at clients) contend realistically.

Fault injection is layered on top: an optional :class:`MessageFilter`
(see :mod:`repro.chaos`) may drop, delay, or replace individual messages.
The decision types live in :mod:`repro.chaos.base` so the live TCP
transport applies the *same* filter objects; they are re-exported here
for backwards compatibility.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.chaos.base import DELIVER, FilterDecision, MessageFilter
from repro.errors import ConfigurationError, SimulationError
from repro.sim.kernel import Simulator

__all__ = [
    "DELIVER",
    "FilterDecision",
    "MessageFilter",
    "Network",
    "NetworkInterface",
    "GIGABIT_PER_SECOND",
    "DEFAULT_LAN_LATENCY_NS",
]

GIGABIT_PER_SECOND = 125_000_000  # bytes/s
DEFAULT_LAN_LATENCY_NS = 35_000  # one-way propagation + switching, 35 us


class NetworkInterface:
    """FIFO bandwidth queues for one node (aggregate over its NICs)."""

    def __init__(self, name: str, egress_bandwidth: int, ingress_bandwidth: int):
        if egress_bandwidth <= 0 or ingress_bandwidth <= 0:
            raise ConfigurationError("NIC bandwidth must be positive")
        self.name = name
        self.egress_bandwidth = egress_bandwidth
        self.ingress_bandwidth = ingress_bandwidth
        self.egress_available_at = 0
        self.ingress_available_at = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    def egress_tx_ns(self, size: int) -> int:
        return (size * 1_000_000_000) // self.egress_bandwidth

    def ingress_tx_ns(self, size: int) -> int:
        return (size * 1_000_000_000) // self.ingress_bandwidth


class Network:
    """Connects named nodes; delivers messages with latency and bandwidth.

    This is the simulated implementation of the
    :class:`~repro.net.base.Transport` interface; the asyncio TCP
    transport (:class:`~repro.net.transport.TcpTransport`) is the live
    one.  Stages and endpoints work with either.
    """

    def __init__(
        self,
        sim: Simulator,
        latency_ns: int = DEFAULT_LAN_LATENCY_NS,
        default_bandwidth: int = 4 * GIGABIT_PER_SECOND,
    ):
        self.sim = sim
        self.latency_ns = latency_ns
        self.default_bandwidth = default_bandwidth
        self._interfaces: dict[str, NetworkInterface] = {}
        self._receivers: dict[str, Callable[[str, Any], None]] = {}
        self._filters: list[MessageFilter] = []
        self.messages_sent = 0
        self.messages_dropped = 0
        self.messages_delayed = 0
        self.messages_injected = 0

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        receiver: Callable[[str, Any], None],
        egress_bandwidth: int | None = None,
        ingress_bandwidth: int | None = None,
    ) -> NetworkInterface:
        """Attach a node.  ``receiver(src, message)`` is called on delivery."""
        if name in self._interfaces:
            raise ConfigurationError(f"node {name!r} already registered")
        nic = NetworkInterface(
            name,
            egress_bandwidth or self.default_bandwidth,
            ingress_bandwidth or self.default_bandwidth,
        )
        self._interfaces[name] = nic
        self._receivers[name] = receiver
        return nic

    def interface(self, name: str) -> NetworkInterface:
        return self._interfaces[name]

    def add_filter(self, message_filter: MessageFilter) -> None:
        """Install a fault-injection filter (applied in installation order)."""
        self._filters.append(message_filter)

    def remove_filter(self, message_filter: MessageFilter) -> None:
        self._filters.remove(message_filter)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, message: Any, size: int) -> None:
        """Transmit ``message`` of ``size`` bytes from ``src`` to ``dst``."""
        if src not in self._interfaces:
            raise SimulationError(f"unknown sender {src!r}")
        if dst not in self._interfaces:
            raise SimulationError(f"unknown destination {dst!r}")
        self.messages_sent += 1
        extra_delay = 0
        for message_filter in self._filters:
            decision = message_filter.decide(src, dst, message, size, self.sim.now)
            if decision.drop:
                self.messages_dropped += 1
                return
            extra_delay += decision.extra_delay_ns
            if decision.replace is not None:
                message = decision.replace
                self.messages_injected += 1
        if extra_delay:
            self.messages_delayed += 1

        src_nic = self._interfaces[src]
        now = self.sim.now
        egress_start = max(now, src_nic.egress_available_at)
        tx_ns = src_nic.egress_tx_ns(size)
        src_nic.egress_available_at = egress_start + tx_ns
        src_nic.bytes_sent += size
        arrival = egress_start + tx_ns + self.latency_ns + extra_delay
        self.sim.schedule_at(arrival, self._arrive, src, dst, message, size)

    def multicast(self, src: str, dsts: list[str], message: Any, size: int) -> None:
        """Send separate copies to each destination (consumes egress per copy)."""
        for dst in dsts:
            self.send(src, dst, message, size)

    def _arrive(self, src: str, dst: str, message: Any, size: int) -> None:
        dst_nic = self._interfaces[dst]
        now = self.sim.now
        ingress_start = max(now, dst_nic.ingress_available_at)
        rx_ns = dst_nic.ingress_tx_ns(size)
        dst_nic.ingress_available_at = ingress_start + rx_ns
        dst_nic.bytes_received += size
        self.sim.schedule_at(ingress_start + rx_ns, self._deliver, src, dst, message)

    def _deliver(self, src: str, dst: str, message: Any) -> None:
        receiver = self._receivers.get(dst)
        if receiver is not None:
            receiver(src, message)
