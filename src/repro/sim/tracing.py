"""Structured event tracing for debugging and integration tests.

A :class:`Tracer` records ``(time, node, category, detail)`` tuples.
Protocol stages emit traces through their runtime context; tests assert on
recorded sequences (e.g. the exact Figure-3 view-change unfolding) and the
CLI can dump a readable timeline.  Tracing is off by default and costless
when disabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator


@dataclass(frozen=True)
class TraceRecord:
    time_ns: int
    node: str
    category: str
    detail: Any

    def __str__(self) -> str:
        return f"[{self.time_ns / 1e6:12.3f} ms] {self.node:<12} {self.category:<18} {self.detail}"


class Tracer:
    """Collects trace records; disabled tracers drop everything."""

    def __init__(self, enabled: bool = True, categories: set[str] | None = None):
        self.enabled = enabled
        self.categories = categories
        self.records: list[TraceRecord] = []

    def emit(self, time_ns: int, node: str, category: str, detail: Any = None) -> None:
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        self.records.append(TraceRecord(time_ns, node, category, detail))

    def select(self, category: str | None = None, node: str | None = None) -> Iterator[TraceRecord]:
        for record in self.records:
            if category is not None and record.category != category:
                continue
            if node is not None and record.node != node:
                continue
            yield record

    def clear(self) -> None:
        self.records.clear()

    def dump(self) -> str:
        return "\n".join(str(record) for record in self.records)


NULL_TRACER = Tracer(enabled=False)
