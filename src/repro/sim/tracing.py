"""Structured event tracing for debugging and integration tests.

A :class:`Tracer` records ``(time, node, category, detail)`` tuples.
Protocol stages emit traces through their runtime context; tests assert on
recorded sequences (e.g. the exact Figure-3 view-change unfolding) and the
CLI can dump a readable timeline.  Tracing is off by default and costless
when disabled.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterator


@dataclass(frozen=True)
class TraceRecord:
    time_ns: int
    node: str
    category: str
    detail: Any

    def __str__(self) -> str:
        return f"[{self.time_ns / 1e6:12.3f} ms] {self.node:<12} {self.category:<18} {self.detail}"


class Tracer:
    """Collects trace records; disabled tracers drop everything."""

    def __init__(self, enabled: bool = True, categories: set[str] | None = None):
        self.enabled = enabled
        self.categories = categories
        self.records: list[TraceRecord] = []

    def emit(self, time_ns: int, node: str, category: str, detail: Any = None) -> None:
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        self.records.append(TraceRecord(time_ns, node, category, detail))

    def select(self, category: str | None = None, node: str | None = None) -> Iterator[TraceRecord]:
        for record in self.records:
            if category is not None and record.category != category:
                continue
            if node is not None and record.node != node:
                continue
            yield record

    def clear(self) -> None:
        self.records.clear()

    def dump(self) -> str:
        return "\n".join(str(record) for record in self.records)

    # ------------------------------------------------------------------
    # JSONL export / import (live mode runs one tracer per OS process;
    # merging their exports reconstructs a cluster-wide timeline)
    # ------------------------------------------------------------------
    def write_jsonl(self, path: str) -> int:
        """Write one JSON object per record; returns the record count.

        Details that are not JSON-serializable are stringified — traces
        are diagnostics, not state, so lossy detail is acceptable.
        """
        with open(path, "w", encoding="utf-8") as fh:
            for record in self.records:
                fh.write(
                    json.dumps(
                        {
                            "time_ns": record.time_ns,
                            "node": record.node,
                            "category": record.category,
                            "detail": record.detail,
                        },
                        default=str,
                    )
                )
                fh.write("\n")
        return len(self.records)

    @classmethod
    def load_jsonl(cls, path: str) -> "Tracer":
        """Read a trace previously written with :meth:`write_jsonl`."""
        tracer = cls(enabled=True)
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                obj = json.loads(line)
                tracer.records.append(
                    TraceRecord(
                        int(obj["time_ns"]), obj["node"], obj["category"], obj.get("detail")
                    )
                )
        return tracer

    @classmethod
    def merge(cls, *tracers: "Tracer") -> "Tracer":
        """Combine traces from several processes, ordered by timestamp.

        Timestamps are per-process monotonic clocks, so cross-process
        ordering is approximate — good enough for timeline inspection.
        """
        merged = cls(enabled=True)
        for tracer in tracers:
            merged.records.extend(tracer.records)
        merged.records.sort(key=lambda r: (r.time_ns, r.node))
        return merged


NULL_TRACER = Tracer(enabled=False)
