"""The transport abstraction every protocol stage sends through.

Replicas, pillars, and clients never talk to sockets or to the simulator
directly: a :class:`~repro.sim.process.Stage` hands ``(src, dst, message,
size)`` to whatever transport its endpoint was built with.  Two
implementations exist:

* :class:`repro.sim.network.Network` — the discrete-event bandwidth and
  latency model (deterministic simulation);
* :class:`repro.net.transport.TcpTransport` — real asyncio TCP sockets
  with the frame codec of :mod:`repro.wire` (live mode).

The interface is structural (:class:`typing.Protocol`): the simulator
keeps zero knowledge of asyncio and the live transport keeps zero
knowledge of the event queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Protocol, runtime_checkable


@runtime_checkable
class Transport(Protocol):
    """What a node-to-node message carrier must provide.

    ``register`` attaches a named node; ``receiver(src_node, message)`` is
    invoked for every delivered message (the live transport reconstructs
    the same :class:`~repro.sim.process.Envelope` objects the simulated
    network carries by reference).  ``send`` transmits one message of an
    accounted ``size``; ``multicast`` sends an independent copy per
    destination, consuming sender-side resources for each.
    """

    def register(
        self,
        name: str,
        receiver: Callable[[str, Any], None],
        egress_bandwidth: int | None = None,
        ingress_bandwidth: int | None = None,
    ) -> Any:
        ...  # pragma: no cover - protocol

    def send(self, src: str, dst: str, message: Any, size: int) -> None:
        ...  # pragma: no cover - protocol

    def multicast(self, src: str, dsts: list[str], message: Any, size: int) -> None:
        ...  # pragma: no cover - protocol


@dataclass
class TransportStats:
    """Per-node traffic counters (live-mode analogue of a NIC's counters)."""

    name: str
    bytes_sent: int = 0
    bytes_received: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    messages_dropped: int = 0
    send_queue_drops: int = 0
    decode_errors: int = 0
    # chaos-injection outcomes (see repro.chaos): messages this node sent
    # that a fault filter dropped, delayed, or replaced with a tampered copy
    chaos_dropped: int = 0
    chaos_delayed: int = 0
    chaos_injected: int = 0
    peers: dict[str, Any] = field(default_factory=dict)
