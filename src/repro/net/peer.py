"""One outbound peer connection: bounded queue, reconnect, heartbeats.

Connections are *unidirectional*: the sender dials the receiver's listen
socket, introduces itself with a HELLO frame, and then streams envelope
frames.  The receiving side never writes.  This keeps connection
management trivial (no simultaneous-open dedup) and mirrors how the
prototype's per-peer sender threads work.

Liveness and flow control:

* **Backpressure** — outgoing frames pass through a bounded queue.  When
  the peer (or the network) cannot keep up, new frames are dropped and
  counted instead of growing memory without bound; BFT protocols are
  built to survive message loss (retransmission timers, client retries),
  so dropping is strictly better than stalling an entire replica.
* **Heartbeats** — an idle connection emits a PING frame every
  ``heartbeat_interval_s`` so dead peers are detected by write failure
  rather than by silence.
* **Reconnect** — on any connection error the sender backs off
  exponentially (``backoff_base_s`` doubling up to ``backoff_max_s``) and
  dials again; queued frames survive a reconnect.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.wire.framing import KIND_HELLO, KIND_PING, encode_frame, sender_tag


@dataclass(frozen=True)
class PeerConfig:
    """Tuning knobs for outbound connections.

    ``pool_size`` > 1 opens several parallel connections per (src, dst)
    pair and round-robins frames across them — a gateway node funneling
    thousands of sessions through one peer link uses the pool to dodge
    head-of-line blocking on a single TCP stream.  Frames may then be
    delivered out of order between pool members; the protocols tolerate
    reordering (it is one of the chaos-matrix faults), so the default of
    1 is only kept for strict FIFO per pair.
    """

    queue_capacity: int = 4096
    heartbeat_interval_s: float = 2.0
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    connect_timeout_s: float = 5.0
    pool_size: int = 1


@dataclass
class PeerStats:
    """Counters exposed per outbound connection."""

    frames_sent: int = 0
    bytes_sent: int = 0
    drops: int = 0
    reconnects: int = 0
    heartbeats: int = 0
    connected: bool = False


class PeerConnection:
    """Sender side of one ``src -> dst`` link."""

    def __init__(
        self,
        src: str,
        dst: str,
        resolve,  # Callable[[], tuple[str, int]] — late-bound address lookup
        config: PeerConfig = PeerConfig(),
    ):
        self.src = src
        self.dst = dst
        self._resolve = resolve
        self.config = config
        self._queue: asyncio.Queue[bytes] = asyncio.Queue(maxsize=config.queue_capacity)
        self._task: asyncio.Task | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._closed = False
        self.stats = PeerStats()

    # ------------------------------------------------------------------
    def enqueue(self, frame: bytes) -> bool:
        """Queue a frame for transmission; returns False if it was dropped."""
        if self._closed:
            return False
        self._ensure_running()
        try:
            self._queue.put_nowait(frame)
            return True
        except asyncio.QueueFull:
            self.stats.drops += 1
            return False

    def _ensure_running(self) -> None:
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name=f"peer:{self.src}->{self.dst}"
            )

    @property
    def queued(self) -> int:
        return self._queue.qsize()

    # ------------------------------------------------------------------
    async def _run(self) -> None:
        backoff = self.config.backoff_base_s
        hello = encode_frame(KIND_HELLO, 0, self.src.encode("utf-8"), sender=sender_tag(self.src))
        while not self._closed:
            writer: asyncio.StreamWriter | None = None
            try:
                host, port = self._resolve()
                _reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(host, port), self.config.connect_timeout_s
                )
                self._writer = writer
                writer.write(hello)
                await writer.drain()
                self.stats.connected = True
                backoff = self.config.backoff_base_s
                await self._drain_queue(writer)
            except asyncio.CancelledError:
                raise
            except (OSError, asyncio.TimeoutError, ConnectionError):
                self.stats.connected = False
                self.stats.reconnects += 1
                try:
                    await asyncio.sleep(backoff)
                except asyncio.CancelledError:
                    raise
                backoff = min(backoff * 2, self.config.backoff_max_s)
            finally:
                self.stats.connected = False
                self._writer = None
                if writer is not None:
                    writer.close()

    async def _drain_queue(self, writer: asyncio.StreamWriter) -> None:
        """Ship queued frames; emit a heartbeat when idle."""
        ping = encode_frame(KIND_PING, 0, b"", sender=sender_tag(self.src))
        while not self._closed:
            try:
                frame = await asyncio.wait_for(
                    self._queue.get(), timeout=self.config.heartbeat_interval_s
                )
            except asyncio.TimeoutError:
                self.stats.heartbeats += 1
                writer.write(ping)
                await writer.drain()
                continue
            # Opportunistically coalesce whatever else is queued into one
            # writev-style socket write — the live analogue of the
            # prototype's batched socket writes.
            frames = [frame]
            while True:
                try:
                    frames.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            writer.writelines(frames)
            self.stats.frames_sent += len(frames)
            self.stats.bytes_sent += sum(len(f) for f in frames)
            await writer.drain()

    # ------------------------------------------------------------------
    def kill(self) -> int:
        """Sever the current connection (fault injection); returns 1 if one
        was live.  The sender loop sees the failure and enters its normal
        reconnect backoff — queued frames survive."""
        writer = self._writer
        if writer is None:
            return 0
        self._writer = None
        writer.close()
        return 1

    async def close(self) -> None:
        self._closed = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except (asyncio.CancelledError, Exception):
                pass
            self._task = None
