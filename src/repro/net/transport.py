"""Asyncio TCP transport: real sockets behind the Transport interface.

One :class:`TcpTransport` serves every node hosted by the current process
(all of them in single-process live mode, exactly one in
process-per-replica mode).  Each local node gets its own listen socket;
each ``(local node, remote node)`` pair gets its own outbound
:class:`~repro.net.peer.PeerConnection`.  Messages always cross a real
socket — even between two nodes of the same process — so single-process
live runs exercise the same code paths as distributed ones.

The transport speaks :class:`~repro.sim.process.Envelope` on the inside
(the same object the simulated network moves by reference) and codec
frames on the outside.  ``Stage`` code is byte-for-byte identical in sim
and live mode; only the object handed to ``Endpoint`` differs.
"""

from __future__ import annotations

import asyncio
import logging
import time
from typing import Any, Callable

from repro.chaos.base import MessageFilter
from repro.errors import TransportError, WireError
from repro.net.base import TransportStats
from repro.net.peer import PeerConfig, PeerConnection
from repro.wire.codec import WireCodec, default_codec
from repro.wire.framing import KIND_ENVELOPE, KIND_HELLO, KIND_PING, FrameReader

log = logging.getLogger("repro.net")


class TcpTransport:
    """A live, frame-encoded implementation of :class:`repro.net.base.Transport`.

    ``directory`` maps node names to ``(host, port)`` listen addresses.  A
    port of 0 lets the OS choose; the directory is updated with the real
    port once the server binds, and outbound connections resolve addresses
    lazily (with reconnect backoff), so start-up order between processes
    does not matter.
    """

    def __init__(
        self,
        directory: dict[str, tuple[str, int]],
        codec: WireCodec | None = None,
        peer_config: PeerConfig = PeerConfig(),
        clock: Callable[[], int] | None = None,
    ):
        self.directory = dict(directory)
        self.codec = codec or default_codec()
        self.peer_config = peer_config
        self._receivers: dict[str, Callable[[str, Any], None]] = {}
        self._servers: dict[str, asyncio.base_events.Server] = {}
        self._inbound: dict[asyncio.StreamWriter, str] = {}
        # One pool of `peer_config.pool_size` connections per (src, dst)
        # pair; frames round-robin across the pool members.
        self._peers: dict[tuple[str, str], list[PeerConnection]] = {}
        self._pool_rr: dict[tuple[str, str], int] = {}
        self._stats: dict[str, TransportStats] = {}
        self._started = False
        self.messages_sent = 0
        self.messages_dropped = 0
        # Chaos injection (see repro.chaos): filters applied on the send
        # path, under `clock` (nanoseconds; defaults to monotonic time
        # since transport construction, matching LiveKernel.now).
        self._filters: list[MessageFilter] = []
        self._t0 = time.monotonic()
        self._clock = clock or (lambda: int((time.monotonic() - self._t0) * 1e9))
        self.chaos_dropped = 0
        self.chaos_delayed = 0
        self.chaos_injected = 0

    # ------------------------------------------------------------------
    # Transport interface (what Endpoint/Stage call)
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        receiver: Callable[[str, Any], None],
        egress_bandwidth: int | None = None,
        ingress_bandwidth: int | None = None,
    ) -> TransportStats:
        """Attach a local node.  Bandwidth arguments are accepted for
        interface parity with the simulated network and ignored — live
        throughput is whatever the kernel delivers."""
        if name in self._receivers:
            raise TransportError(f"node {name!r} already registered")
        if name not in self.directory:
            raise TransportError(f"node {name!r} has no directory entry")
        self._receivers[name] = receiver
        self._stats[name] = TransportStats(name)
        return self._stats[name]

    def send(self, src: str, dst: str, message: Any, size: int) -> None:
        """Encode and ship one stage envelope from ``src`` to ``dst``."""
        self._send_one(src, dst, message, size, None)

    def _send_one(
        self, src: str, dst: str, message: Any, size: int, frame_cache: dict | None
    ) -> None:
        if src not in self._receivers:
            raise TransportError(f"unknown sender {src!r}")
        if dst not in self.directory:
            raise TransportError(f"unknown destination {dst!r}")
        stats = self._stats[src]
        self.messages_sent += 1

        original = message
        extra_delay_ns = 0
        if self._filters:
            now = self._clock()
            for message_filter in self._filters:
                decision = message_filter.decide(src, dst, message, size, now)
                if decision.drop:
                    self.messages_dropped += 1
                    self.chaos_dropped += 1
                    stats.chaos_dropped += 1
                    return
                extra_delay_ns += decision.extra_delay_ns
                if decision.replace is not None:
                    message = decision.replace
                    self.chaos_injected += 1
                    stats.chaos_injected += 1

        # A multicast encodes the (unreplaced) envelope once and reuses the
        # frame for every destination; a chaos replacement falls back to a
        # per-destination encode since its bytes differ.
        if frame_cache is not None and message is original and "frame" in frame_cache:
            frame = frame_cache["frame"]
        else:
            # `message` is a repro.sim.process.Envelope; unwrap its addressing.
            src_addr = getattr(message, "src", (src, "?"))
            dst_stage = getattr(message, "dst_stage", "?")
            payload = getattr(message, "message", message)
            frame = self.codec.encode_envelope(src_addr[0], src_addr[1], dst_stage, payload)
            if frame_cache is not None and message is original:
                frame_cache["frame"] = frame

        if extra_delay_ns > 0:
            self.chaos_delayed += 1
            stats.chaos_delayed += 1
            asyncio.get_running_loop().call_later(
                extra_delay_ns / 1e9, self._enqueue_frame, src, dst, frame
            )
            return
        self._enqueue_frame(src, dst, frame)

    def _enqueue_frame(self, src: str, dst: str, frame: bytes) -> None:
        stats = self._stats[src]
        if not self._started:
            # a chaos-delayed frame outlived the transport: count and drop
            self.messages_dropped += 1
            stats.send_queue_drops += 1
            return
        peer = self._peer_for(src, dst)
        if peer.enqueue(frame):
            stats.messages_sent += 1
            stats.bytes_sent += len(frame)
        else:
            self.messages_dropped += 1
            stats.send_queue_drops += 1

    def multicast(self, src: str, dsts: list[str], message: Any, size: int) -> None:
        frame_cache: dict = {}
        for dst in dsts:
            self._send_one(src, dst, message, size, frame_cache)

    def interface(self, name: str) -> TransportStats:
        """Traffic counters for a node (parity with ``Network.interface``)."""
        return self._stats[name]

    # ------------------------------------------------------------------
    # Chaos injection (parity with ``Network.add_filter``)
    # ------------------------------------------------------------------
    def add_filter(self, message_filter: MessageFilter) -> None:
        """Install a fault-injection filter on the send path.

        Filters run in installation order before a message is framed, so
        a replacement decision changes what gets encoded onto the wire.
        """
        self._filters.append(message_filter)

    def remove_filter(self, message_filter: MessageFilter) -> None:
        self._filters.remove(message_filter)

    def drop_connections(self, node: str) -> int:
        """Forcibly close every connection touching ``node``; returns count.

        Models a connection-level failure (middlebox reset, process
        crash): outbound peers enter reconnect backoff, inbound streams
        see EOF.  Queued frames survive and are flushed after reconnect.
        """
        killed = 0
        for (src, dst), pool in self._peers.items():
            if node in (src, dst):
                killed += sum(peer.kill() for peer in pool)
        for writer, owner in list(self._inbound.items()):
            if owner == node:
                writer.close()
                self._inbound.pop(writer, None)
                killed += 1
        return killed

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind one listen socket per registered local node."""
        if self._started:
            return
        for name in self._receivers:
            host, port = self.directory[name]
            server = await asyncio.start_server(
                lambda reader, writer, node=name: self._serve_connection(node, reader, writer),
                host,
                port,
            )
            actual = server.sockets[0].getsockname()
            self.directory[name] = (host, actual[1])
            self._servers[name] = server
        self._started = True

    async def stop(self) -> None:
        for pool in self._peers.values():
            for peer in pool:
                await peer.close()
        self._peers.clear()
        for server in self._servers.values():
            server.close()
            await server.wait_closed()
        self._servers.clear()
        # Server.close() only stops accepting; drop accepted connections too
        # so a stopped node really goes silent (senders see the reset and
        # enter reconnect backoff).
        for writer in list(self._inbound):
            writer.close()
        self._inbound.clear()
        self._started = False

    async def __aenter__(self) -> "TcpTransport":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _peer_for(self, src: str, dst: str) -> PeerConnection:
        key = (src, dst)
        pool = self._peers.get(key)
        if pool is None:
            pool = [
                PeerConnection(
                    src, dst, resolve=lambda d=dst: self.directory[d], config=self.peer_config
                )
                for _ in range(self.peer_config.pool_size)
            ]
            self._peers[key] = pool
        if len(pool) == 1:
            return pool[0]
        slot = self._pool_rr.get(key, 0)
        self._pool_rr[key] = (slot + 1) % len(pool)
        return pool[slot]

    async def _serve_connection(
        self, node: str, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Read frames from one inbound connection and dispatch envelopes."""
        from repro.sim.process import Envelope  # local import: avoid cycle at module load

        stats = self._stats.get(node)
        frame_reader = FrameReader()
        peer_name = "?"
        self._inbound[writer] = node
        try:
            while True:
                data = await reader.read(64 * 1024)
                if not data:
                    return
                try:
                    frames = frame_reader.feed(data)
                except WireError as exc:
                    if stats is not None:
                        stats.decode_errors += 1
                    log.warning("%s: dropping connection from %s: %s", node, peer_name, exc)
                    return
                for frame in frames:
                    if frame.kind == KIND_HELLO:
                        peer_name = frame.body.decode("utf-8", "replace")
                        continue
                    if frame.kind == KIND_PING:
                        continue
                    if frame.kind != KIND_ENVELOPE:
                        continue
                    try:
                        src_node, src_stage, dst_stage, payload = self.codec.decode_envelope(frame)
                    except WireError as exc:
                        if stats is not None:
                            stats.decode_errors += 1
                        log.warning("%s: undecodable envelope from %s: %s", node, peer_name, exc)
                        continue
                    if stats is not None:
                        stats.messages_received += 1
                        stats.bytes_received += frame.size
                    receiver = self._receivers.get(node)
                    if receiver is not None:
                        receiver(src_node, Envelope((src_node, src_stage), dst_stage, payload))
        except (asyncio.CancelledError, ConnectionError, OSError):
            pass
        finally:
            self._inbound.pop(writer, None)
            writer.close()
