"""Asyncio TCP transport: real sockets behind the Transport interface.

One :class:`TcpTransport` serves every node hosted by the current process
(all of them in single-process live mode, exactly one in
process-per-replica mode).  Each local node gets its own listen socket;
each ``(local node, remote node)`` pair gets its own outbound
:class:`~repro.net.peer.PeerConnection`.  Messages always cross a real
socket — even between two nodes of the same process — so single-process
live runs exercise the same code paths as distributed ones.

The transport speaks :class:`~repro.sim.process.Envelope` on the inside
(the same object the simulated network moves by reference) and codec
frames on the outside.  ``Stage`` code is byte-for-byte identical in sim
and live mode; only the object handed to ``Endpoint`` differs.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Any, Callable

from repro.errors import TransportError, WireError
from repro.net.base import TransportStats
from repro.net.peer import PeerConfig, PeerConnection
from repro.wire.codec import WireCodec, default_codec
from repro.wire.framing import KIND_ENVELOPE, KIND_HELLO, KIND_PING, FrameReader

log = logging.getLogger("repro.net")


class TcpTransport:
    """A live, frame-encoded implementation of :class:`repro.net.base.Transport`.

    ``directory`` maps node names to ``(host, port)`` listen addresses.  A
    port of 0 lets the OS choose; the directory is updated with the real
    port once the server binds, and outbound connections resolve addresses
    lazily (with reconnect backoff), so start-up order between processes
    does not matter.
    """

    def __init__(
        self,
        directory: dict[str, tuple[str, int]],
        codec: WireCodec | None = None,
        peer_config: PeerConfig = PeerConfig(),
    ):
        self.directory = dict(directory)
        self.codec = codec or default_codec()
        self.peer_config = peer_config
        self._receivers: dict[str, Callable[[str, Any], None]] = {}
        self._servers: dict[str, asyncio.base_events.Server] = {}
        self._inbound: set[asyncio.StreamWriter] = set()
        self._peers: dict[tuple[str, str], PeerConnection] = {}
        self._stats: dict[str, TransportStats] = {}
        self._started = False
        self.messages_sent = 0
        self.messages_dropped = 0

    # ------------------------------------------------------------------
    # Transport interface (what Endpoint/Stage call)
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        receiver: Callable[[str, Any], None],
        egress_bandwidth: int | None = None,
        ingress_bandwidth: int | None = None,
    ) -> TransportStats:
        """Attach a local node.  Bandwidth arguments are accepted for
        interface parity with the simulated network and ignored — live
        throughput is whatever the kernel delivers."""
        if name in self._receivers:
            raise TransportError(f"node {name!r} already registered")
        if name not in self.directory:
            raise TransportError(f"node {name!r} has no directory entry")
        self._receivers[name] = receiver
        self._stats[name] = TransportStats(name)
        return self._stats[name]

    def send(self, src: str, dst: str, message: Any, size: int) -> None:
        """Encode and ship one stage envelope from ``src`` to ``dst``."""
        if src not in self._receivers:
            raise TransportError(f"unknown sender {src!r}")
        if dst not in self.directory:
            raise TransportError(f"unknown destination {dst!r}")
        # `message` is a repro.sim.process.Envelope; unwrap its addressing.
        src_addr = getattr(message, "src", (src, "?"))
        dst_stage = getattr(message, "dst_stage", "?")
        payload = getattr(message, "message", message)
        frame = self.codec.encode_envelope(src_addr[0], src_addr[1], dst_stage, payload)

        stats = self._stats[src]
        self.messages_sent += 1
        peer = self._peer_for(src, dst)
        if peer.enqueue(frame):
            stats.messages_sent += 1
            stats.bytes_sent += len(frame)
        else:
            self.messages_dropped += 1
            stats.send_queue_drops += 1

    def multicast(self, src: str, dsts: list[str], message: Any, size: int) -> None:
        for dst in dsts:
            self.send(src, dst, message, size)

    def interface(self, name: str) -> TransportStats:
        """Traffic counters for a node (parity with ``Network.interface``)."""
        return self._stats[name]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind one listen socket per registered local node."""
        if self._started:
            return
        for name in self._receivers:
            host, port = self.directory[name]
            server = await asyncio.start_server(
                lambda reader, writer, node=name: self._serve_connection(node, reader, writer),
                host,
                port,
            )
            actual = server.sockets[0].getsockname()
            self.directory[name] = (host, actual[1])
            self._servers[name] = server
        self._started = True

    async def stop(self) -> None:
        for peer in self._peers.values():
            await peer.close()
        self._peers.clear()
        for server in self._servers.values():
            server.close()
            await server.wait_closed()
        self._servers.clear()
        # Server.close() only stops accepting; drop accepted connections too
        # so a stopped node really goes silent (senders see the reset and
        # enter reconnect backoff).
        for writer in list(self._inbound):
            writer.close()
        self._inbound.clear()
        self._started = False

    async def __aenter__(self) -> "TcpTransport":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _peer_for(self, src: str, dst: str) -> PeerConnection:
        key = (src, dst)
        peer = self._peers.get(key)
        if peer is None:
            peer = PeerConnection(
                src, dst, resolve=lambda d=dst: self.directory[d], config=self.peer_config
            )
            self._peers[key] = peer
        return peer

    async def _serve_connection(
        self, node: str, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Read frames from one inbound connection and dispatch envelopes."""
        from repro.sim.process import Envelope  # local import: avoid cycle at module load

        stats = self._stats.get(node)
        frame_reader = FrameReader()
        peer_name = "?"
        self._inbound.add(writer)
        try:
            while True:
                data = await reader.read(64 * 1024)
                if not data:
                    return
                try:
                    frames = frame_reader.feed(data)
                except WireError as exc:
                    if stats is not None:
                        stats.decode_errors += 1
                    log.warning("%s: dropping connection from %s: %s", node, peer_name, exc)
                    return
                for frame in frames:
                    if frame.kind == KIND_HELLO:
                        peer_name = frame.body.decode("utf-8", "replace")
                        continue
                    if frame.kind == KIND_PING:
                        continue
                    if frame.kind != KIND_ENVELOPE:
                        continue
                    try:
                        src_node, src_stage, dst_stage, payload = self.codec.decode_envelope(frame)
                    except WireError as exc:
                        if stats is not None:
                            stats.decode_errors += 1
                        log.warning("%s: undecodable envelope from %s: %s", node, peer_name, exc)
                        continue
                    if stats is not None:
                        stats.messages_received += 1
                        stats.bytes_received += frame.size
                    receiver = self._receivers.get(node)
                    if receiver is not None:
                        receiver(src_node, Envelope((src_node, src_stage), dst_stage, payload))
        except (asyncio.CancelledError, ConnectionError, OSError):
            pass
        finally:
            self._inbound.discard(writer)
            writer.close()
