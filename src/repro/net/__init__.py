"""Live networking: the transport abstraction and its asyncio implementation.

:mod:`repro.net.base` defines the :class:`~repro.net.base.Transport`
protocol that every stage sends through — the simulated
:class:`~repro.sim.network.Network` and the real
:class:`~repro.net.transport.TcpTransport` are interchangeable behind it.
"""

from repro.net.base import Transport, TransportStats
from repro.net.peer import PeerConnection, PeerConfig
from repro.net.transport import TcpTransport

__all__ = ["Transport", "TransportStats", "PeerConnection", "PeerConfig", "TcpTransport"]
