"""Latency statistics with bounded memory.

Benchmarks complete millions of requests, so raw latency lists are out;
we keep exact count/sum/min/max and a fixed-size reservoir sample for
percentiles (statistically sound for the smooth distributions the
simulation produces).
"""

from __future__ import annotations

from repro.sim.rand import DeterministicRandom


class LatencyStats:
    """Streaming latency aggregator (nanosecond samples)."""

    def __init__(self, reservoir_size: int = 4096, seed: int = 42):
        self.count = 0
        self.total_ns = 0
        self.min_ns: int | None = None
        self.max_ns: int | None = None
        self._reservoir: list[int] = []
        self._reservoir_size = reservoir_size
        self._rng = DeterministicRandom(seed)

    def record(self, latency_ns: int) -> None:
        self.count += 1
        self.total_ns += latency_ns
        if self.min_ns is None or latency_ns < self.min_ns:
            self.min_ns = latency_ns
        if self.max_ns is None or latency_ns > self.max_ns:
            self.max_ns = latency_ns
        if len(self._reservoir) < self._reservoir_size:
            self._reservoir.append(latency_ns)
        else:
            slot = self._rng.randint(0, self.count - 1)
            if slot < self._reservoir_size:
                self._reservoir[slot] = latency_ns

    def merge(self, other: "LatencyStats") -> None:
        self.count += other.count
        self.total_ns += other.total_ns
        if other.min_ns is not None and (self.min_ns is None or other.min_ns < self.min_ns):
            self.min_ns = other.min_ns
        if other.max_ns is not None and (self.max_ns is None or other.max_ns > self.max_ns):
            self.max_ns = other.max_ns
        for sample in other._reservoir:
            if len(self._reservoir) < self._reservoir_size:
                self._reservoir.append(sample)
            else:
                slot = self._rng.randint(0, max(self.count - 1, 1))
                if slot < self._reservoir_size:
                    self._reservoir[slot] = sample

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0

    @property
    def mean_ms(self) -> float:
        return self.mean_ns / 1e6

    def percentile_ns(self, p: float) -> float:
        """Approximate percentile (0 < p < 100) from the reservoir."""
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        index = min(len(ordered) - 1, int(round((p / 100.0) * (len(ordered) - 1))))
        return float(ordered[index])

    def percentile_ms(self, p: float) -> float:
        return self.percentile_ns(p) / 1e6

    def to_json(self) -> dict:
        """Serializable form (exact aggregates + the reservoir).

        Lets a child OS process ship its latency distribution to a parent,
        which rebuilds it with :meth:`from_json` and :meth:`merge`\\ s — the
        only way to get group-wide percentiles out of a process-per-node
        run, since percentiles themselves do not compose.
        """
        return {
            "count": self.count,
            "total_ns": self.total_ns,
            "min_ns": self.min_ns,
            "max_ns": self.max_ns,
            "samples_ns": list(self._reservoir),
        }

    @classmethod
    def from_json(cls, data: dict) -> "LatencyStats":
        stats = cls()
        stats.count = int(data.get("count", 0))
        stats.total_ns = int(data.get("total_ns", 0))
        stats.min_ns = data.get("min_ns")
        stats.max_ns = data.get("max_ns")
        stats._reservoir = [int(s) for s in data.get("samples_ns", [])][: stats._reservoir_size]
        return stats

    def percentiles_ms(self) -> dict[str, float]:
        """The SLO trio (p50/p99/p999) plus mean and max, in milliseconds.

        p999 comes from the same reservoir as the rest; with the default
        4096-sample reservoir it is a ~4-sample tail estimate — coarse,
        but stable enough to catch order-of-magnitude tail regressions.
        """
        return {
            "mean": round(self.mean_ms, 4),
            "p50": round(self.percentile_ms(50), 4),
            "p99": round(self.percentile_ms(99), 4),
            "p999": round(self.percentile_ms(99.9), 4),
            "max": round((self.max_ns or 0) / 1e6, 4),
        }
