"""Workload definitions: what operations clients issue.

A :class:`Workload` yields ``(operation, payload_size)`` pairs.  The
three workloads match the paper's benchmarks:

* :class:`NullWorkload` — empty operations with a configurable payload
  (the §6.2/§6.3 microbenchmark with 0 B / 128 B / 1 KiB / 4 KiB).
* :class:`CoordinationWorkload` — the §6.4 coordination-service mix:
  clients store and retrieve 128-byte nodes under a private subtree,
  with a configurable read fraction.
* :class:`KeyValueWorkload` — puts/gets against the KV store, used by
  the examples.
"""

from __future__ import annotations

from typing import Any

from repro.sim.rand import DeterministicRandom


class Workload:
    """Produces the operation stream of one client."""

    def next_operation(self, request_index: int) -> tuple[Any, int]:
        """Return (service operation, request payload size in bytes)."""
        raise NotImplementedError

    def setup_operations(self) -> list[tuple[Any, int]]:
        """Operations issued once before the measurement starts."""
        return []


class NullWorkload(Workload):
    """No-op requests with a fixed payload size."""

    def __init__(self, payload_size: int = 0):
        self.payload_size = payload_size

    def next_operation(self, request_index: int) -> tuple[Any, int]:
        return None, self.payload_size


class KeyValueWorkload(Workload):
    """Alternating put/get over a small keyspace."""

    def __init__(self, client_id: str, keys: int = 16, payload_size: int = 0, seed: int = 0):
        self.client_id = client_id
        self.keys = keys
        self.payload_size = payload_size
        self._rng = DeterministicRandom(seed)

    def next_operation(self, request_index: int) -> tuple[Any, int]:
        key = f"{self.client_id}/k{self._rng.randint(0, self.keys - 1)}"
        if self._rng.random() < 0.5:
            return ("put", key, request_index), self.payload_size
        return ("get", key), self.payload_size


class CoordinationWorkload(Workload):
    """ZooKeeper-style node store/retrieve mix (paper §6.4).

    Each client works under its own subtree (``/c<id>``), pre-creating
    ``nodes`` children, then issues ``set`` (write) and ``get`` (read)
    operations on random children according to ``read_fraction``.
    Writes carry the node payload in the request; reads return it in the
    reply — exactly the asymmetry that §6.4 exploits when varying the
    read rate.
    """

    def __init__(
        self,
        client_id: str,
        read_fraction: float,
        node_size: int = 128,
        nodes: int = 8,
        seed: int = 0,
    ):
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError(f"read fraction must be in [0, 1], got {read_fraction}")
        self.client_id = client_id
        self.read_fraction = read_fraction
        self.node_size = node_size
        self.nodes = nodes
        self._rng = DeterministicRandom(seed)
        self._root = f"/{client_id.replace('/', '_')}"

    def setup_operations(self) -> list[tuple[Any, int]]:
        operations = [(("create", self._root, 0), 0)]
        for i in range(self.nodes):
            operations.append((("create", f"{self._root}/n{i}", self.node_size), self.node_size))
        return operations

    def next_operation(self, request_index: int) -> tuple[Any, int]:
        node = f"{self._root}/n{self._rng.randint(0, self.nodes - 1)}"
        if self._rng.random() < self.read_fraction:
            # reads: small request, large reply (the service reports the size)
            return ("get", node), 0
        return ("set", node, self.node_size), self.node_size

    def reply_payload_size(self) -> int:
        """Average reply payload: reads return node data, writes an ack."""
        return int(self.read_fraction * self.node_size)
