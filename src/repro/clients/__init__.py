"""Client-side workload generation and measurement.

Clients follow the paper's benchmark methodology (§6): a configured
number of clients constantly keeps a bounded number of asynchronous
requests in flight, accepts a result once f+1 replies from distinct
replicas match, and measures average latency and aggregate throughput.
"""

from repro.clients.client import Client
from repro.clients.stats import LatencyStats
from repro.clients.workload import (
    CoordinationWorkload,
    KeyValueWorkload,
    NullWorkload,
    Workload,
)

__all__ = [
    "Client",
    "LatencyStats",
    "Workload",
    "NullWorkload",
    "KeyValueWorkload",
    "CoordinationWorkload",
]
