"""The benchmark client.

Each client keeps ``window`` asynchronous requests in flight (the paper's
"bounded number of asynchronous requests"), sends them to the replica
that will propose them, accepts a result once f+1 replies from distinct
replicas match, and measures the time from send to acceptance.

Clients are stages on dedicated client machines; several clients share a
machine (and its NICs), so reply incast and client-side MAC costs are
modelled faithfully.  A client's network identity is its machine — the
``client_id`` embeds ``node:stage`` so replicas can address replies.

On timeout a client re-multicasts the request to the whole group, which
is what arms the followers' leader-suspicion timers (paper Figure 3,
step 3).
"""

from __future__ import annotations

from typing import Any

from repro.core.config import ReplicaGroupConfig
from repro.clients.stats import LatencyStats
from repro.clients.workload import Workload
from repro.crypto.provider import CryptoProvider
from repro.messages.client import Reply, Request, RequestBurst
from repro.sim.process import Address, Endpoint, Stage
from repro.sim.resources import SimThread

DEFAULT_CLIENT_TIMEOUT_NS = 400_000_000  # 400 ms before re-multicasting


class _Pending:
    __slots__ = ("request", "sent_at", "votes", "timer")

    def __init__(self, request: Request, sent_at: int, timer):
        self.request = request
        self.sent_at = sent_at
        self.votes: dict[str, Any] = {}
        self.timer = timer


class Client(Stage):
    """A closed-loop benchmark client with a bounded in-flight window."""

    def __init__(
        self,
        endpoint: Endpoint,
        thread: SimThread,
        config: ReplicaGroupConfig,
        name: str,
        workload: Workload,
        window: int = 1,
        crypto: CryptoProvider | None = None,
        timeout_ns: int = DEFAULT_CLIENT_TIMEOUT_NS,
    ):
        super().__init__(endpoint, thread, name)
        self.config = config
        self.client_id = f"{endpoint.node}:{name}"
        self.workload = workload
        self.window = window
        self.crypto = crypto or CryptoProvider()
        self.timeout_ns = timeout_ns

        self.current_view = 0
        self.next_request_id = 0
        self.outstanding: dict[int, _Pending] = {}
        self.completed = 0
        self.stats = LatencyStats()
        self.retries = 0
        self.last_result: Any = None
        self._stopped = False
        self._setup_queue = list(workload.setup_operations())
        self._in_setup = bool(self._setup_queue)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin issuing requests (setup operations first, one at a time)."""
        if self._in_setup:
            operation, payload = self._setup_queue.pop(0)
            self._issue(operation, payload)
        else:
            self._fill_window()

    def stop(self) -> None:
        """Stop issuing new requests; outstanding ones still complete."""
        self._stopped = True

    def _fill_window(self) -> None:
        burst: list[Request] = []
        while not self._stopped and len(self.outstanding) < self.window:
            operation, payload = self.workload.next_operation(self.next_request_id)
            burst.append(self._prepare_request(operation, payload))
        if not burst:
            return
        target = self.config.proposer_replica_for_client(self.client_id, self.current_view)
        if len(burst) == 1:
            self.send((target, "handler"), burst[0])
        else:
            self.send((target, "handler"), RequestBurst(tuple(burst)))

    def _prepare_request(self, operation: Any, payload_size: int) -> Request:
        request_id = self.next_request_id
        self.next_request_id += 1
        bare = Request(self.client_id, request_id, operation, payload_size)
        mac = self.crypto.compute_mac(b"client-session", bare.digestible(), size_hint=32)
        request = Request(self.client_id, request_id, operation, payload_size, mac)
        timer = self.set_timer(self.timeout_ns, self._on_timeout, request_id)
        self.outstanding[request_id] = _Pending(request, self.now, timer)
        self.trace("client-invoke", (self.client_id, request_id, operation))
        return request

    def _issue(self, operation: Any, payload_size: int) -> None:
        request = self._prepare_request(operation, payload_size)
        target = self.config.proposer_replica_for_client(self.client_id, self.current_view)
        self.send((target, "handler"), request)

    def _on_timeout(self, request_id: int) -> None:
        pending = self.outstanding.get(request_id)
        if pending is None:
            return
        # no reply in time: the leader may be faulty — multicast to everyone
        self.retries += 1
        for replica_id in self.config.replica_ids:
            self.send((replica_id, "handler"), pending.request)
        pending.timer = self.set_timer(self.timeout_ns, self._on_timeout, request_id)

    # ------------------------------------------------------------------
    def on_message(self, src: Address, message: Any) -> None:
        if not isinstance(message, Reply):
            return
        pending = self.outstanding.get(message.request_id)
        if pending is None:
            return
        # one MAC verification per reply
        self.crypto.compute_mac(b"client-session", message.digestible(), size_hint=32)
        if message.view > self.current_view:
            self.current_view = message.view
        pending.votes[message.replica_id] = message.match_key
        matching = sum(
            1 for key in pending.votes.values() if key == message.match_key
        )
        if matching >= self.config.f + 1:
            self._complete(message.request_id, pending, message.result)

    def _complete(self, request_id: int, pending: _Pending, result: Any) -> None:
        del self.outstanding[request_id]
        self.cancel_timer(pending.timer)
        self.completed += 1
        self.last_result = result
        self.stats.record(self.now - pending.sent_at)
        # Invoke/complete pairs give the safety checker real-time intervals
        # for the linearizability analysis (repro.scenarios.safety).
        self.trace(
            "client-complete",
            (self.client_id, request_id, pending.request.operation, result),
        )
        if self._in_setup:
            if self._setup_queue:
                operation, payload = self._setup_queue.pop(0)
                self._issue(operation, payload)
            else:
                self._in_setup = False
                self._fill_window()
        else:
            self._fill_window()

