"""Deterministic binary codec for protocol messages.

The codec assigns every message dataclass a stable numeric type id
(sorted by qualified name, so every process derives the same table from
the same code) and encodes instances as tagged values:

* scalars — ``None``, bools, arbitrary-precision ints (zigzag + LEB128),
  floats (IEEE-754 big-endian), UTF-8 strings, bytes;
* containers — tuples, lists, dicts, frozensets (sorted for determinism);
* registered dataclasses — type id + fields in declaration order, followed
  by *modelled padding*: messages that account for benchmark payloads
  without materializing them (``Request.payload_size`` et al.) declare the
  byte count via :meth:`~repro.messages.base.ProtocolMessage.wire_padding`
  and the codec puts real zero bytes on the wire, so a live network carries
  the load the bandwidth model charges for.

Every registered type round-trips exactly: ``decode(encode(m)) == m``,
including nested messages, TrInX certificates, and MAC authenticators.
Malformed or tampered bytes raise typed errors
(:class:`~repro.errors.WireFormatError`,
:class:`~repro.errors.WireIntegrityError`) instead of yielding garbage.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Any, Iterable

from repro.errors import WireFormatError, WireUnsupportedTypeError
from repro.messages.base import MESSAGE_HEADER_SIZE
from repro.wire.framing import (
    KIND_ENVELOPE,
    KIND_MESSAGE,
    Frame,
    decode_frame,
    encode_frame,
    sender_tag,
)

# Value tags.
_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_TUPLE = 0x07
_T_LIST = 0x08
_T_DICT = 0x09
_T_FROZENSET = 0x0A
_T_DATACLASS = 0x0B

_FLOAT = struct.Struct(">d")
_MAX_DEPTH = 64


# ----------------------------------------------------------------------
# Varints
# ----------------------------------------------------------------------
def _write_uvarint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _zigzag(value: int) -> int:
    return value * 2 if value >= 0 else -value * 2 - 1


def _unzigzag(value: int) -> int:
    return value // 2 if value % 2 == 0 else -(value + 1) // 2


class _Cursor:
    """Bounds-checked reader over an immutable byte buffer."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, count: int) -> bytes:
        if count < 0 or self.pos + count > len(self.data):
            raise WireFormatError(
                f"truncated value: need {count} bytes at offset {self.pos}, "
                f"buffer holds {len(self.data)}"
            )
        chunk = self.data[self.pos : self.pos + count]
        self.pos += count
        return chunk

    def skip(self, count: int) -> None:
        if count < 0 or self.pos + count > len(self.data):
            raise WireFormatError(f"truncated padding: need {count} bytes at offset {self.pos}")
        self.pos += count

    def read_uvarint(self) -> int:
        shift = 0
        result = 0
        while True:
            if self.pos >= len(self.data):
                raise WireFormatError("truncated varint")
            if shift > 70:  # > 10 bytes: not produced by this codec
                raise WireFormatError("varint too long")
            byte = self.data[self.pos]
            self.pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7

    @property
    def exhausted(self) -> bool:
        return self.pos >= len(self.data)


# ----------------------------------------------------------------------
# Type registry
# ----------------------------------------------------------------------
_DEFAULT_MODULES = (
    "repro.crypto.authenticators",
    "repro.messages.checkpointing",
    "repro.messages.client",
    "repro.messages.internal",
    "repro.messages.ordering",
    "repro.messages.statetransfer",
    "repro.messages.viewchange",
    "repro.trinx.certificates",
)


def _module_dataclasses(module_name: str) -> Iterable[type]:
    import importlib

    module = importlib.import_module(module_name)
    for name in sorted(vars(module)):
        obj = getattr(module, name)
        if (
            isinstance(obj, type)
            and dataclasses.is_dataclass(obj)
            and obj.__module__ == module_name
        ):
            yield obj


class WireCodec:
    """A codec instance: type table plus encode/decode entry points."""

    def __init__(self, types: Iterable[type] | None = None):
        if types is None:
            types = [cls for mod in _DEFAULT_MODULES for cls in _module_dataclasses(mod)]
        ordered = sorted(set(types), key=lambda cls: (cls.__module__, cls.__qualname__))
        self._type_by_id: dict[int, type] = {}
        self._id_by_type: dict[type, int] = {}
        self._fields_by_type: dict[type, tuple] = {}
        for type_id, cls in enumerate(ordered, start=1):
            if not dataclasses.is_dataclass(cls):
                raise WireUnsupportedTypeError(f"{cls!r} is not a dataclass")
            self._type_by_id[type_id] = cls
            self._id_by_type[cls] = type_id
            self._fields_by_type[cls] = dataclasses.fields(cls)
        # Reusable body scratch buffer: encode()/encode_envelope() clear it
        # instead of allocating a fresh bytearray per message, so the
        # buffer's grown capacity is retained across hot-path calls.
        self._scratch = bytearray()

    # ------------------------------------------------------------------
    # Registry introspection
    # ------------------------------------------------------------------
    @property
    def registered_types(self) -> tuple[type, ...]:
        return tuple(self._type_by_id[type_id] for type_id in sorted(self._type_by_id))

    def type_id_of(self, cls: type) -> int:
        try:
            return self._id_by_type[cls]
        except KeyError:
            raise WireUnsupportedTypeError(
                f"{cls.__module__}.{cls.__qualname__} is not a registered wire type"
            ) from None

    # ------------------------------------------------------------------
    # Value encoding
    # ------------------------------------------------------------------
    def _encode_value(self, out: bytearray, value: Any, depth: int = 0) -> None:
        if depth > _MAX_DEPTH:
            raise WireUnsupportedTypeError(f"value nesting exceeds {_MAX_DEPTH} levels")
        if value is None:
            out.append(_T_NONE)
        elif value is True:
            out.append(_T_TRUE)
        elif value is False:
            out.append(_T_FALSE)
        elif isinstance(value, int):
            out.append(_T_INT)
            _write_uvarint(out, _zigzag(value))
        elif isinstance(value, float):
            out.append(_T_FLOAT)
            out.extend(_FLOAT.pack(value))
        elif isinstance(value, str):
            raw = value.encode("utf-8")
            out.append(_T_STR)
            _write_uvarint(out, len(raw))
            out.extend(raw)
        elif isinstance(value, (bytes, bytearray, memoryview)):
            raw = bytes(value)
            out.append(_T_BYTES)
            _write_uvarint(out, len(raw))
            out.extend(raw)
        elif isinstance(value, tuple):
            out.append(_T_TUPLE)
            _write_uvarint(out, len(value))
            for item in value:
                self._encode_value(out, item, depth + 1)
        elif isinstance(value, list):
            out.append(_T_LIST)
            _write_uvarint(out, len(value))
            for item in value:
                self._encode_value(out, item, depth + 1)
        elif isinstance(value, dict):
            out.append(_T_DICT)
            _write_uvarint(out, len(value))
            for key, item in value.items():
                self._encode_value(out, key, depth + 1)
                self._encode_value(out, item, depth + 1)
        elif isinstance(value, frozenset):
            encoded_items = []
            for item in value:
                item_out = bytearray()
                self._encode_value(item_out, item, depth + 1)
                encoded_items.append(bytes(item_out))
            out.append(_T_FROZENSET)
            _write_uvarint(out, len(encoded_items))
            for chunk in sorted(encoded_items):
                out.extend(chunk)
        elif dataclasses.is_dataclass(value) and not isinstance(value, type):
            self._encode_dataclass(out, value, depth)
        else:
            raise WireUnsupportedTypeError(
                f"cannot encode value of type {type(value).__qualname__}"
            )

    def _encode_dataclass(self, out: bytearray, value: Any, depth: int) -> None:
        cls = type(value)
        type_id = self.type_id_of(cls)
        fields = self._fields_by_type[cls]
        out.append(_T_DATACLASS)
        _write_uvarint(out, type_id)
        _write_uvarint(out, len(fields))
        for field in fields:
            self._encode_value(out, getattr(value, field.name), depth + 1)
        padding = 0
        wire_padding = getattr(value, "wire_padding", None)
        if callable(wire_padding):
            padding = max(0, int(wire_padding()))
        _write_uvarint(out, padding)
        out.extend(b"\x00" * padding)

    # ------------------------------------------------------------------
    # Value decoding
    # ------------------------------------------------------------------
    def _decode_value(self, cursor: _Cursor, depth: int = 0) -> Any:
        if depth > _MAX_DEPTH:
            raise WireFormatError(f"value nesting exceeds {_MAX_DEPTH} levels")
        tag = cursor.take(1)[0]
        if tag == _T_NONE:
            return None
        if tag == _T_TRUE:
            return True
        if tag == _T_FALSE:
            return False
        if tag == _T_INT:
            return _unzigzag(cursor.read_uvarint())
        if tag == _T_FLOAT:
            return _FLOAT.unpack(cursor.take(_FLOAT.size))[0]
        if tag == _T_STR:
            raw = cursor.take(cursor.read_uvarint())
            try:
                return raw.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise WireFormatError(f"invalid UTF-8 in string value: {exc}") from None
        if tag == _T_BYTES:
            return cursor.take(cursor.read_uvarint())
        if tag == _T_TUPLE:
            count = cursor.read_uvarint()
            return tuple(self._decode_value(cursor, depth + 1) for _ in range(count))
        if tag == _T_LIST:
            count = cursor.read_uvarint()
            return [self._decode_value(cursor, depth + 1) for _ in range(count)]
        if tag == _T_DICT:
            count = cursor.read_uvarint()
            result = {}
            for _ in range(count):
                key = self._decode_value(cursor, depth + 1)
                result[key] = self._decode_value(cursor, depth + 1)
            return result
        if tag == _T_FROZENSET:
            count = cursor.read_uvarint()
            return frozenset(self._decode_value(cursor, depth + 1) for _ in range(count))
        if tag == _T_DATACLASS:
            return self._decode_dataclass(cursor, depth)
        raise WireFormatError(f"unknown value tag 0x{tag:02x}")

    def _decode_dataclass(self, cursor: _Cursor, depth: int) -> Any:
        type_id = cursor.read_uvarint()
        cls = self._type_by_id.get(type_id)
        if cls is None:
            raise WireFormatError(f"unknown wire type id {type_id}")
        fields = self._fields_by_type[cls]
        field_count = cursor.read_uvarint()
        if field_count != len(fields):
            raise WireFormatError(
                f"{cls.__qualname__}: field count mismatch "
                f"(wire has {field_count}, code expects {len(fields)})"
            )
        values = [self._decode_value(cursor, depth + 1) for _ in fields]
        cursor.skip(cursor.read_uvarint())  # modelled payload padding
        try:
            return cls(*values)
        except (TypeError, ValueError) as exc:
            raise WireFormatError(f"cannot construct {cls.__qualname__}: {exc}") from None

    # ------------------------------------------------------------------
    # Message framing
    # ------------------------------------------------------------------
    def encode(self, message: Any) -> bytes:
        """Encode one registered message as a complete frame."""
        type_id = self.type_id_of(type(message))
        body = self._scratch
        del body[:]
        self._encode_value(body, message)
        return encode_frame(KIND_MESSAGE, type_id, bytes(body))

    def decode(self, data: bytes) -> Any:
        """Decode one complete message frame back into its dataclass."""
        frame = decode_frame(data)
        if frame.kind != KIND_MESSAGE:
            raise WireFormatError(f"expected a message frame, got kind {frame.kind}")
        return self.decode_body(frame)

    def decode_body(self, frame: Frame) -> Any:
        cursor = _Cursor(frame.body)
        message = self._decode_value(cursor)
        if not cursor.exhausted:
            raise WireFormatError(
                f"{len(frame.body) - cursor.pos} trailing bytes after message body"
            )
        if frame.kind == KIND_MESSAGE and self._id_by_type.get(type(message)) != frame.type_id:
            raise WireFormatError(
                f"frame header type id {frame.type_id} does not match body type "
                f"{type(message).__qualname__}"
            )
        return message

    def encoded_size(self, message: Any) -> int:
        """Actual on-the-wire size of ``message`` (header + body)."""
        return len(self.encode(message))

    # ------------------------------------------------------------------
    # Envelopes (stage-addressed messages, used by the live transport)
    # ------------------------------------------------------------------
    def encode_envelope(self, src_node: str, src_stage: str, dst_stage: str, message: Any) -> bytes:
        """Encode a stage-addressed message for the asyncio transport."""
        type_id = self.type_id_of(type(message))
        body = self._scratch
        del body[:]
        self._encode_value(body, src_node)
        self._encode_value(body, src_stage)
        self._encode_value(body, dst_stage)
        self._encode_value(body, message)
        return encode_frame(KIND_ENVELOPE, type_id, bytes(body), sender=sender_tag(src_node))

    def decode_envelope(self, frame_or_bytes: Frame | bytes) -> tuple[str, str, str, Any]:
        """Decode an envelope frame into (src_node, src_stage, dst_stage, message)."""
        frame = frame_or_bytes if isinstance(frame_or_bytes, Frame) else decode_frame(frame_or_bytes)
        if frame.kind != KIND_ENVELOPE:
            raise WireFormatError(f"expected an envelope frame, got kind {frame.kind}")
        cursor = _Cursor(frame.body)
        src_node = self._decode_value(cursor)
        src_stage = self._decode_value(cursor)
        dst_stage = self._decode_value(cursor)
        message = self._decode_value(cursor)
        if not cursor.exhausted:
            raise WireFormatError(
                f"{len(frame.body) - cursor.pos} trailing bytes after envelope body"
            )
        for part in (src_node, src_stage, dst_stage):
            if not isinstance(part, str):
                raise WireFormatError(f"envelope address parts must be strings, got {type(part)}")
        return src_node, src_stage, dst_stage, message

    # ------------------------------------------------------------------
    # Accounting reconciliation
    # ------------------------------------------------------------------
    def audit(self, message: Any) -> "WireSizeDelta":
        """Compare the codec's real encoded size against ``wire_size()``."""
        accounted = int(message.wire_size())
        encoded = self.encoded_size(message)
        return WireSizeDelta(type(message).__qualname__, accounted, encoded)


@dataclasses.dataclass(frozen=True)
class WireSizeDelta:
    """Outcome of reconciling the accounting model with the real codec."""

    message_type: str
    accounted: int
    encoded: int

    @property
    def delta(self) -> int:
        return self.encoded - self.accounted

    @property
    def ratio(self) -> float:
        return self.encoded / self.accounted if self.accounted else float("inf")

    def __str__(self) -> str:
        return (
            f"{self.message_type}: accounted {self.accounted} B, "
            f"encoded {self.encoded} B (delta {self.delta:+d}, ratio {self.ratio:.2f})"
        )


# ----------------------------------------------------------------------
# Module-level default instance
# ----------------------------------------------------------------------
_DEFAULT: WireCodec | None = None


def default_codec() -> WireCodec:
    """The process-wide codec over all registered message modules."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = WireCodec()
    return _DEFAULT


def encode_message(message: Any) -> bytes:
    return default_codec().encode(message)


def decode_message(data: bytes) -> Any:
    return default_codec().decode(data)


def encode_envelope(src_node: str, src_stage: str, dst_stage: str, message: Any) -> bytes:
    return default_codec().encode_envelope(src_node, src_stage, dst_stage, message)


def decode_envelope(frame_or_bytes: Frame | bytes) -> tuple[str, str, str, Any]:
    return default_codec().decode_envelope(frame_or_bytes)


def encoded_size(message: Any) -> int:
    return default_codec().encoded_size(message)


assert MESSAGE_HEADER_SIZE == 20  # the accounting constant the frame header mirrors
