"""Length-prefixed frames with integrity checking.

Every unit on the wire is one frame::

    0      2      3      4        6          10         14        18       20
    +------+------+------+--------+----------+----------+---------+--------+
    | 'Hy' | ver  | kind | type   | body len | crc32    | sender  | rsvd   |
    +------+------+------+--------+----------+----------+---------+--------+
    |                              body (len bytes)                        |
    +----------------------------------------------------------------------+

The header is exactly :data:`repro.messages.base.MESSAGE_HEADER_SIZE`
(20) bytes — the framing the ``wire_size()`` accounting has always charged
per message ("type tag, lengths, sender id") is now the literal layout.

``kind`` distinguishes payload frames from transport control traffic:

* ``KIND_MESSAGE`` — a bare protocol message (body: one encoded value);
* ``KIND_ENVELOPE`` — a stage-addressed message (body: source node,
  source stage, destination stage, message);
* ``KIND_HELLO`` — first frame of a connection, body is the sender's
  node name (UTF-8);
* ``KIND_PING`` — heartbeat, empty body.

``crc32`` covers the body; a mismatch raises
:class:`~repro.errors.WireIntegrityError` so tampered or corrupted bytes
fail cleanly instead of decoding into garbage.  ``sender`` is the CRC-32
of the sending node's name — a routing diagnostic, not an authenticator
(authenticity comes from MACs and TrInX certificates inside the body).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.errors import WireFormatError, WireIntegrityError
from repro.messages.base import MESSAGE_HEADER_SIZE

MAGIC = b"Hy"
WIRE_VERSION = 1

KIND_MESSAGE = 1
KIND_ENVELOPE = 2
KIND_HELLO = 3
KIND_PING = 4

_KINDS = (KIND_MESSAGE, KIND_ENVELOPE, KIND_HELLO, KIND_PING)

_HEADER = struct.Struct(">2sBBHIII2s")
FRAME_HEADER_SIZE = _HEADER.size
assert FRAME_HEADER_SIZE == MESSAGE_HEADER_SIZE, "frame header must match the accounting constant"

# A single frame may carry a full state-transfer snapshot, but anything
# beyond this is a protocol error (or an attack), not a real message.
MAX_BODY_SIZE = 64 * 1024 * 1024


def sender_tag(node: str) -> int:
    """The 32-bit sender diagnostic carried in the frame header."""
    return zlib.crc32(node.encode("utf-8")) & 0xFFFFFFFF


@dataclass(frozen=True)
class Frame:
    """A parsed, integrity-checked frame."""

    kind: int
    type_id: int
    sender: int
    body: bytes

    @property
    def size(self) -> int:
        return FRAME_HEADER_SIZE + len(self.body)


def encode_frame(kind: int, type_id: int, body: bytes, sender: int = 0) -> bytes:
    """Serialize one frame (header + body)."""
    if kind not in _KINDS:
        raise WireFormatError(f"unknown frame kind {kind}")
    if len(body) > MAX_BODY_SIZE:
        raise WireFormatError(f"frame body of {len(body)} bytes exceeds {MAX_BODY_SIZE}")
    header = _HEADER.pack(
        MAGIC, WIRE_VERSION, kind, type_id, len(body), zlib.crc32(body) & 0xFFFFFFFF, sender, b"\x00\x00"
    )
    return header + body


def _parse_header(data: bytes | memoryview) -> tuple[int, int, int, int, int]:
    """Validate a header; returns (kind, type_id, body_len, crc, sender)."""
    if len(data) < FRAME_HEADER_SIZE:
        raise WireFormatError(f"truncated frame header ({len(data)} < {FRAME_HEADER_SIZE} bytes)")
    magic, version, kind, type_id, body_len, crc, sender, _reserved = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise WireFormatError(f"bad magic {bytes(magic)!r}")
    if version != WIRE_VERSION:
        raise WireFormatError(f"unsupported wire version {version} (expected {WIRE_VERSION})")
    if kind not in _KINDS:
        raise WireFormatError(f"unknown frame kind {kind}")
    if body_len > MAX_BODY_SIZE:
        raise WireFormatError(f"frame body of {body_len} bytes exceeds {MAX_BODY_SIZE}")
    return kind, type_id, body_len, crc, sender


def decode_frame(data: bytes) -> Frame:
    """Parse exactly one complete frame from ``data``.

    Raises :class:`WireFormatError` for truncated or malformed frames and
    :class:`WireIntegrityError` when the body fails its checksum.
    """
    kind, type_id, body_len, crc, sender = _parse_header(data)
    if len(data) != FRAME_HEADER_SIZE + body_len:
        raise WireFormatError(
            f"frame length mismatch: header announces {body_len} body bytes, "
            f"buffer holds {len(data) - FRAME_HEADER_SIZE}"
        )
    body = bytes(data[FRAME_HEADER_SIZE:])
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise WireIntegrityError("frame body checksum mismatch (corrupted or tampered bytes)")
    return Frame(kind, type_id, sender, body)


class FrameReader:
    """Incremental frame parser for a TCP byte stream.

    Feed raw socket reads in with :meth:`feed`; complete, validated frames
    come out.  Malformed input raises immediately — a stream that ever
    desynchronizes cannot be trusted again, so the transport drops the
    connection and lets the reconnect logic start clean.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self.frames_parsed = 0
        self.bytes_consumed = 0

    def feed(self, data: bytes) -> list[Frame]:
        """Append ``data``; return every frame completed by it."""
        self._buffer.extend(data)
        frames: list[Frame] = []
        while True:
            if len(self._buffer) < FRAME_HEADER_SIZE:
                break
            _kind, _type_id, body_len, _crc, _sender = _parse_header(self._buffer)
            total = FRAME_HEADER_SIZE + body_len
            if len(self._buffer) < total:
                break
            chunk = bytes(self._buffer[:total])
            del self._buffer[:total]
            frames.append(decode_frame(chunk))
            self.frames_parsed += 1
            self.bytes_consumed += total
        return frames

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)
