"""Wire format: deterministic binary codec and frame parsing.

This package turns the in-memory protocol messages of :mod:`repro.messages`
into bytes and back, so Hybster can run over real sockets instead of only
inside the discrete-event simulator.  :mod:`repro.wire.codec` holds the
type registry and the value codec; :mod:`repro.wire.framing` holds the
length-prefixed frame header and the incremental stream parser used by the
asyncio transport.
"""

from repro.wire.codec import (
    WireCodec,
    WireSizeDelta,
    default_codec,
    decode_envelope,
    decode_message,
    encode_envelope,
    encode_message,
    encoded_size,
)
from repro.wire.framing import (
    FRAME_HEADER_SIZE,
    KIND_ENVELOPE,
    KIND_HELLO,
    KIND_MESSAGE,
    KIND_PING,
    Frame,
    FrameReader,
    decode_frame,
    encode_frame,
)

__all__ = [
    "WireCodec",
    "WireSizeDelta",
    "default_codec",
    "decode_envelope",
    "decode_message",
    "encode_envelope",
    "encode_message",
    "encoded_size",
    "FRAME_HEADER_SIZE",
    "KIND_ENVELOPE",
    "KIND_HELLO",
    "KIND_MESSAGE",
    "KIND_PING",
    "Frame",
    "FrameReader",
    "decode_frame",
    "encode_frame",
]
