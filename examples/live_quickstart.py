#!/usr/bin/env python3
"""Live quickstart: replicate a key-value store over real sockets.

The live twin of ``examples/quickstart.py``: the same three-replica
Hybster group and the same scripted key-value workload, but instead of
the discrete-event simulator, every replica and the client run as asyncio
tasks in this process and exchange codec-framed messages over localhost
TCP connections.

Run with::

    PYTHONPATH=src python examples/live_quickstart.py
"""

import asyncio

from repro.clients.workload import Workload
from repro.runtime.deployment import SERVICES, DeploymentSpec
from repro.runtime.live import build_live_deployment


class ScriptedWorkload(Workload):
    """Issues a fixed list of operations, then repeats reads."""

    def __init__(self, operations):
        self.operations = operations

    def next_operation(self, request_index):
        if request_index < len(self.operations):
            return self.operations[request_index], 0
        return ("get", "greeting"), 0


async def main():
    # --- the cluster, from the same spec a benchmark would use -------------
    script = [
        ("put", "greeting", "hello, hybrid world"),
        ("put", "answer", 42),
        ("get", "answer"),
        ("keys",),
        ("get", "greeting"),
    ]
    spec = DeploymentSpec(
        protocol="hybster-x",
        cores=2,
        service="kv",
        num_clients=1,
        client_window=1,
        client_machines=1,
        checkpoint_interval=8,
        window_size=16,
        workload_factory=lambda client_id, index: ScriptedWorkload(script),
    )
    assert spec.service in SERVICES
    deployment = build_live_deployment(spec)  # base_port=0: OS-assigned ports

    # --- run ---------------------------------------------------------------
    async with deployment.transport:
        for replica in deployment.replicas:
            replica.start()
        deployment.start_clients()

        client = deployment.clients[0]
        deadline = asyncio.get_running_loop().time() + 10.0
        while client.completed < 20 and asyncio.get_running_loop().time() < deadline:
            await asyncio.sleep(0.02)
        deployment.stop_clients()
        await asyncio.sleep(0.1)  # drain in-flight replies
        deployment.kernel.cancel_all()

        print(f"client completed {client.completed} requests over TCP")
        print(f"last result: {client.last_result!r}")
        print(f"mean latency: {client.stats.mean_ms:.3f} ms")
        print()
        print("replica agreement:")
        for replica in deployment.replicas:
            digest = replica.service.state_digestible()
            print(f"  {replica.replica_id}: view={replica.current_view} state={digest}")
        states = {str(r.service.state_digestible()) for r in deployment.replicas}
        assert len(states) == 1, "replicas diverged!"
        frames = deployment.transport.messages_sent
        print(f"\nall replicas hold identical state — {frames} frames crossed real sockets.")


if __name__ == "__main__":
    asyncio.run(main())
