#!/usr/bin/env python3
"""Quickstart: replicate a key-value store with Hybster.

Builds a three-replica HybsterX group (two pillars each) on a simulated
cluster, runs a handful of client operations against the replicated
key-value store, and shows that all replicas agree on the result.

Run with::

    python examples/quickstart.py
"""

from repro.clients.client import Client
from repro.clients.workload import Workload
from repro.core.config import ReplicaGroupConfig
from repro.core.replica import build_group
from repro.services.kvstore import KeyValueStore
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.process import Endpoint
from repro.sim.resources import Machine


class ScriptedWorkload(Workload):
    """Issues a fixed list of operations, then repeats reads."""

    def __init__(self, operations):
        self.operations = operations

    def next_operation(self, request_index):
        if request_index < len(self.operations):
            return self.operations[request_index], 0
        return ("get", "greeting"), 0


def main():
    # --- simulated cluster -------------------------------------------------
    sim = Simulator()
    network = Network(sim)
    config = ReplicaGroupConfig(
        replica_ids=("r0", "r1", "r2"),
        num_pillars=2,
        checkpoint_interval=8,
        window_size=16,
    )
    machines = [Machine(sim, rid, cores=4) for rid in config.replica_ids]
    replicas = build_group(sim, network, machines, config, KeyValueStore)

    # --- a client ----------------------------------------------------------
    client_machine = Machine(sim, "laptop", cores=2)
    endpoint = Endpoint(sim, network, "laptop")
    workload = ScriptedWorkload([
        ("put", "greeting", "hello, hybrid world"),
        ("put", "answer", 42),
        ("get", "answer"),
        ("keys",),
        ("get", "greeting"),
    ])
    client = Client(endpoint, client_machine.allocate_thread("c0"), config, "c0", workload, window=1)
    client.start()

    # --- run ---------------------------------------------------------------
    sim.run(until=50_000_000)  # 50 simulated milliseconds

    print(f"client completed {client.completed} requests")
    print(f"last result: {client.last_result!r}")
    print(f"mean latency: {client.stats.mean_ms:.3f} ms")
    print()
    print("replica agreement:")
    for replica in replicas:
        digest = replica.service.state_digestible()
        print(f"  {replica.replica_id}: view={replica.current_view} state={digest}")
    states = {str(replica.service.state_digestible()) for replica in replicas}
    assert len(states) == 1, "replicas diverged!"
    print("\nall replicas hold identical state — consensus reached.")


if __name__ == "__main__":
    main()
