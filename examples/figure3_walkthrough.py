#!/usr/bin/env python3
"""The paper's Figure 3, step by step, at the certificate level.

Three replicas R0, R1, R2 — R1 faulty.  The walkthrough reproduces the
paper's running example: request *b* commits at (view 0, order 51) on
{R0, R1} while R2 is disconnected; R1 then tries to conceal *b* through
the view change, and every mechanism of §5.2.3 (continuing certificates,
view-change certificates, new-view acknowledgments) plays its part until
R2 executes *b* at order 51 in view 2.

Each replica acts only through its genuine TrInX instance — the trusted
counters mechanically limit what the faulty R1 can produce.

Run with::

    python examples/figure3_walkthrough.py
"""

from dataclasses import replace

from repro.core.config import ReplicaGroupConfig
from repro.core.seqnum import flatten, unflatten
from repro.errors import CounterRegressionError
from repro.messages.client import Request
from repro.messages.ordering import Commit, Prepare
from repro.messages.viewchange import ViewChange
from repro.trinx.enclave import EnclavePlatform
from repro.trinx.trinx import TrInX

CONFIG = ReplicaGroupConfig(
    replica_ids=("R0", "R1", "R2"), checkpoint_interval=50, window_size=100
)
O = 0  # the ordering counter


def show_counter(name, trinx):
    view, order = unflatten(trinx.current_value(O))
    print(f"      {name} counter O = [{view}|{order}]")


def certify_prepare(trinx, view, order, payload, leader):
    bare = Prepare(view, order, (Request("client", order, payload),), leader)
    cert = trinx.create_independent(O, flatten(view, order), bare.digestible())
    return replace(bare, certificate=cert)


def certify_commit(trinx, prepare, replica):
    bare = Commit(prepare.view, prepare.order, replica, b"digest-of-" + str(prepare.order).encode())
    trinx.create_independent(O, flatten(prepare.view, prepare.order), bare.digestible())
    return bare


def certify_view_change(trinx, replica, v_from, v_to, prepares):
    bare = ViewChange(replica, v_from, v_to, 50, (), tuple(prepares))
    cert = trinx.create_continuing(O, flatten(v_to, 0), bare.digestible())
    return replace(bare, certificate=cert)


def main():
    platform = EnclavePlatform()
    r0 = TrInX(platform, CONFIG.trinx_instance_id("R0", 0), CONFIG.group_secret)
    r1 = TrInX(platform, CONFIG.trinx_instance_id("R1", 0), CONFIG.group_secret)
    r2 = TrInX(platform, CONFIG.trinx_instance_id("R2", 0), CONFIG.group_secret)

    print("Step 1-2: view 0, leader R0; instances up to order 50 are")
    print("committed and checkpointed (counters fast-forwarded to [0|50]).")
    for name, trinx in (("R0", r0), ("R1", r1), ("R2", r2)):
        trinx.create_independent(O, flatten(0, 50), f"{name} history up to 50")
        show_counter(name, trinx)

    print("\nStep 3: client request b; R0 proposes it at (0, 51); R1 commits.")
    print("R2 is disconnected and sees nothing.")
    prepare_b = certify_prepare(r0, 0, 51, "request b", "R0")
    certify_commit(r1, prepare_b, "R1")
    print("   -> committed certificate {R0, R1}: b is EXECUTED at 51 on R0, R1")
    show_counter("R1", r1)

    print("\nStep 4: R2 suspects R0 and sends VIEW-CHANGE 0 -> 1, certified")
    print("tau(R2, O, [1|0], [0|50]): previous value = its checkpoint, no")
    print("PREPAREs needed.")
    vc_r2 = certify_view_change(r2, "R2", 0, 1, [])
    print(f"      R2's certificate reveals previous value "
          f"{unflatten(vc_r2.certificate.previous_value)}")

    print("\nR1 turns faulty and wants to conceal b.  Its counter stands at")
    print("[0|51], so any VIEW-CHANGE it certifies reveals participation in")
    print("order 51 — omitting the PREPARE would be detected:")
    vc_r1_concealing = ViewChange("R1", 0, 1, 50, (), ())
    cert = r1.create_continuing(O, flatten(1, 0), vc_r1_concealing.digestible())
    pv, po = unflatten(cert.previous_value)
    print(f"      R1's forced previous value: [{pv}|{po}] -> receivers demand")
    print(f"      PREPAREs for every order in (50, {po}] — concealment fails.")

    print("\nStep 5: so R1 merely *generates* a NEW-VIEW for view 1 (keeping")
    print("it to itself), which re-proposes b and lifts its counter to [1|51]:")
    reproposal_b = Prepare(1, 51, prepare_b.batch, "R1", reproposal=True)
    r1.create_independent(O, flatten(1, 51), reproposal_b.digestible())
    show_counter("R1", r1)
    print("   R1 then 'cleans' its counter by burning a certificate for [2|0]")
    print("   that it never shows anyone, and sends VIEW-CHANGE 0 -> 3:")
    r1.create_continuing(O, flatten(2, 0), "burned in the dark")
    vc_r1_clean = certify_view_change(r1, "R1", 0, 3, [])
    pv, po = unflatten(vc_r1_clean.certificate.previous_value)
    print(f"      valid certificate with previous value [{pv}|{po}] — no")
    print("      PREPAREs required: the cleaning is legal but harmless,")
    print("      because R2 will not act on a view-3 VIEW-CHANGE before")
    print("      holding a view-change certificate for view 2.")

    print("\nStep 6: R0 aborts view 0 too.  Its counter [0|51] forces its")
    print("VIEW-CHANGE to include the PREPARE for b — R2 learns b:")
    vc_r0 = certify_view_change(r0, "R0", 0, 1, [prepare_b])
    assert r2.verify(vc_r0.certificate, vc_r0.digestible())
    print(f"      VIEW-CHANGE(R0, 0->1) carries {len(vc_r0.prepares)} PREPARE "
          f"(order {vc_r0.prepares[0].order}) — verified by R2's TrInX")
    print("   R2 now holds a view-change certificate for view 1 (R0 + R2).")

    print("\nSteps 7-9: R2 becomes the designated leader of view 2.  Its")
    print("new-view certificate needs q=2 VIEW-CHANGEs plus f+1 = 2 witnesses")
    print("of the base view.  R1's late NEW-VIEW for view 1 makes R0 'accept'")
    print("view 1 after aborting it, so R0 supplies a NEW-VIEW-ACK for view 1")
    print("carrying the re-proposal of b — completing the evidence.")

    print("\nStep 10: R2's NEW-VIEW for view 2 re-proposes b at order 51:")
    final_b = Prepare(2, 51, prepare_b.batch, "R2", reproposal=True)
    cert = r2.create_independent(O, flatten(2, 51), final_b.digestible())
    final_b = replace(final_b, certificate=cert)
    assert r0.verify(final_b.certificate, final_b.digestible())
    print("      R0 verifies and acknowledges; b executes at order 51 in")
    print("      view 2 on every correct replica.  Safety held throughout.")

    print("\nEpilogue: R1 can never again interfere with view 0 — its counter")
    print("is beyond [2|0], so certifying any view-0 order message fails:")
    try:
        r1.create_independent(O, flatten(0, 52), "late mischief")
    except CounterRegressionError as error:
        print(f"      {error}")


if __name__ == "__main__":
    main()
