#!/usr/bin/env python3
"""Mini evaluation: compare all protocol configurations on your machine.

A scaled-down rendition of the paper's Figure 5 experiments — one
saturation point per protocol, batched and unbatched — using the same
deployment harness the full benchmarks use.

Run with::

    python examples/throughput_comparison.py
"""

import time

from repro.experiments.protocol_common import PROTOCOL_LABELS, measure_point

MS = 1_000_000


def main():
    print(f"{'configuration':>14} {'batch':>6} {'kops/s':>10} {'latency':>10} {'CPU':>6}")
    for batch in (1, 16):
        for protocol in ("hybster-s", "hybster-x", "pbft", "hybrid-pbft", "minbft"):
            started = time.time()
            point = measure_point(
                protocol,
                batch_size=batch,
                rotation=(protocol not in ("minbft",)),
                measure_ns=30 * MS,
                load_factor=0.4,
            )
            print(
                f"{PROTOCOL_LABELS[protocol]:>14} {batch:>6} "
                f"{point.throughput_ops / 1e3:>10.1f} {point.latency_ms:>8.2f}ms "
                f"{point.replica_cpu_utilization * 100:>5.0f}%"
                f"   ({time.time() - started:.0f}s wall)"
            )
        print()
    print("expected shape: HybsterX on top, the sequential protocols")
    print("(HybsterS, MinBFT) at the bottom, batching helping everyone.")


if __name__ == "__main__":
    main()
