#!/usr/bin/env python3
"""TrInX in isolation: what a trusted counter subsystem gives you.

Walks through the §5.1 certificate types and demonstrates the security
properties the protocol builds on — equivocation prevention through
independent certificates, history disclosure through continuing ones,
and replay protection of sealed state.

Run with::

    python examples/trusted_counters.py
"""

from repro.errors import CounterRegressionError, ReplayProtectionError
from repro.trinx.enclave import EnclavePlatform
from repro.trinx.trinx import TrInX

SECRET = b"demo-group-secret-0000000000000!"


def main():
    platform = EnclavePlatform()
    alice = TrInX(platform, "alice/tss0", SECRET, num_counters=2)
    bob = TrInX(platform, "bob/tss0", SECRET, num_counters=2)

    print("1. Independent certificates prevent equivocation")
    cert = alice.create_independent(0, 100, "assign request A to slot 100")
    print(f"   alice certified slot 100: valid={bob.verify(cert, 'assign request A to slot 100')}")
    try:
        alice.create_independent(0, 100, "assign request B to slot 100")
    except CounterRegressionError as error:
        print(f"   second certificate for slot 100 refused: {error}")

    print("\n2. Continuing certificates expose the previous counter value")
    cont = alice.create_continuing(0, 200, "view-change to 200")
    print(f"   certificate reveals previous value {cont.previous_value} "
          f"(alice cannot hide that she reached slot 100)")
    assert bob.verify(cont, "view-change to 200")

    print("\n3. Trusted MACs: non-repudiable, without consuming counter values")
    mac1 = alice.create_trusted_mac(1, "checkpoint at order 50")
    mac2 = alice.create_trusted_mac(1, "checkpoint at order 100")
    print(f"   two trusted MACs verified: {bob.verify(mac1, 'checkpoint at order 50')}, "
          f"{bob.verify(mac2, 'checkpoint at order 100')}")
    forged = alice.create_trusted_mac(1, "checkpoint at order 50")
    print(f"   bob cannot pass alice's MAC off as his own: "
          f"{bob.verify(forged, 'checkpoint at order 51')}")

    print("\n4. Sealed state cannot be replayed to roll counters back")
    stale = alice.seal()
    alice.create_independent(0, 300, "progress to 300")
    alice.seal()  # newer version registered with the platform
    try:
        TrInX.launch(platform, stale)
    except ReplayProtectionError as error:
        print(f"   relaunch from stale state refused: {error}")

    print("\n5. Forgery without the group secret fails")
    mallory = TrInX(EnclavePlatform(), "alice/tss0", b"wrong-secret-00000000000000000!!", num_counters=2)
    fake = mallory.create_independent(0, 400, "fake proposal")
    print(f"   bob accepts mallory's forgery: {bob.verify(fake, 'fake proposal')}")


if __name__ == "__main__":
    main()
