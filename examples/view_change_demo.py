#!/usr/bin/env python3
"""Fault-tolerance demo: crash the leader, watch the view change.

Runs a HybsterX group under client load, partitions the leader replica
away mid-run, and shows the group electing a new leader (view 1) and
resuming service; after the partition heals, the old leader rejoins the
current view and catches up via state transfer.

Run with::

    python examples/view_change_demo.py
"""

from repro.clients.client import Client
from repro.clients.workload import NullWorkload
from repro.core.config import ReplicaGroupConfig
from repro.core.replica import build_group
from repro.services.counter import CounterService
from repro.sim.faults import Partition
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.process import Endpoint
from repro.sim.resources import Machine

MS = 1_000_000


def snapshot(label, replicas, clients):
    completed = sum(client.completed for client in clients)
    views = [replica.current_view for replica in replicas]
    progress = [replica.execution.next_order - 1 for replica in replicas]
    print(f"{label:>28}: completed={completed:6d} views={views} executed={progress}")
    return completed


def main():
    sim = Simulator()
    network = Network(sim)
    config = ReplicaGroupConfig(
        replica_ids=("r0", "r1", "r2"),
        num_pillars=2,
        checkpoint_interval=16,
        window_size=32,
    )
    machines = [Machine(sim, rid, cores=4) for rid in config.replica_ids]
    replicas = build_group(sim, network, machines, config, CounterService)

    client_machine = Machine(sim, "cl", cores=4)
    endpoint = Endpoint(sim, network, "cl")
    clients = [
        Client(endpoint, client_machine.allocate_thread(f"c{i}"), config, f"c{i}",
               NullWorkload(), window=2)
        for i in range(4)
    ]
    for client in clients:
        client.start()

    sim.run(until=300 * MS)
    before = snapshot("normal operation (t=300ms)", replicas, clients)

    print("\n*** crashing the leader r0 (network partition) ***\n")
    network.add_filter(Partition({"r0"}, start_ns=sim.now, end_ns=3_000 * MS))

    sim.run(until=2_000 * MS)
    after_crash = snapshot("after view change (t=2s)", replicas, clients)
    assert after_crash > before, "no progress after the view change!"
    assert any(replica.current_view >= 1 for replica in replicas[1:])

    print("\n*** partition heals at t=3s; r0 rejoins ***\n")
    sim.run(until=5_000 * MS)
    snapshot("after recovery (t=5s)", replicas, clients)

    # stop the load and let in-flight instances drain before comparing state
    for client in clients:
        client.stop()
    sim.run(until=6_000 * MS)

    r0 = replicas[0]
    print(f"\nr0 rejoined view {r0.current_view} "
          f"(view changes completed group-wide: "
          f"{[r.coordinator.view_changes_completed for r in replicas]})")
    assert r0.current_view >= 1, "the recovered replica never rejoined the view"
    live_states = {str(r.service.state_digestible()) for r in replicas[1:]}
    assert len(live_states) == 1, "live replicas diverged!"
    print("the two live replicas stayed consistent throughout; "
          "service never required r0.")


if __name__ == "__main__":
    main()
