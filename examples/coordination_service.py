#!/usr/bin/env python3
"""The §6.4 scenario: a replicated, ZooKeeper-inspired coordination service.

A group of clients uses the hierarchical namespace to implement a simple
coordination pattern — registering ephemeral-style worker entries under
a common parent and discovering each other — while the replication layer
(HybsterX) keeps every replica's namespace identical.

Run with::

    python examples/coordination_service.py
"""

from repro.clients.client import Client
from repro.clients.workload import Workload
from repro.core.config import ReplicaGroupConfig
from repro.core.replica import build_group
from repro.services.coordination import CoordinationService
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.process import Endpoint
from repro.sim.resources import Machine


class WorkerRegistration(Workload):
    """Each worker registers itself, then watches the group membership."""

    def __init__(self, worker_name: str):
        self.worker_name = worker_name

    def setup_operations(self):
        return [(("create", f"/workers/{self.worker_name}", 64), 64)]

    def next_operation(self, request_index):
        if request_index % 3 == 0:
            return ("children", "/workers"), 0
        if request_index % 3 == 1:
            return ("set", f"/workers/{self.worker_name}", 64), 64
        return ("get", f"/workers/{self.worker_name}"), 0


def main():
    sim = Simulator()
    network = Network(sim)
    config = ReplicaGroupConfig(
        replica_ids=("r0", "r1", "r2"),
        num_pillars=4,
        batch_size=8,
        checkpoint_interval=32,
        window_size=64,
    )
    machines = [Machine(sim, rid, cores=4) for rid in config.replica_ids]
    replicas = build_group(sim, network, machines, config, CoordinationService)

    client_machine = Machine(sim, "workers", cores=4)
    endpoint = Endpoint(sim, network, "workers")

    # bootstrap the parent node with a dedicated administrative client
    class MakeRoot(Workload):
        def setup_operations(self):
            return [(("create", "/workers", 0), 0)]

        def next_operation(self, request_index):
            return ("exists", "/workers"), 0

    admin = Client(endpoint, client_machine.allocate_thread("admin"), config, "admin", MakeRoot(), window=1)
    admin.start()
    sim.run(until=5_000_000)

    workers = []
    for i in range(6):
        workload = WorkerRegistration(f"worker-{i}")
        worker = Client(
            endpoint, client_machine.allocate_thread(f"w{i}"), config, f"w{i}", workload, window=2
        )
        workers.append(worker)
        worker.start()

    sim.run(until=80_000_000)

    total = sum(worker.completed for worker in workers)
    print(f"{len(workers)} workers completed {total} coordination operations")
    for worker in workers[:3]:
        print(f"  {worker.client_id}: {worker.completed} ops, "
              f"mean latency {worker.stats.mean_ms:.3f} ms")

    # read the final membership through one more replicated read
    service = replicas[0].service
    membership = service.execute(("children", "/workers"), "inspector")
    print(f"\nregistered workers (via r0's state machine): {membership[1:]}")

    states = {str(replica.service.state_digestible()) for replica in replicas}
    assert len(states) == 1, "replicas diverged!"
    print("all replicas hold the identical namespace.")


if __name__ == "__main__":
    main()
