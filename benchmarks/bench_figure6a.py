"""Figure 6a — latency vs throughput, 0-byte payloads, fixed leader."""

from repro.experiments import figure6a


def test_figure6a_shapes(once):
    result = once(figure6a.run, "quick")

    low_load = 0.05
    x_lat = result.series_by_label("HybsterX ms").value_at(low_load)
    s_lat = result.series_by_label("HybsterS ms").value_at(low_load)
    pbft_lat = result.series_by_label("PBFTcop ms").value_at(low_load)
    hybrid_lat = result.series_by_label("HybridPBFT ms").value_at(low_load)

    # all configurations answer in well under 2 ms at low load (paper: 0.5-0.6)
    for latency in (x_lat, s_lat, pbft_lat, hybrid_lat):
        assert latency < 2.0

    # HybsterX's two-phase ordering needs one message delay less end-to-end
    # (four vs five): visibly lower latency than the PBFT variants
    assert x_lat < pbft_lat
    assert x_lat < hybrid_lat

    # saturation order at full load: HybsterX highest, HybsterS lowest
    full_load = 1.0
    x_tp = result.series_by_label("HybsterX").value_at(full_load)
    s_tp = result.series_by_label("HybsterS").value_at(full_load)
    pbft_tp = result.series_by_label("PBFTcop").value_at(full_load)
    assert x_tp > pbft_tp
    assert x_tp > 1.2 * s_tp
