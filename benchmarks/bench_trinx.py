"""§6.1 headline: single TrInX instance vs the FPGA-based CASH."""

from repro.experiments import trinx_micro


def test_trinx_single_instance_vs_cash(once):
    result = once(trinx_micro.run, "quick")
    trinx_rate = result.series_by_label("measured").value_at("TrInX")
    cash_rate = result.series_by_label("measured").value_at("CASH")
    # paper: 240,000 vs 17,500 certifications/s
    assert 200_000 < trinx_rate < 280_000
    assert 15_000 < cash_rate < 25_000
    assert trinx_rate / cash_rate > 10
