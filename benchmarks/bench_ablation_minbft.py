"""Ablation — HybsterS vs MinBFT (§6, "Subjects").

The paper argues HybsterS always reaches at least MinBFT's performance:
MinBFT must funnel *all* incoming messages through one in-order thread
(its single USIG counter timeline), while HybsterS separates ordering,
execution, and client handling.  MinBFT's published best: 63 kops/s.
"""

from repro.experiments.protocol_common import measure_point

MILLISECOND = 1_000_000


def test_hybster_s_at_least_matches_minbft(once):
    def run():
        hybster_s = measure_point(
            "hybster-s", batch_size=16, rotation=False,
            num_clients=400, client_window=8, measure_ns=40 * MILLISECOND,
        )
        minbft = measure_point(
            "minbft", batch_size=16, rotation=False,
            num_clients=400, client_window=8, measure_ns=40 * MILLISECOND,
        )
        return hybster_s.throughput_ops, minbft.throughput_ops

    hybster_s_tp, minbft_tp = once(run)
    assert hybster_s_tp >= 0.95 * minbft_tp


def test_minbft_single_thread_is_the_bottleneck(once):
    def run():
        one_core = measure_point(
            "minbft", cores=1, batch_size=16, rotation=False,
            num_clients=200, client_window=8, measure_ns=40 * MILLISECOND,
        )
        four_cores = measure_point(
            "minbft", cores=4, batch_size=16, rotation=False,
            num_clients=200, client_window=8, measure_ns=40 * MILLISECOND,
        )
        return one_core.throughput_ops, four_cores.throughput_ops

    one_tp, four_tp = once(run)
    # extra cores buy MinBFT essentially nothing
    assert four_tp < 1.5 * max(one_tp, 1.0)
