"""Figure 5b — throughput, 0 bytes, unbatched, rotating leader."""

from repro.experiments import figure5b


def test_figure5b_shapes(once):
    result = once(figure5b.run, "quick")

    hybster_x = result.series_by_label("HybsterX").value_at(4)
    hybster_s = result.series_by_label("HybsterS").value_at(4)
    hybrid_pbft = result.series_by_label("HybridPBFT").value_at(4)
    pbft = result.series_by_label("PBFTcop").value_at(4)

    # paper ordering at 4 cores: HybsterX > PBFTcop > HybridPBFT > HybsterS
    assert hybster_x > pbft > hybrid_pbft > hybster_s

    # HybridPBFT is ~30% slower than PBFTcop when every request is its own
    # instance (lots of small messages, each paying the enclave entry)
    assert 0.5 < hybrid_pbft / pbft < 0.95

    # the parallel protocol clearly outruns the sequential basic protocol
    assert hybster_x / hybster_s > 2.0
