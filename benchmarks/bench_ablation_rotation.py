"""Ablation — rotating vs fixed leader (§6.2 vs §6.3 configurations)."""

from repro.experiments.protocol_common import measure_point

MILLISECOND = 1_000_000


def test_rotation_spreads_the_proposal_load(once):
    def run():
        fixed = measure_point(
            "hybster-x", batch_size=1, rotation=False,
            num_clients=300, client_window=8, measure_ns=40 * MILLISECOND,
        )
        rotating = measure_point(
            "hybster-x", batch_size=1, rotation=True,
            num_clients=300, client_window=8, measure_ns=40 * MILLISECOND,
        )
        return fixed, rotating

    fixed, rotating = once(run)
    # with a fixed leader one replica ingests every request; rotation
    # divides that work across the group and wins under small requests
    assert rotating.throughput_ops > fixed.throughput_ops

    # the proposal counters confirm the load distribution
    fixed_proposals = [stats["proposals"] for stats in fixed.replica_stats]
    rotating_proposals = [stats["proposals"] for stats in rotating.replica_stats]
    assert sum(1 for count in fixed_proposals if count > 0) == 1
    assert all(count > 0 for count in rotating_proposals)
