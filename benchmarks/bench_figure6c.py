"""Figure 6c — coordination service throughput vs read rate."""

from repro.experiments import figure6c


def test_figure6c_shapes(once):
    result = once(figure6c.run, "quick")

    hybster_x = result.series_by_label("HybsterX")
    hybster_s = result.series_by_label("HybsterS")
    hybrid_pbft = result.series_by_label("HybridPBFT")
    pbft = result.series_by_label("PBFTcop")

    for read_rate in (0.0, 0.5, 1.0):
        x = hybster_x.value_at(read_rate)
        # paper: HybsterX above HybridPBFT, further above PBFTcop, and a
        # multiple of its own sequential basic protocol
        assert x >= 0.95 * hybrid_pbft.value_at(read_rate)
        assert x > pbft.value_at(read_rate) * 0.95
        assert x > 1.2 * hybster_s.value_at(read_rate)

    # strong consistency: no read optimization, so the curve is roughly
    # flat in the read fraction (within a factor of two across the sweep)
    ys = hybster_x.y_values()
    assert max(ys) / max(min(ys), 1e-9) < 2.0
