"""Shared configuration for the figure-reproduction benchmarks.

Each benchmark regenerates one table/figure of the paper at ``quick``
scale (seconds to a few minutes of wall time each) and asserts the
*shape* the paper reports — who wins, by roughly what factor, where the
crossovers fall.  Absolute numbers live in EXPERIMENTS.md.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the measured callable exactly once (simulations are deterministic)."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
