"""Ablation — two-phase vs three-phase ordering (§4.3).

Hybster's two-phase ordering (PREPARE/COMMIT) saves one all-to-all round
over the PBFT lineage.  Comparing HybsterX against HybridPBFT isolates
the phase count reasonably well: both certify with TrInX trusted
counters/MACs and use the same parallelization scheme (they differ in
group size, 3 vs 4 — inherent to the fault models).
"""

from repro.experiments.protocol_common import measure_point

MILLISECOND = 1_000_000


def test_two_phase_saves_a_message_delay(once):
    def run():
        two_phase = measure_point(
            "hybster-x", batch_size=16, rotation=False, num_clients=8,
            client_window=1, measure_ns=30 * MILLISECOND,
        )
        three_phase = measure_point(
            "hybrid-pbft", batch_size=16, rotation=False, num_clients=8,
            client_window=1, measure_ns=30 * MILLISECOND,
        )
        return two_phase.latency_ms, three_phase.latency_ms

    two_ms, three_ms = once(run)
    # four message delays end-to-end vs five: a clear latency gap at low load
    assert two_ms < three_ms
    # roughly the one-hop difference the paper's ~20 % figure reflects
    assert 0.6 < two_ms / three_ms < 0.98


def test_two_phase_sends_fewer_bytes(once):
    def run():
        two_phase = measure_point(
            "hybster-x", batch_size=1, rotation=False, num_clients=32,
            client_window=2, measure_ns=30 * MILLISECOND,
        )
        three_phase = measure_point(
            "hybrid-pbft", batch_size=1, rotation=False, num_clients=32,
            client_window=2, measure_ns=30 * MILLISECOND,
        )
        return (
            two_phase.network_bytes / max(1, two_phase.completed),
            three_phase.network_bytes / max(1, three_phase.completed),
        )

    two_bytes, three_bytes = once(run)
    # the extra phase (and the extra replica) costs network bandwidth
    assert two_bytes < three_bytes
