"""§6.2 headline — HybsterX is the first hybrid protocol that scales.

The paper reports speedups of 3.77× (rotation) / 3.91× (fixed leader)
from one core to four in the batched setup.  This bench measures the
batched HybsterX configuration at 1 and 4 cores directly.
"""

from repro.experiments.protocol_common import measure_point

MILLISECOND = 1_000_000


def _hybster_x_at(cores: int) -> float:
    point = measure_point(
        "hybster-x",
        cores=cores,
        batch_size=16,
        rotation=True,
        measure_ns=40 * MILLISECOND,
        load_factor=0.5 * max(1, cores) / 4,
    )
    return point.throughput_ops


def test_hybster_x_scales_with_cores(once):
    def run():
        return _hybster_x_at(1), _hybster_x_at(4)

    one_core, four_cores = once(run)
    speedup = four_cores / one_core
    # the defining property: a hybrid protocol that scales at all
    # (paper: 3.77x; the simulated testbed lands in the same region)
    assert speedup > 2.0


def test_hybster_s_does_not_scale(once):
    def run():
        a = measure_point("hybster-s", cores=1, batch_size=1, rotation=True,
                          measure_ns=40 * MILLISECOND, load_factor=0.5).throughput_ops
        b = measure_point("hybster-s", cores=4, batch_size=1, rotation=True,
                          measure_ns=40 * MILLISECOND, load_factor=0.5).throughput_ops
        return a, b

    one_core, four_cores = once(run)
    # the sequential basic protocol gains little from extra cores
    assert four_cores / one_core < 2.0
