"""Figure 5c — throughput, 0 bytes, batched, rotating leader."""

from repro.experiments import figure5c


def test_figure5c_shapes(once):
    result = once(figure5c.run, "quick")

    hybster_x = result.series_by_label("HybsterX").value_at(4)
    hybster_s = result.series_by_label("HybsterS").value_at(4)
    hybrid_pbft = result.series_by_label("HybridPBFT").value_at(4)
    pbft = result.series_by_label("PBFTcop").value_at(4)

    # batching amortizes ordering costs: everyone gains substantially
    assert hybster_x > 400  # kops/s
    assert hybster_s > 200

    # HybsterX stays on top; HybridPBFT catches up with PBFTcop
    assert hybster_x >= pbft
    assert hybster_x > hybster_s
    assert 0.9 < hybrid_pbft / pbft < 1.2

    # the paper's headline: batched HybsterX beats the sequential protocol
    # clearly (2.5-4x speedup region)
    assert hybster_x / hybster_s > 1.2
