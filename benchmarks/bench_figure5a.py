"""Figure 5a — trusted-subsystem certification throughput vs cores."""

from repro.experiments import figure5a


def test_figure5a_shapes(once):
    result = once(figure5a.run, "quick")

    trinx = result.series_by_label("TrInX (native)")
    jni = result.series_by_label("TrInX (JNI)")
    multi = result.series_by_label("Multi-TrInX")
    tcrypto = result.series_by_label("TCrypto")
    openssl = result.series_by_label("OpenSSL")
    java = result.series_by_label("Java")
    cash = result.series_by_label("CASH")

    # TrInX reaches ~1.3M certs/s on four cores and scales by multiplication
    assert 1_000_000 < trinx.value_at(4) < 1_500_000
    assert trinx.value_at(4) > 3.5 * trinx.value_at(1)

    # the JNI crossing costs a little, but not much
    assert 0.85 < jni.value_at(4) / trinx.value_at(4) < 1.0

    # Multi-TrInX performs comparably up to 3 cores, falls back at 4
    assert multi.value_at(3) == trinx.value_at(3)
    assert multi.value_at(4) < 0.9 * trinx.value_at(4)

    # insecure libraries scale linearly; OpenSSL > Java > TCrypto at 32B
    for series in (tcrypto, openssl, java):
        assert series.value_at(4) > 3.8 * series.value_at(1)
    assert openssl.value_at(4) > java.value_at(4) > tcrypto.value_at(4)

    # CASH's single channel does not scale with cores
    assert cash.value_at(4) < 1.5 * cash.value_at(1)
    assert cash.value_at(4) < 30_000
