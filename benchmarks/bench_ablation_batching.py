"""Ablation — batching factor sweep (§6.2's unbatched/batched contrast)."""

from repro.experiments.protocol_common import measure_point

MILLISECOND = 1_000_000


def test_batching_amortizes_ordering_costs(once):
    def run():
        results = {}
        for batch in (1, 4, 16):
            point = measure_point(
                "hybster-x", batch_size=batch, rotation=False,
                num_clients=300, client_window=16, measure_ns=40 * MILLISECOND,
            )
            results[batch] = point.throughput_ops
        return results

    by_batch = once(run)
    # throughput grows monotonically with the batch size under saturation
    assert by_batch[4] > by_batch[1]
    assert by_batch[16] >= by_batch[4] * 0.95
    # the paper's unbatched/batched contrast is a multiple, not a few percent
    assert by_batch[16] / by_batch[1] > 1.5


def test_batching_reduces_certificates_per_request(once):
    def run():
        unbatched = measure_point(
            "hybster-x", batch_size=1, rotation=False,
            num_clients=200, client_window=8, measure_ns=30 * MILLISECOND,
        )
        batched = measure_point(
            "hybster-x", batch_size=16, rotation=False,
            num_clients=200, client_window=8, measure_ns=30 * MILLISECOND,
        )

        def calls_per_request(point):
            calls = sum(stats["enclave_calls"] for stats in point.replica_stats)
            return calls / max(1, point.completed)

        return calls_per_request(unbatched), calls_per_request(batched)

    unbatched_calls, batched_calls = once(run)
    assert batched_calls < unbatched_calls / 2
