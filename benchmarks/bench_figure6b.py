"""Figure 6b — latency vs throughput, 1-KiB payloads, fixed leader."""

from repro.experiments import figure6a, figure6b


def test_figure6b_shapes(once):
    result = once(figure6b.run, "quick")

    low_load, full_load = 0.05, 1.0

    # HybsterX keeps its latency advantage with payloads
    x_lat = result.series_by_label("HybsterX ms").value_at(low_load)
    pbft_lat = result.series_by_label("PBFTcop ms").value_at(low_load)
    assert x_lat < pbft_lat

    # saturation order preserved: HybsterX > PBFTcop > HybsterS
    x_tp = result.series_by_label("HybsterX").value_at(full_load)
    s_tp = result.series_by_label("HybsterS").value_at(full_load)
    pbft_tp = result.series_by_label("PBFTcop").value_at(full_load)
    assert x_tp > pbft_tp
    assert x_tp > s_tp


def test_payloads_lower_throughput(once):
    """Paper: the 1 KiB numbers are lower but comparable to the 0 B ones."""

    def run():
        zero = figure6a.run("quick")
        kilo = figure6b.run("quick")
        return (
            zero.series_by_label("HybsterX").value_at(1.0),
            kilo.series_by_label("HybsterX").value_at(1.0),
        )

    zero_tp, kilo_tp = once(run)
    assert kilo_tp < zero_tp
    assert kilo_tp > 0.05 * zero_tp
