"""Record fault-free throughput baselines as ``BENCH_*.json``.

Six artifacts, all 3-replica fault-free Hybster runs:

* ``BENCH_fig5a_sim.json`` — simulated hybster-s and hybster-x
  throughput/latency from ``run_benchmark`` (the Figure-5a operating
  point: null requests, no payload; deterministic, virtual time, so
  these numbers only move when the model moves);
* ``BENCH_live_3replica.json`` — the live TCP transport running the
  whole group in one process (wall-clock numbers; machine-dependent,
  recorded to make order-of-magnitude regressions visible, not for
  exact comparison);
* ``BENCH_gateway_sim.json`` — open-loop Poisson load through the
  gateway tier in the simulator (deterministic: goodput and the
  p50/p99/p999 SLO trio reproduce bit-for-bit under the fixed seed);
* ``BENCH_gateway_live.json`` — the same gateway configuration over
  live localhost TCP (wall-clock, machine-dependent);
* ``BENCH_batching_sim.json`` — the batching sweep (batch sizes 1, 8,
  16, 64) under saturation, once with the paper's modelled "java"
  crypto profile and once with the "real" profile (HMAC-SHA256 timed on
  this host), so the batch-16-vs-batch-1 speedup is recorded under both
  cost models;
* ``BENCH_batching_live.json`` — the same batch sizes over live
  localhost TCP, plus the **sim-vs-live divergence** metric: for every
  batch size the simulator re-runs the exact live configuration under
  each crypto profile and reports live/sim throughput ratios.  With the
  "real" profile, divergence is a statement about the *model*, not
  about crypto constants.

Every run records mean *and* p50/p99/p999 latency — tail behaviour is
the point of the open-loop artifacts, and the closed-loop ones get the
percentiles for free.

Run from the repository root::

    PYTHONPATH=src python benchmarks/record_baselines.py [--out-dir .]

CI and later PRs compare fresh runs against the committed files to
catch throughput collapses (>2x shifts), not single-digit drift.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import sys

from repro.crypto.costs import resolve_profile
from repro.gateway.config import GatewayConfig
from repro.gateway.runner import run_gateway_live, run_gateway_sim
from repro.runtime.benchmark import run_benchmark
from repro.runtime.deployment import DeploymentSpec, build_deployment
from repro.runtime.live import run_live

SIM_PROTOCOLS = ("hybster-s", "hybster-x")
LIVE_PROTOCOLS = ("hybster-s", "hybster-x")
GATEWAY_SEED = 1702
MILLISECOND = 1_000_000
BATCH_SIZES = (1, 8, 16, 64)
CRYPTO_PROFILES = ("java", "real")


def _sim_spec(protocol: str) -> DeploymentSpec:
    return DeploymentSpec(
        protocol=protocol,
        cores=4,
        service="null",
        batch_size=1,
        num_clients=16,
        client_window=4,
    )


def record_sim() -> dict:
    runs = []
    for protocol in SIM_PROTOCOLS:
        result = run_benchmark(build_deployment(_sim_spec(protocol)))
        runs.append(
            {
                "protocol": protocol,
                "replicas": 3,
                "throughput_ops": round(result.throughput_ops, 1),
                "mean_latency_ms": round(result.latency_ms, 4),
                "latency_ms": result.latency.percentiles_ms(),
                "completed": result.completed,
                "measure_ns": result.measure_ns,
                "replica_cpu_utilization": round(result.replica_cpu_utilization, 4),
            }
        )
    return {
        "benchmark": "fig5a_sim",
        "description": "fault-free simulated 3-replica throughput "
        "(null service, 16 clients, window 4)",
        "deterministic": True,
        "runs": runs,
    }


def record_live() -> dict:
    runs = []
    for protocol in LIVE_PROTOCOLS:
        spec = DeploymentSpec(
            protocol=protocol,
            cores=2,
            service="null",
            num_clients=4,
            client_window=8,
            client_machines=1,
        )
        result = asyncio.run(run_live(spec, target_requests=2000, max_duration_s=30.0))
        runs.append(
            {
                "protocol": protocol,
                "replicas": 3,
                "throughput_ops": round(result.throughput_ops, 1),
                "mean_latency_ms": (
                    round(result.latency.mean_ms, 4) if result.latency.count else None
                ),
                "latency_ms": (
                    result.latency.percentiles_ms() if result.latency.count else None
                ),
                "completed": result.completed,
                "elapsed_s": round(result.elapsed_s, 3),
                "transport_sent": result.transport_sent,
            }
        )
    return {
        "benchmark": "live_3replica",
        "description": "fault-free live (localhost TCP) 3-replica throughput "
        "(null service, 4 clients, window 8, single process)",
        "deterministic": False,
        "machine": {
            "python": platform.python_version(),
            "system": platform.system(),
            "cpus": os.cpu_count(),
        },
        "runs": runs,
    }


def _gateway_spec(protocol: str, mode: str) -> DeploymentSpec:
    return DeploymentSpec(
        protocol=protocol,
        cores=4 if mode == "sim" else 2,
        service="null",
        num_clients=0,
        client_machines=1,
        seed=GATEWAY_SEED,
        gateway=GatewayConfig(
            sessions=200,
            arrivals="poisson",
            rate_ops=4000.0 if mode == "sim" else 1000.0,
            queue_capacity=1024,
            max_outstanding=64,
        ),
    )


def record_gateway_sim() -> dict:
    runs = []
    for protocol in SIM_PROTOCOLS:
        result = run_gateway_sim(_gateway_spec(protocol, "sim"), duration_ms=500)
        runs.append({"replicas": 3, **result.to_json()})
    return {
        "benchmark": "gateway_sim",
        "description": "open-loop Poisson load (200 sessions) through one "
        "gateway node, simulated 3-replica group",
        "deterministic": True,
        "seed": GATEWAY_SEED,
        "runs": runs,
    }


def record_gateway_live() -> dict:
    runs = []
    for protocol in LIVE_PROTOCOLS:
        result = run_gateway_live(_gateway_spec(protocol, "live"), duration_s=5.0)
        runs.append({"replicas": 3, **result.to_json()})
    return {
        "benchmark": "gateway_live",
        "description": "open-loop Poisson load (200 sessions) through one "
        "gateway node, live localhost TCP 3-replica group",
        "deterministic": False,
        "seed": GATEWAY_SEED,
        "machine": {
            "python": platform.python_version(),
            "system": platform.system(),
            "cpus": os.cpu_count(),
        },
        "runs": runs,
    }


def _batching_sim_spec(batch_size: int, crypto: str) -> DeploymentSpec:
    # saturation: enough closed-loop load that batching is the bottleneck
    return DeploymentSpec(
        protocol="hybster-x",
        cores=4,
        service="null",
        batch_size=batch_size,
        crypto_profile=crypto,
        num_clients=300,
        client_window=16,
    )


def _batching_live_spec(batch_size: int, crypto: str = "java") -> DeploymentSpec:
    # smaller population: one process hosts the whole group plus clients
    return DeploymentSpec(
        protocol="hybster-x",
        cores=2,
        service="null",
        batch_size=batch_size,
        crypto_profile=crypto,
        num_clients=8,
        client_window=16,
        client_machines=1,
    )


def record_batching_sim(
    batch_sizes=BATCH_SIZES, crypto_profiles=CRYPTO_PROFILES, measure_ns=40 * MILLISECOND
) -> dict:
    runs = []
    for crypto in crypto_profiles:
        profile = resolve_profile(crypto)
        for batch in batch_sizes:
            result = run_benchmark(
                build_deployment(_batching_sim_spec(batch, crypto)),
                warmup_ns=30 * MILLISECOND,
                measure_ns=measure_ns,
            )
            runs.append(
                {
                    "protocol": "hybster-x",
                    "replicas": 3,
                    "crypto": crypto,
                    "crypto_base_ns": profile.base_ns,
                    "crypto_per_byte_ns": round(profile.per_byte_ns, 4),
                    "batch_size": batch,
                    "throughput_ops": round(result.throughput_ops, 1),
                    "mean_latency_ms": round(result.latency_ms, 4),
                    "latency_ms": result.latency.percentiles_ms(),
                    "completed": result.completed,
                }
            )
    return {
        "benchmark": "batching_sim",
        "description": "simulated batching sweep under saturation "
        "(hybster-x, null service, 300 clients, window 16)",
        "deterministic": True,
        "runs": runs,
    }


def record_batching_live(
    batch_sizes=BATCH_SIZES,
    crypto_profiles=CRYPTO_PROFILES,
    target_requests=3000,
    max_duration_s=20.0,
    sim_measure_ns=40 * MILLISECOND,
) -> dict:
    runs = []
    divergence = []
    for batch in batch_sizes:
        live = asyncio.run(
            run_live(
                _batching_live_spec(batch),
                target_requests=target_requests,
                max_duration_s=max_duration_s,
            )
        )
        live_ops = live.throughput_ops
        runs.append(
            {
                "protocol": "hybster-x",
                "replicas": 3,
                "batch_size": batch,
                "throughput_ops": round(live_ops, 1),
                "mean_latency_ms": (
                    round(live.latency.mean_ms, 4) if live.latency.count else None
                ),
                "latency_ms": (
                    live.latency.percentiles_ms() if live.latency.count else None
                ),
                "completed": live.completed,
                "elapsed_s": round(live.elapsed_s, 3),
            }
        )
        # Re-run the *same* configuration in the simulator under each cost
        # profile: live/sim throughput ratio is the model-fidelity metric.
        for crypto in crypto_profiles:
            sim = run_benchmark(
                build_deployment(_batching_live_spec(batch, crypto)),
                warmup_ns=30 * MILLISECOND,
                measure_ns=sim_measure_ns,
            )
            sim_ops = sim.throughput_ops
            divergence.append(
                {
                    "batch_size": batch,
                    "crypto": crypto,
                    "sim_throughput_ops": round(sim_ops, 1),
                    "live_throughput_ops": round(live_ops, 1),
                    "live_over_sim": round(live_ops / sim_ops, 4) if sim_ops else None,
                    "relative_error": (
                        round(abs(sim_ops - live_ops) / live_ops, 4) if live_ops else None
                    ),
                }
            )
    return {
        "benchmark": "batching_live",
        "description": "live (localhost TCP) batching sweep plus sim-vs-live "
        "divergence (hybster-x, null service, 8 clients, window 16)",
        "deterministic": False,
        "machine": {
            "python": platform.python_version(),
            "system": platform.system(),
            "cpus": os.cpu_count(),
        },
        "runs": runs,
        "divergence": divergence,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", default=".")
    parser.add_argument("--skip-live", action="store_true",
                        help="record only the deterministic sim baselines")
    parser.add_argument("--only", choices=("all", "batching"), default="all",
                        help="record only a subset of the artifacts")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke profile: batch sizes 1/16, short runs")
    parser.add_argument("--crypto", choices=("java", "real", "both"), default="both",
                        help="crypto cost profiles for the batching sweep")
    args = parser.parse_args(argv)

    crypto_profiles = CRYPTO_PROFILES if args.crypto == "both" else (args.crypto,)
    batch_sizes = (1, 16) if args.quick else BATCH_SIZES
    sim_measure_ns = (15 if args.quick else 40) * MILLISECOND
    live_targets = 600 if args.quick else 3000
    live_cap_s = 10.0 if args.quick else 20.0

    artifacts = {}
    if args.only == "all":
        artifacts["BENCH_fig5a_sim.json"] = record_sim()
        artifacts["BENCH_gateway_sim.json"] = record_gateway_sim()
    artifacts["BENCH_batching_sim.json"] = record_batching_sim(
        batch_sizes=batch_sizes, crypto_profiles=crypto_profiles,
        measure_ns=sim_measure_ns,
    )
    if not args.skip_live:
        if args.only == "all":
            artifacts["BENCH_live_3replica.json"] = record_live()
            artifacts["BENCH_gateway_live.json"] = record_gateway_live()
        artifacts["BENCH_batching_live.json"] = record_batching_live(
            batch_sizes=batch_sizes, crypto_profiles=crypto_profiles,
            target_requests=live_targets, max_duration_s=live_cap_s,
            sim_measure_ns=sim_measure_ns,
        )

    os.makedirs(args.out_dir, exist_ok=True)
    for name, payload in artifacts.items():
        path = os.path.join(args.out_dir, name)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        for run in payload["runs"]:
            rate = run.get("throughput_ops", run.get("goodput_ops", 0.0))
            latency = run.get("latency_ms") or {}
            tag = run["protocol"]
            if "batch_size" in run:
                tag += f" b={run['batch_size']}"
            if "crypto" in run:
                tag += f" {run['crypto']}"
            print(
                f"{name}: {tag} {rate:.0f} ops/s, "
                f"p50/p99/p999 {latency.get('p50')}/{latency.get('p99')}/"
                f"{latency.get('p999')} ms"
            )
        for entry in payload.get("divergence", ()):
            print(
                f"{name}: divergence b={entry['batch_size']} {entry['crypto']}: "
                f"live/sim {entry['live_over_sim']}"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
