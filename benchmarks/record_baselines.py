"""Record fault-free throughput baselines as ``BENCH_*.json``.

Four artifacts, all 3-replica fault-free Hybster runs:

* ``BENCH_fig5a_sim.json`` — simulated hybster-s and hybster-x
  throughput/latency from ``run_benchmark`` (the Figure-5a operating
  point: null requests, no payload; deterministic, virtual time, so
  these numbers only move when the model moves);
* ``BENCH_live_3replica.json`` — the live TCP transport running the
  whole group in one process (wall-clock numbers; machine-dependent,
  recorded to make order-of-magnitude regressions visible, not for
  exact comparison);
* ``BENCH_gateway_sim.json`` — open-loop Poisson load through the
  gateway tier in the simulator (deterministic: goodput and the
  p50/p99/p999 SLO trio reproduce bit-for-bit under the fixed seed);
* ``BENCH_gateway_live.json`` — the same gateway configuration over
  live localhost TCP (wall-clock, machine-dependent).

Every run records mean *and* p50/p99/p999 latency — tail behaviour is
the point of the open-loop artifacts, and the closed-loop ones get the
percentiles for free.

Run from the repository root::

    PYTHONPATH=src python benchmarks/record_baselines.py [--out-dir .]

CI and later PRs compare fresh runs against the committed files to
catch throughput collapses (>2x shifts), not single-digit drift.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import sys

from repro.gateway.config import GatewayConfig
from repro.gateway.runner import run_gateway_live, run_gateway_sim
from repro.runtime.benchmark import run_benchmark
from repro.runtime.deployment import DeploymentSpec, build_deployment
from repro.runtime.live import run_live

SIM_PROTOCOLS = ("hybster-s", "hybster-x")
LIVE_PROTOCOLS = ("hybster-s", "hybster-x")
GATEWAY_SEED = 1702


def _sim_spec(protocol: str) -> DeploymentSpec:
    return DeploymentSpec(
        protocol=protocol,
        cores=4,
        service="null",
        batch_size=1,
        num_clients=16,
        client_window=4,
    )


def record_sim() -> dict:
    runs = []
    for protocol in SIM_PROTOCOLS:
        result = run_benchmark(build_deployment(_sim_spec(protocol)))
        runs.append(
            {
                "protocol": protocol,
                "replicas": 3,
                "throughput_ops": round(result.throughput_ops, 1),
                "mean_latency_ms": round(result.latency_ms, 4),
                "latency_ms": result.latency.percentiles_ms(),
                "completed": result.completed,
                "measure_ns": result.measure_ns,
                "replica_cpu_utilization": round(result.replica_cpu_utilization, 4),
            }
        )
    return {
        "benchmark": "fig5a_sim",
        "description": "fault-free simulated 3-replica throughput "
        "(null service, 16 clients, window 4)",
        "deterministic": True,
        "runs": runs,
    }


def record_live() -> dict:
    runs = []
    for protocol in LIVE_PROTOCOLS:
        spec = DeploymentSpec(
            protocol=protocol,
            cores=2,
            service="null",
            num_clients=4,
            client_window=8,
            client_machines=1,
        )
        result = asyncio.run(run_live(spec, target_requests=2000, max_duration_s=30.0))
        runs.append(
            {
                "protocol": protocol,
                "replicas": 3,
                "throughput_ops": round(result.throughput_ops, 1),
                "mean_latency_ms": (
                    round(result.latency.mean_ms, 4) if result.latency.count else None
                ),
                "latency_ms": (
                    result.latency.percentiles_ms() if result.latency.count else None
                ),
                "completed": result.completed,
                "elapsed_s": round(result.elapsed_s, 3),
                "transport_sent": result.transport_sent,
            }
        )
    return {
        "benchmark": "live_3replica",
        "description": "fault-free live (localhost TCP) 3-replica throughput "
        "(null service, 4 clients, window 8, single process)",
        "deterministic": False,
        "machine": {
            "python": platform.python_version(),
            "system": platform.system(),
            "cpus": os.cpu_count(),
        },
        "runs": runs,
    }


def _gateway_spec(protocol: str, mode: str) -> DeploymentSpec:
    return DeploymentSpec(
        protocol=protocol,
        cores=4 if mode == "sim" else 2,
        service="null",
        num_clients=0,
        client_machines=1,
        seed=GATEWAY_SEED,
        gateway=GatewayConfig(
            sessions=200,
            arrivals="poisson",
            rate_ops=4000.0 if mode == "sim" else 1000.0,
            queue_capacity=1024,
            max_outstanding=64,
        ),
    )


def record_gateway_sim() -> dict:
    runs = []
    for protocol in SIM_PROTOCOLS:
        result = run_gateway_sim(_gateway_spec(protocol, "sim"), duration_ms=500)
        runs.append({"replicas": 3, **result.to_json()})
    return {
        "benchmark": "gateway_sim",
        "description": "open-loop Poisson load (200 sessions) through one "
        "gateway node, simulated 3-replica group",
        "deterministic": True,
        "seed": GATEWAY_SEED,
        "runs": runs,
    }


def record_gateway_live() -> dict:
    runs = []
    for protocol in LIVE_PROTOCOLS:
        result = run_gateway_live(_gateway_spec(protocol, "live"), duration_s=5.0)
        runs.append({"replicas": 3, **result.to_json()})
    return {
        "benchmark": "gateway_live",
        "description": "open-loop Poisson load (200 sessions) through one "
        "gateway node, live localhost TCP 3-replica group",
        "deterministic": False,
        "seed": GATEWAY_SEED,
        "machine": {
            "python": platform.python_version(),
            "system": platform.system(),
            "cpus": os.cpu_count(),
        },
        "runs": runs,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", default=".")
    parser.add_argument("--skip-live", action="store_true",
                        help="record only the deterministic sim baselines")
    args = parser.parse_args(argv)

    artifacts = {
        "BENCH_fig5a_sim.json": record_sim(),
        "BENCH_gateway_sim.json": record_gateway_sim(),
    }
    if not args.skip_live:
        artifacts["BENCH_live_3replica.json"] = record_live()
        artifacts["BENCH_gateway_live.json"] = record_gateway_live()

    for name, payload in artifacts.items():
        path = os.path.join(args.out_dir, name)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        for run in payload["runs"]:
            rate = run.get("throughput_ops", run.get("goodput_ops", 0.0))
            latency = run.get("latency_ms") or {}
            print(
                f"{name}: {run['protocol']} {rate:.0f} ops/s, "
                f"p50/p99/p999 {latency.get('p50')}/{latency.get('p99')}/"
                f"{latency.get('p999')} ms"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
