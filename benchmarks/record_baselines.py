"""Record fault-free throughput baselines as ``BENCH_*.json``.

Two artifacts, both 3-replica fault-free Hybster runs (the Figure-5a
operating point: null requests, no payload):

* ``BENCH_fig5a_sim.json`` — simulated hybster-s and hybster-x
  throughput/latency from ``run_benchmark`` (deterministic, virtual
  time, so these numbers only move when the model moves);
* ``BENCH_live_3replica.json`` — the live TCP transport running the
  whole group in one process (wall-clock numbers; machine-dependent,
  recorded to make order-of-magnitude regressions visible, not for
  exact comparison).

Run from the repository root::

    PYTHONPATH=src python benchmarks/record_baselines.py [--out-dir .]

CI and later PRs compare fresh runs against the committed files to
catch throughput collapses (>2x shifts), not single-digit drift.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import sys

from repro.runtime.benchmark import run_benchmark
from repro.runtime.deployment import DeploymentSpec, build_deployment
from repro.runtime.live import run_live

SIM_PROTOCOLS = ("hybster-s", "hybster-x")
LIVE_PROTOCOLS = ("hybster-s", "hybster-x")


def _sim_spec(protocol: str) -> DeploymentSpec:
    return DeploymentSpec(
        protocol=protocol,
        cores=4,
        service="null",
        batch_size=1,
        num_clients=16,
        client_window=4,
    )


def record_sim() -> dict:
    runs = []
    for protocol in SIM_PROTOCOLS:
        result = run_benchmark(build_deployment(_sim_spec(protocol)))
        runs.append(
            {
                "protocol": protocol,
                "replicas": 3,
                "throughput_ops": round(result.throughput_ops, 1),
                "mean_latency_ms": round(result.latency_ms, 4),
                "completed": result.completed,
                "measure_ns": result.measure_ns,
                "replica_cpu_utilization": round(result.replica_cpu_utilization, 4),
            }
        )
    return {
        "benchmark": "fig5a_sim",
        "description": "fault-free simulated 3-replica throughput "
        "(null service, 16 clients, window 4)",
        "deterministic": True,
        "runs": runs,
    }


def record_live() -> dict:
    runs = []
    for protocol in LIVE_PROTOCOLS:
        spec = DeploymentSpec(
            protocol=protocol,
            cores=2,
            service="null",
            num_clients=4,
            client_window=8,
            client_machines=1,
        )
        result = asyncio.run(run_live(spec, target_requests=2000, max_duration_s=30.0))
        runs.append(
            {
                "protocol": protocol,
                "replicas": 3,
                "throughput_ops": round(result.throughput_ops, 1),
                "mean_latency_ms": (
                    round(result.latency.mean_ms, 4) if result.latency.count else None
                ),
                "completed": result.completed,
                "elapsed_s": round(result.elapsed_s, 3),
                "transport_sent": result.transport_sent,
            }
        )
    return {
        "benchmark": "live_3replica",
        "description": "fault-free live (localhost TCP) 3-replica throughput "
        "(null service, 4 clients, window 8, single process)",
        "deterministic": False,
        "machine": {
            "python": platform.python_version(),
            "system": platform.system(),
            "cpus": os.cpu_count(),
        },
        "runs": runs,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", default=".")
    parser.add_argument("--skip-live", action="store_true",
                        help="record only the deterministic sim baseline")
    args = parser.parse_args(argv)

    artifacts = {"BENCH_fig5a_sim.json": record_sim()}
    if not args.skip_live:
        artifacts["BENCH_live_3replica.json"] = record_live()

    for name, payload in artifacts.items():
        path = os.path.join(args.out_dir, name)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        for run in payload["runs"]:
            print(
                f"{name}: {run['protocol']} {run['throughput_ops']:.0f} ops/s, "
                f"mean latency {run['mean_latency_ms']} ms"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
