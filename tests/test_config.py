"""Unit tests for the replica-group configuration and fault-model math."""

import pytest

from repro.core.config import COUNTER_M, COUNTER_O, ReplicaGroupConfig
from repro.errors import ConfigurationError


def make(n=3, **kwargs):
    return ReplicaGroupConfig(replica_ids=tuple(f"r{i}" for i in range(n)), **kwargs)


class TestFaultModel:
    def test_canonical_three_replica_group(self):
        config = make(3)
        assert config.n == 3
        assert config.f == 1
        assert config.quorum_size == 2

    def test_five_replica_group(self):
        config = make(5)
        assert config.f == 2
        assert config.quorum_size == 3

    def test_seven_replica_group(self):
        config = make(7)
        assert config.f == 3
        assert config.quorum_size == 4

    @pytest.mark.parametrize("n", [3, 4, 5, 6, 7, 9])
    def test_quorum_conditions(self, n):
        config = make(n)
        q, f = config.quorum_size, config.f
        assert 2 * q > n  # any two quorums intersect
        assert n >= q + f  # correct replicas can form a quorum
        assert q > f  # every quorum contains a correct replica

    def test_too_few_replicas_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplicaGroupConfig(replica_ids=("a", "b"))

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplicaGroupConfig(replica_ids=("a", "a", "b"))

    def test_window_must_cover_two_checkpoints(self):
        with pytest.raises(ConfigurationError):
            make(3, checkpoint_interval=100, window_size=150)


class TestRoles:
    def test_primary_rotates_with_view(self):
        config = make(3)
        assert config.primary_of_view(0) == "r0"
        assert config.primary_of_view(1) == "r1"
        assert config.primary_of_view(2) == "r2"
        assert config.primary_of_view(3) == "r0"

    def test_fixed_leader_proposes_everything(self):
        config = make(3, rotation=False)
        assert all(config.proposer_of(0, o) == "r0" for o in range(1, 30))
        assert all(config.proposer_of(1, o) == "r1" for o in range(1, 30))

    def test_rotation_spreads_proposers(self):
        config = make(3, rotation=True, num_pillars=4)
        proposers = {config.proposer_of(0, o) for o in range(1, 40)}
        assert proposers == {"r0", "r1", "r2"}

    def test_rotation_covers_every_pillar_for_every_replica(self):
        # the regression that stalled PBFTcop: with P == n the old per-order
        # mapping confined each replica to a single pillar
        config = ReplicaGroupConfig(
            replica_ids=("r0", "r1", "r2", "r3"), rotation=True, num_pillars=4
        )
        for replica in config.replica_ids:
            assert config.proposing_pillars(replica, 0) == [0, 1, 2, 3]

    def test_fixed_leader_proposing_pillars(self):
        config = make(3, num_pillars=4)
        assert config.proposing_pillars("r0", 0) == [0, 1, 2, 3]
        assert config.proposing_pillars("r1", 0) == []

    def test_pillar_of_order_partition(self):
        config = make(3, num_pillars=4)
        for order in range(1, 100):
            assert config.pillar_of_order(order) == order % 4

    def test_client_routing_fixed_leader(self):
        config = make(3)
        assert config.proposer_replica_for_client("any-client", 0) == "r0"
        assert config.proposer_replica_for_client("any-client", 1) == "r1"

    def test_client_routing_rotation_is_stable_partition(self):
        config = make(3, rotation=True)
        buckets = {config.proposer_replica_for_client(f"c{i}", 0) for i in range(50)}
        assert buckets == {"r0", "r1", "r2"}
        # deterministic across calls
        assert (
            config.proposer_replica_for_client("c7", 0)
            == config.proposer_replica_for_client("c7", 0)
        )


class TestLanes:
    def test_fixed_leader_single_lane(self):
        config = make(3, num_pillars=2)
        assert config.num_lanes == 1
        assert config.lane_of(0, 17) == 0
        assert config.lane_stride == 2
        assert config.mac_counter == 1
        assert config.counters_per_instance == 2

    def test_rotation_one_lane_per_replica(self):
        config = make(3, rotation=True, num_pillars=4)
        assert config.num_lanes == 3
        assert config.mac_counter == 3
        assert config.counters_per_instance == 4
        assert config.lane_stride == 12

    def test_lane_equals_proposer_index(self):
        config = make(3, rotation=True, num_pillars=4)
        for view in (0, 1, 5):
            for order in range(1, 60):
                lane = config.lane_of(view, order)
                assert config.replica_ids[lane] == config.proposer_of(view, order)

    def test_lane_constant_within_class_stride(self):
        config = make(3, rotation=True, num_pillars=4)
        for order in range(1, 40):
            assert config.lane_of(0, order) == config.lane_of(0, order + config.lane_stride)

    def test_counter_layout(self):
        config = make(3, rotation=True, num_pillars=2)
        assert [config.ordering_counter(lane) for lane in range(3)] == [0, 1, 2]
        assert config.mac_counter == 3
        # the default layout constants describe the fixed-leader case
        fixed = make(3)
        assert fixed.ordering_counter(0) == COUNTER_O
        assert fixed.mac_counter == COUNTER_M


class TestCheckpoints:
    def test_boundaries_on_interval_multiples(self):
        config = make(3, checkpoint_interval=8, window_size=16)
        assert [o for o in range(1, 33) if config.is_checkpoint_boundary(o)] == [8, 16, 24, 32]

    def test_checkpoint_numbering(self):
        config = make(3, checkpoint_interval=8, window_size=16)
        assert config.checkpoint_number(8) == 1
        assert config.checkpoint_number(16) == 2

    def test_shared_checkpointing_round_robin(self):
        config = make(3, checkpoint_interval=8, window_size=16, num_pillars=3)
        pillars = [config.checkpoint_pillar(o) for o in (8, 16, 24, 32)]
        assert pillars == [1, 2, 0, 1]

    def test_trinx_instance_ids_are_public_knowledge(self):
        config = make(3, num_pillars=2)
        assert config.trinx_instance_id("r1", 0) == "r1/tss0"
        assert config.trinx_instance_id("r2", 1) == "r2/tss1"
