"""Unit tests for the replicated application services."""

import pytest

from repro.services.base import Service
from repro.services.coordination import CoordinationService
from repro.services.counter import CounterService
from repro.services.kvstore import KeyValueStore
from repro.services.null import NullService


class TestNullService:
    def test_returns_none(self):
        service = NullService()
        assert service.execute("anything", "c0") is None

    def test_snapshot_roundtrip(self):
        service = NullService()
        service.restore(service.snapshot())
        assert service.snapshot_size() == 0

    def test_digest_stable(self):
        assert NullService().state_digestible() == NullService().state_digestible()


class TestKeyValueStore:
    def test_put_get(self):
        service = KeyValueStore()
        assert service.execute(("put", "k", 1), "c0") is None
        assert service.execute(("get", "k"), "c0") == 1
        assert service.execute(("put", "k", 2), "c0") == 1

    def test_delete(self):
        service = KeyValueStore()
        service.execute(("put", "k", 1), "c0")
        assert service.execute(("delete", "k"), "c0") is True
        assert service.execute(("delete", "k"), "c0") is False

    def test_keys_sorted(self):
        service = KeyValueStore()
        for key in ("c", "a", "b"):
            service.execute(("put", key, 0), "c0")
        assert service.execute(("keys",), "c0") == ["a", "b", "c"]

    def test_malformed_operations_return_errors(self):
        service = KeyValueStore()
        assert service.execute("not-a-tuple", "c0") == ("error", "malformed operation")
        assert service.execute(("bogus", 1), "c0")[0] == "error"

    def test_snapshot_restore_roundtrip(self):
        service = KeyValueStore()
        service.execute(("put", "k", [1, 2]), "c0")
        snapshot = service.snapshot()
        service.execute(("put", "k", "overwritten"), "c0")
        service.restore(snapshot)
        assert service.execute(("get", "k"), "c0") == [1, 2]

    def test_snapshot_is_isolated_copy(self):
        service = KeyValueStore()
        service.execute(("put", "k", 1), "c0")
        snapshot = service.snapshot()
        service.execute(("put", "k", 2), "c0")
        assert snapshot["k"] == 1

    def test_digest_reflects_state(self):
        a, b = KeyValueStore(), KeyValueStore()
        a.execute(("put", "k", 1), "c0")
        assert a.state_digestible() != b.state_digestible()
        b.execute(("put", "k", 1), "c1")  # client identity is irrelevant
        assert a.state_digestible() == b.state_digestible()


class TestCounterService:
    def test_add_and_read(self):
        service = CounterService()
        assert service.execute(("add", 5), "c0") == 5
        assert service.execute(("add", -2), "c0") == 3
        assert service.execute(("read",), "c0") == 3

    def test_results_depend_on_history(self):
        a, b = CounterService(), CounterService()
        a.execute(("add", 1), "c")
        a.execute(("add", 2), "c")
        b.execute(("add", 2), "c")
        b.execute(("add", 1), "c")
        # same final value, but digests differ only if history does not —
        # value and op count are equal here, so states converge
        assert a.state_digestible() == b.state_digestible()

    def test_snapshot_roundtrip(self):
        service = CounterService()
        service.execute(("add", 7), "c")
        snapshot = service.snapshot()
        service.execute(("add", 1), "c")
        service.restore(snapshot)
        assert service.value == 7
        assert service.operations_applied == 1

    def test_unknown_operation(self):
        assert CounterService().execute(("mul", 2), "c")[0] == "error"


class TestCoordinationService:
    def make(self):
        service = CoordinationService()
        assert service.execute(("create", "/app", 0), "c")[0] == "ok"
        return service

    def test_create_and_get(self):
        service = self.make()
        assert service.execute(("create", "/app/node", 128), "c") == ("ok", 0)
        assert service.execute(("get", "/app/node"), "c") == ("ok", 128, 0)

    def test_create_requires_parent(self):
        service = self.make()
        assert service.execute(("create", "/missing/child", 0), "c") == ("error", "no such parent")

    def test_create_duplicate_rejected(self):
        service = self.make()
        service.execute(("create", "/app/x", 0), "c")
        assert service.execute(("create", "/app/x", 0), "c") == ("error", "node exists")

    def test_set_bumps_version(self):
        service = self.make()
        service.execute(("create", "/app/x", 10), "c")
        assert service.execute(("set", "/app/x", 20), "c") == ("ok", 1)
        assert service.execute(("set", "/app/x", 30), "c") == ("ok", 2)
        assert service.execute(("get", "/app/x"), "c") == ("ok", 30, 2)

    def test_delete_leaf_only(self):
        service = self.make()
        service.execute(("create", "/app/x", 0), "c")
        service.execute(("create", "/app/x/y", 0), "c")
        assert service.execute(("delete", "/app/x"), "c") == ("error", "node has children")
        assert service.execute(("delete", "/app/x/y"), "c") == ("ok",)
        assert service.execute(("delete", "/app/x"), "c") == ("ok",)

    def test_children_sorted(self):
        service = self.make()
        for name in ("zeta", "alpha", "mid"):
            service.execute(("create", f"/app/{name}", 0), "c")
        assert service.execute(("children", "/app"), "c") == ("ok", "alpha", "mid", "zeta")

    def test_exists(self):
        service = self.make()
        assert service.execute(("exists", "/app"), "c") == ("ok", True)
        assert service.execute(("exists", "/nope"), "c") == ("ok", False)

    def test_invalid_paths(self):
        service = self.make()
        for path in ("noslash", "//double", "/trailing/", ""):
            assert service.execute(("get", path), "c") == ("error", "invalid path")

    def test_root_listing(self):
        service = self.make()
        assert service.execute(("children", "/"), "c") == ("ok", "app")

    def test_reads_report_reply_payload(self):
        service = self.make()
        service.execute(("create", "/app/x", 128), "c")
        result = service.execute(("get", "/app/x"), "c")
        assert service.reply_payload_size(("get", "/app/x"), result) == 128
        assert service.reply_payload_size(("set", "/app/x", 128), ("ok", 1)) == 0

    def test_snapshot_restore_roundtrip(self):
        service = self.make()
        service.execute(("create", "/app/x", 64), "c")
        service.execute(("set", "/app/x", 99), "c")
        snapshot = service.snapshot()
        service.execute(("delete", "/app/x"), "c")
        service.restore(snapshot)
        assert service.execute(("get", "/app/x"), "c") == ("ok", 99, 1)

    def test_digest_includes_structure_and_versions(self):
        a, b = self.make(), self.make()
        a.execute(("create", "/app/x", 1), "c")
        b.execute(("create", "/app/x", 1), "c")
        assert a.state_digestible() == b.state_digestible()
        a.execute(("set", "/app/x", 1), "c")
        b_result = b.execute(("get", "/app/x"), "c")
        assert b_result[0] == "ok"
        assert a.state_digestible() != b.state_digestible()

    def test_execution_costs_ordered(self):
        service = self.make()
        create = service.execution_cost_ns(("create", "/a", 0))
        write = service.execution_cost_ns(("set", "/a", 0))
        read = service.execution_cost_ns(("get", "/a"))
        assert create > write > read > 0


class TestServiceInterface:
    def test_base_class_defaults(self):
        class Minimal(Service):
            def execute(self, operation, client_id):
                return None

        service = Minimal()
        assert service.execution_cost_ns("x") == 0
        assert service.reply_payload_size("x", None) == 0
        with pytest.raises(NotImplementedError):
            service.snapshot()
