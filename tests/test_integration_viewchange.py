"""Integration tests: view changes under crash faults and partitions."""

import pytest

from repro.sim.faults import Partition
from tests.conftest import MS, Harness


def crash(harness: Harness, replica_id: str, at=None, until=None):
    start = at if at is not None else harness.sim.now
    harness.network.add_filter(Partition({replica_id}, start_ns=start, end_ns=until))


class TestLeaderCrash:
    def test_view_change_restores_progress(self, harness):
        harness.add_client(window=2)
        harness.add_client(window=2)
        harness.start_clients()
        harness.run(200)
        before = harness.completed
        crash(harness, "r0")
        harness.run(3000)
        after = harness.completed
        assert after > before + 50, "no progress after the leader crash"
        assert harness.replicas[1].current_view >= 1
        assert harness.replicas[2].current_view >= 1
        harness.drain(300)
        live = [str(s) for s in harness.service_states()[1:]]
        assert live[0] == live[1]

    def test_new_leader_is_the_next_primary(self, harness):
        harness.add_client(window=2)
        harness.start_clients()
        harness.run(100)
        crash(harness, "r0")
        harness.run(3000)
        view = harness.replicas[1].current_view
        assert harness.config.primary_of_view(view) in ("r1", "r2")
        # proposals in the new view come from its primary
        primary = harness.config.primary_of_view(view)
        primary_replica = next(r for r in harness.replicas if r.replica_id == primary)
        assert primary_replica.stats()["proposals"] > 0

    def test_parallel_pillars_view_change(self):
        harness = Harness(num_pillars=3)
        harness.add_client(window=4)
        harness.start_clients()
        harness.run(200)
        before = harness.completed
        crash(harness, "r0")
        harness.run(3000)
        assert harness.completed > before + 50
        live = harness.replicas[1:]
        assert all(replica.current_view >= 1 for replica in live)
        # all pillars of the live replicas returned to stable ordering
        for replica in live:
            assert all(pillar.view_stable for pillar in replica.pillars)
        harness.drain(300)
        states = {str(replica.service.state_digestible()) for replica in live}
        assert len(states) == 1

    def test_successive_leader_crashes(self):
        harness = Harness(n=5)  # f = 2: tolerate two crashed leaders
        harness.add_client(window=2)
        harness.add_client(window=2)
        harness.start_clients()
        harness.run(100)
        crash(harness, "r0")
        harness.run(2500)
        first_view = max(harness.views())
        assert first_view >= 1
        before = harness.completed
        crash(harness, harness.config.primary_of_view(first_view))
        harness.run(4000)
        assert harness.completed > before + 20
        live = [r for r in harness.replicas
                if r.replica_id not in ("r0", harness.config.primary_of_view(first_view))]
        states = {str(replica.service.state_digestible()) for replica in live}
        assert len(states) == 1

    def test_view_change_with_rotation(self):
        harness = Harness(num_pillars=2, rotation=True)
        for _ in range(4):
            harness.add_client(window=2)
        harness.start_clients()
        harness.run(200)
        before = harness.completed
        crash(harness, "r0")
        harness.run(4000)
        assert harness.completed > before + 20
        live = harness.replicas[1:]
        assert all(replica.current_view >= 1 for replica in live)
        states = {str(replica.service.state_digestible()) for replica in live}
        assert len(states) == 1


class TestRecovery:
    def test_crashed_leader_rejoins_current_view(self, harness):
        harness.add_client(window=2)
        harness.start_clients()
        harness.run(200)
        crash(harness, "r0", until=harness.sim.now + 2000 * MS)
        harness.run(5000)
        harness.drain(200)
        assert harness.replicas[0].current_view >= 1
        assert harness.views()[0] == harness.views()[1] == harness.views()[2]

    def test_committed_requests_survive_the_view_change(self):
        """No request a client accepted may ever be lost (§5.2.3's goal)."""
        from repro.services.kvstore import KeyValueStore
        from repro.clients.workload import Workload

        class Puts(Workload):
            def next_operation(self, request_index):
                return ("put", f"key{request_index}", request_index), 0

        harness = Harness(service_factory=KeyValueStore)
        client = harness.add_client(Puts(), window=2)
        harness.start_clients()
        harness.run(200)
        completed_before_crash = client.completed
        crash(harness, "r0")
        harness.run(3000)
        harness.drain(500)
        store = harness.replicas[1].service
        for index in range(completed_before_crash):
            assert store.execute(("get", f"key{index}"), "test") == index, (
                f"request {index}, accepted by the client before the crash, "
                "is missing from the new view's state"
            )

    def test_no_duplicate_execution_across_view_change(self):
        from repro.clients.workload import Workload

        class AddOnes(Workload):
            def next_operation(self, request_index):
                return ("add", 1), 0

        harness = Harness()
        client = harness.add_client(AddOnes(), window=1)
        harness.start_clients()
        harness.run(200)
        crash(harness, "r0")
        harness.run(3000)
        harness.drain(500)
        # exactly-once: the counter equals the number of accepted requests
        # (window=1 keeps acceptance sequential; retries must not double-add)
        value = harness.replicas[1].service.value
        assert value == client.completed


class TestPartitionTolerance:
    def test_follower_partition_does_not_stop_progress(self, harness):
        harness.add_client(window=2)
        harness.start_clients()
        harness.run(100)
        before = harness.completed
        crash(harness, "r2")  # a follower, not the leader
        harness.run(500)
        assert harness.completed > before
        assert harness.replicas[0].current_view == 0  # no view change needed

    def test_short_glitch_no_view_change(self, harness):
        harness.add_client(window=2)
        harness.start_clients()
        harness.run(100)
        # a 20ms leader glitch: far below the 150ms suspicion timeout
        crash(harness, "r0", until=harness.sim.now + 20 * MS)
        harness.run(500)
        assert all(view == 0 for view in harness.views())
        harness.drain()
        harness.assert_replicas_consistent()
