"""Tests for the scenario engine: spec loading, safety checking, execution."""

from __future__ import annotations

import textwrap

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    FaultSpec,
    PassCriteria,
    ScenarioSpec,
    check_safety,
    load_scenario,
    load_scenarios,
    run_scenario,
)
from repro.sim.tracing import Tracer


# ----------------------------------------------------------------------
# Spec loading
# ----------------------------------------------------------------------
def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(textwrap.dedent(text))
    return str(path)


def test_load_scenario_parses_full_spec(tmp_path):
    path = _write(
        tmp_path,
        "demo.toml",
        """
        name = "demo"
        description = "a demo"
        mode = "sim"
        tags = ["smoke"]

        [deployment]
        protocol = "hybster-s"
        service = "kv"
        num_clients = 2

        [workload]
        kind = "kv"
        keys = 4

        [run]
        duration_ms = 50
        seed = 9
        trinx_verification = false

        [[faults]]
        kind = "loss"
        rate = 0.1
        end_ms = 30

        [[faults]]
        kind = "partition"
        nodes = ["r2"]
        start_ms = 10
        end_ms = 20

        [pass]
        min_completed = 5
        expect_safety_violation = true
        """,
    )
    spec = load_scenario(path)
    assert spec.name == "demo"
    assert spec.mode == "sim"
    assert spec.tags == ("smoke",)
    assert spec.duration_ms == 50
    assert spec.seed == 9
    assert not spec.trinx_verification
    assert [fault.kind for fault in spec.faults] == ["loss", "partition"]
    assert spec.criteria.min_completed == 5
    assert spec.criteria.expect_safety_violation

    deployment = spec.deployment_spec()
    assert deployment.protocol == "hybster-s"
    assert deployment.seed == 9
    assert deployment.workload_factory is not None

    filters = spec.build_filters()
    assert len(filters) == 2
    # same seed -> identical chaos schedule, bit for bit
    rebuilt = spec.build_filters()[0]
    a = [filters[0].decide("r0", "r1", None, 0, 0).drop for _ in range(32)]
    b = [rebuilt.decide("r0", "r1", None, 0, 0).drop for _ in range(32)]
    assert a == b


def test_load_scenario_rejects_bad_input(tmp_path):
    with pytest.raises(ConfigurationError):
        load_scenario(_write(tmp_path, "a.toml", 'mode = "teleport"\n'))
    with pytest.raises(ConfigurationError):
        load_scenario(
            _write(tmp_path, "b.toml", '[deployment]\nprotocol = "raft"\n')
        )
    with pytest.raises(ConfigurationError):
        load_scenario(
            _write(tmp_path, "c.toml", '[deployment]\nwarp_factor = 9\n')
        )
    with pytest.raises(ConfigurationError):
        load_scenario(
            _write(tmp_path, "d.toml", '[[faults]]\nkind = "gremlins"\n')
        )
    with pytest.raises(ConfigurationError):
        # a partition without nodes fails at filter-build time
        load_scenario(
            _write(tmp_path, "e.toml", '[[faults]]\nkind = "partition"\n')
        ).build_filters()


def test_load_scenarios_reads_a_directory(tmp_path):
    _write(tmp_path, "one.toml", 'name = "one"\n')
    _write(tmp_path, "two.toml", 'name = "two"\n')
    _write(tmp_path, "ignored.txt", "not a scenario")
    specs = load_scenarios(str(tmp_path))
    assert [spec.name for spec in specs] == ["one", "two"]


def test_repo_scenario_matrix_is_well_formed():
    import os

    directory = os.path.join(os.path.dirname(__file__), "..", "scenarios")
    specs = load_scenarios(directory)
    assert len(specs) >= 12, "the shipped matrix must stay >= 12 scenarios"
    protocols = {spec.deployment.get("protocol") for spec in specs}
    assert len(protocols) >= 2
    fault_kinds = {fault.kind for spec in specs for fault in spec.faults}
    assert {"loss", "partition", "crash", "equivocate"} <= fault_kinds
    assert {spec.mode for spec in specs} == {"sim", "live"}
    smoke = [spec for spec in specs if "smoke" in spec.tags]
    assert len(smoke) >= 4
    for spec in specs:  # every fault schedule must instantiate
        assert len(spec.build_filters()) == len(spec.faults)


# ----------------------------------------------------------------------
# Safety checker
# ----------------------------------------------------------------------
def _tracer(records):
    tracer = Tracer(enabled=True)
    for time_ns, node, category, detail in records:
        tracer.emit(time_ns, node, category, detail)
    return tracer


def test_agreement_passes_on_identical_executions():
    report = check_safety(
        _tracer(
            [
                (10, "r0/exec", "execute", (0, 1, "abcd", [["c", 1]])),
                (11, "r1/exec", "execute", (0, 1, "abcd", [["c", 1]])),
                (12, "r2/exec", "execute", (0, 1, "abcd", [["c", 1]])),
            ]
        )
    )
    assert report.ok
    assert report.orders_checked == 1


def test_agreement_flags_divergent_batch_content():
    report = check_safety(
        _tracer(
            [
                (10, "r0/exec", "execute", (0, 7, "aaaa", [["c", 1]])),
                (11, "r1/exec", "execute", (0, 7, "bbbb", [["c", 1]])),
            ]
        )
    )
    assert not report.ok
    assert report.violations[0].kind == "agreement"
    assert "order 7" in report.violations[0].detail


def test_double_execution_flagged_across_orders():
    # the same request landing at two order numbers applies it twice —
    # exactly what a view change re-proposing a half-assembled batch
    # must never produce
    report = check_safety(
        _tracer(
            [
                (10, "r0/exec", "execute", (0, 1, "aaaa", [["c", 1], ["c", 2]])),
                (20, "r0/exec", "execute", (0, 2, "bbbb", [["c", 2], ["c", 3]])),
            ]
        )
    )
    assert [v.kind for v in report.violations] == ["double-execution"]
    assert "order 1" in report.violations[0].detail
    assert "order 2" in report.violations[0].detail
    assert report.requests_checked == 3


def test_double_execution_tolerates_redelivered_records():
    # a merged live trace can contain the same execute record from a
    # replay or duplicated JSONL line; only a *different* order is a bug
    report = check_safety(
        _tracer(
            [
                (10, "r0/exec", "execute", (0, 1, "aaaa", [["c", 1]])),
                (11, "r0/exec", "execute", (0, 1, "aaaa", [["c", 1]])),
                (12, "r1/exec", "execute", (0, 1, "aaaa", [["c", 1]])),
            ]
        )
    )
    assert report.ok
    assert report.requests_checked == 2  # one per (replica, request)


def test_counter_monotonicity_flags_reuse_and_decrease():
    ok = check_safety(
        _tracer(
            [
                (1, "r0/pillar0", "counter-cert", (0, 1)),
                (2, "r0/pillar0", "counter-cert", (0, 2)),
                (3, "r1/pillar0", "counter-cert", (0, 1)),  # distinct node: fine
                (4, "r0/pillar1", "counter-cert", (1, 1)),  # distinct counter: fine
            ]
        )
    )
    assert ok.ok
    assert ok.certificates_checked == 4

    reuse = check_safety(
        _tracer(
            [
                (1, "r0/pillar0", "counter-cert", (0, 5)),
                (2, "r0/pillar0", "counter-cert", (0, 5)),
            ]
        )
    )
    assert [v.kind for v in reuse.violations] == ["counter"]

    decrease = check_safety(
        _tracer(
            [
                (1, "r0/pillar0", "counter-cert", (0, 5)),
                (2, "r0/pillar0", "counter-cert", (0, 3)),
            ]
        )
    )
    assert [v.kind for v in decrease.violations] == ["counter"]


def test_linearizability_accepts_a_legal_history():
    report = check_safety(
        _tracer(
            [
                (0, "clients0/c0", "client-invoke", ("a", 0, ("put", "k", 1))),
                (10, "clients0/c0", "client-complete", ("a", 0, ("put", "k", 1), None)),
                (20, "clients0/c1", "client-invoke", ("b", 0, ("get", "k"))),
                (30, "clients0/c1", "client-complete", ("b", 0, ("get", "k"), 1)),
            ]
        )
    )
    assert report.ok
    assert report.reads_checked == 1


def test_linearizability_flags_lost_update():
    # the put completed before the get began, yet the get saw the old value
    report = check_safety(
        _tracer(
            [
                (0, "clients0/c0", "client-invoke", ("a", 0, ("put", "k", 1))),
                (10, "clients0/c0", "client-complete", ("a", 0, ("put", "k", 1), None)),
                (20, "clients0/c1", "client-invoke", ("b", 0, ("get", "k"))),
                (30, "clients0/c1", "client-complete", ("b", 0, ("get", "k"), None)),
            ]
        )
    )
    assert [v.kind for v in report.violations] == ["linearizability"]


def test_linearizability_flags_stale_and_phantom_reads():
    stale = check_safety(
        _tracer(
            [
                (0, "x", "client-invoke", ("a", 0, ("put", "k", 1))),
                (10, "x", "client-complete", ("a", 0, ("put", "k", 1), None)),
                (20, "x", "client-invoke", ("a", 1, ("put", "k", 2))),
                (30, "x", "client-complete", ("a", 1, ("put", "k", 2), None)),
                (40, "y", "client-invoke", ("b", 0, ("get", "k"))),
                (50, "y", "client-complete", ("b", 0, ("get", "k"), 1)),  # overwritten
            ]
        )
    )
    assert [v.kind for v in stale.violations] == ["linearizability"]

    phantom = check_safety(
        _tracer(
            [
                (0, "y", "client-invoke", ("b", 0, ("get", "k"))),
                (10, "y", "client-complete", ("b", 0, ("get", "k"), 777)),
            ]
        )
    )
    assert [v.kind for v in phantom.violations] == ["linearizability"]
    assert "phantom" in phantom.violations[0].detail


def test_linearizability_tolerates_concurrent_and_pending_puts():
    report = check_safety(
        _tracer(
            [
                # a put that never completed may still have taken effect
                (0, "x", "client-invoke", ("a", 0, ("put", "k", 1))),
                (5, "y", "client-invoke", ("b", 0, ("get", "k"))),
                (15, "y", "client-complete", ("b", 0, ("get", "k"), 1)),
            ]
        )
    )
    assert report.ok


def test_checker_normalizes_jsonl_round_trip(tmp_path):
    tracer = _tracer(
        [
            (10, "r0/exec", "execute", (0, 1, "aaaa", [["c", 1]])),
            (11, "r1/exec", "execute", (0, 1, "bbbb", [["c", 1]])),
            (12, "x", "client-invoke", ("a", 0, ("put", "k", 1))),
            (13, "x", "client-complete", ("a", 0, ("put", "k", 1), None)),
        ]
    )
    path = tmp_path / "trace.jsonl"
    tracer.write_jsonl(str(path))
    loaded = Tracer.load_jsonl(str(path))  # details become JSON lists
    report = check_safety(loaded)
    assert [v.kind for v in report.violations] == ["agreement"]


# ----------------------------------------------------------------------
# Engine (small fast sim runs)
# ----------------------------------------------------------------------
def _mini_spec(**overrides) -> ScenarioSpec:
    base = dict(
        name="mini",
        mode="sim",
        deployment={
            "protocol": "hybster-s",
            "service": "kv",
            "cores": 2,
            "num_clients": 2,
            "client_window": 2,
            "checkpoint_interval": 32,
        },
        workload={"kind": "kv", "keys": 4},
        duration_ms=120,
        seed=3,
        criteria=PassCriteria(min_completed=20),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def test_engine_runs_fault_free_sim_scenario():
    result = run_scenario(_mini_spec())
    assert result.verdict == "PASS", result.failures
    assert result.completed >= 20
    assert result.safety.ok
    assert result.safety.orders_checked > 0
    assert result.safety.certificates_checked > 0
    assert result.safety.reads_checked > 0


def test_engine_applies_chaos_and_reports_counters():
    result = run_scenario(
        _mini_spec(
            faults=[FaultSpec("loss", {"rate": 0.05, "end_ms": 80})],
            criteria=PassCriteria(min_completed=5),
        )
    )
    assert result.verdict == "PASS", result.failures
    assert result.chaos_dropped > 0


def test_engine_is_deterministic_for_a_seed():
    first = run_scenario(_mini_spec(faults=[FaultSpec("loss", {"rate": 0.05})]))
    second = run_scenario(_mini_spec(faults=[FaultSpec("loss", {"rate": 0.05})]))
    assert first.completed == second.completed
    assert first.chaos_dropped == second.chaos_dropped


def test_engine_catches_equivocation_when_verification_disabled():
    spec = _mini_spec(
        trinx_verification=False,
        faults=[
            FaultSpec(
                "equivocate",
                {
                    "source": "r0",
                    "victims": ["r1"],
                    "forged_operation": ["put", "poison", 999],
                    "start_ms": 5,
                    "max_attempts": 2,
                },
            )
        ],
        criteria=PassCriteria(min_completed=5, expect_safety_violation=True),
    )
    result = run_scenario(spec)
    assert result.verdict == "PASS", result.failures
    assert result.chaos_injected == 2
    assert any(v.kind == "agreement" for v in result.safety.violations)


def test_engine_rejects_equivocation_when_verification_enabled():
    spec = _mini_spec(
        duration_ms=200,
        faults=[
            FaultSpec(
                "equivocate",
                {
                    "source": "r0",
                    "victims": ["r1"],
                    "forged_operation": ["put", "poison", 999],
                    "start_ms": 5,
                    "max_attempts": 2,
                },
            )
        ],
        criteria=PassCriteria(min_completed=5),
    )
    result = run_scenario(spec)
    assert result.verdict == "PASS", result.failures
    assert result.chaos_injected == 2
    assert result.safety.ok  # certificates exposed the forgery; no divergence


def test_engine_fails_when_expected_violation_does_not_happen():
    result = run_scenario(
        _mini_spec(criteria=PassCriteria(min_completed=5, expect_safety_violation=True))
    )
    assert result.verdict == "FAIL"
    assert any("expected a safety violation" in failure for failure in result.failures)


def test_engine_writes_trace_jsonl(tmp_path):
    path = tmp_path / "mini.jsonl"
    result = run_scenario(_mini_spec(), trace_out=str(path))
    assert result.passed
    loaded = Tracer.load_jsonl(str(path))
    assert check_safety(loaded).ok
    assert any(record.category == "execute" for record in loaded.records)

# ----------------------------------------------------------------------
# Leader crash forcing a view change mid-batch
# ----------------------------------------------------------------------
def _leader_crash_spec():
    import dataclasses
    import os

    path = os.path.join(
        os.path.dirname(__file__),
        "..",
        "scenarios",
        "sim-hybster-s-leader-crash-viewchange.toml",
    )
    spec = load_scenario(path)
    # the shipped scenario runs 1.8 s of sim time; shrink the load and
    # duration for the test while keeping the crash/suspicion timeline
    # (crash at 100 ms, client retry at ~500 ms, suspicion at ~650 ms)
    return dataclasses.replace(
        spec,
        deployment={**spec.deployment, "num_clients": 2, "client_window": 1},
        duration_ms=1000,
        faults=(FaultSpec("crash", {"node": "r0", "windows_ms": [[100, 700]]}),),
        criteria=PassCriteria(min_completed=500, safety=True),
    )


def test_leader_crash_scenario_is_shipped_and_well_formed():
    spec = _leader_crash_spec()
    assert spec.deployment["protocol"] == "hybster-s"
    assert spec.deployment["batch_size"] > 1  # the crash must land mid-batch
    assert "viewchange" in load_scenario(
        __file__.replace(
            "tests/test_scenarios.py",
            "scenarios/sim-hybster-s-leader-crash-viewchange.toml",
        )
    ).tags


def test_leader_crash_forces_view_change_without_losing_batches(tmp_path):
    path = tmp_path / "leader-crash.jsonl"
    result = run_scenario(_leader_crash_spec(), trace_out=str(path))
    assert result.verdict == "PASS", result.failures

    trace = Tracer.load_jsonl(str(path))
    installed = [
        (record.node.split("/", 1)[0], int(record.detail))
        for record in trace.records
        if record.category == "view-installed"
    ]
    # both survivors elected r1 (view 1); r0 catches up after reviving
    assert ("r1", 1) in installed and ("r2", 1) in installed

    # agreement held across the view change and no batched request was
    # lost to the crash or executed at two different order numbers
    report = check_safety(trace)
    assert report.ok, str(report)
    assert report.orders_checked > 0
    assert report.requests_checked > 0

    # progress resumed under the new leader: executions exist after the
    # view change completed on the survivors
    vc_done_ns = max(
        record.time_ns
        for record in trace.records
        if record.category == "view-installed" and record.node.startswith(("r1", "r2"))
    )
    assert any(
        record.category == "execute" and record.time_ns > vc_done_ns
        for record in trace.records
    )
