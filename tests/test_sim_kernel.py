"""Unit tests for the discrete-event kernel and event queue."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue
from repro.sim.kernel import Simulator


class TestEventQueue:
    def test_pop_returns_earliest(self):
        queue = EventQueue()
        order = []
        queue.push(30, order.append, (3,))
        queue.push(10, order.append, (1,))
        queue.push(20, order.append, (2,))
        while len(queue):
            queue.pop().fire()
        assert order == [1, 2, 3]

    def test_ties_resolved_in_insertion_order(self):
        queue = EventQueue()
        order = []
        for i in range(5):
            queue.push(7, order.append, (i,))
        while len(queue):
            queue.pop().fire()
        assert order == [0, 1, 2, 3, 4]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        order = []
        keep = queue.push(1, order.append, ("keep",))
        drop = queue.push(0, order.append, ("drop",))
        drop.cancel()
        queue.note_cancelled()
        assert len(queue) == 1
        assert queue.pop() is keep

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(5, lambda: None)
        queue.push(9, lambda: None)
        first.cancel()
        queue.note_cancelled()
        assert queue.peek_time() == 9

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek_time() is None


class TestSimulator:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0

    def test_schedule_and_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(100, fired.append, "a")
        sim.schedule(50, fired.append, "b")
        sim.run()
        assert fired == ["b", "a"]
        assert sim.now == 100

    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run(until=500)
        assert sim.now == 500

    def test_run_until_leaves_later_events_queued(self):
        sim = Simulator()
        fired = []
        sim.schedule(100, fired.append, "early")
        sim.schedule(900, fired.append, "late")
        sim.run(until=500)
        assert fired == ["early"]
        assert sim.now == 500
        assert sim.pending_events == 1
        sim.run()
        assert fired == ["early", "late"]

    def test_event_scheduled_during_run_executes(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if sim.now < 30:
                sim.schedule(10, chain)

        sim.schedule(10, chain)
        sim.run()
        assert fired == [10, 20, 30]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5, lambda: None)

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(10, fired.append, "x")
        sim.cancel(event)
        sim.run()
        assert fired == []
        assert sim.pending_events == 0

    def test_cancel_twice_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(10, lambda: None)
        sim.cancel(event)
        sim.cancel(event)
        assert sim.pending_events == 0

    def test_max_events_bound(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(i, fired.append, i)
        sim.run(max_events=4)
        assert fired == [0, 1, 2, 3]

    def test_charge_without_meter_is_noop(self):
        sim = Simulator()
        sim.charge(1_000)  # must not raise

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(3):
            sim.schedule(i, lambda: None)
        sim.run()
        assert sim.events_processed == 3
