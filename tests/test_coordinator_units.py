"""Unit tests for the view-change coordinator's state machine."""

from repro.messages.internal import RequestVc, StateInstalled
from repro.messages.viewchange import ViewChange
from tests.conftest import Harness


def coordinator(harness, index=0):
    return harness.replicas[index].coordinator


class TestAbortRules:
    def test_initial_state(self, harness):
        c = coordinator(harness)
        assert c.stable_view == 0
        assert c.pending_view is None
        assert c.last_accepted_view == 0

    def test_allowed_progression(self, harness):
        c = coordinator(harness)
        assert c._allowed(1)
        assert not c._allowed(0)
        assert not c._allowed(2)

    def test_request_vc_drives_a_full_view_change(self, harness):
        c = coordinator(harness)
        c.on_message(("r0", "x"), RequestVc("test", 0))
        harness.run(5)
        # the suspicion propagated: the whole group moved to view 1
        assert c.stable_view == 1
        assert c.pending_view is None
        assert harness.views() == [1, 1, 1]

    def test_stale_suspicion_ignored(self, harness):
        c = coordinator(harness)
        c.stable_view = 3
        c.last_accepted_view = 3
        c.on_message(("r0", "x"), RequestVc("stale", suspected_view=1))
        harness.run(5)
        assert c.pending_view is None

    def test_resend_only_never_starts_a_view_change(self, harness):
        c = coordinator(harness)
        c.on_message(("r0", "x"), RequestVc("nudge", 0, resend_only=True))
        harness.run(5)
        assert c.pending_view is None

    def test_stale_request_vc_after_install_is_ignored(self, harness):
        c = coordinator(harness)
        c.on_message(("r0", "x"), RequestVc("first", 0))
        harness.run(5)
        assert c.stable_view == 1
        # a straggler suspicion about view 0 must not trigger another change
        c.on_message(("r0", "x"), RequestVc("stale", suspected_view=0))
        harness.run(5)
        assert c.stable_view == 1

    def test_obsolete_collection_discarded_after_install(self, harness):
        """The race that once regressed pillar counters: a NEW-VIEW installs
        while unit collection for the same view is still in flight."""
        c = coordinator(harness)
        c._collecting = (1, {})
        c.stable_view = 1  # the view established itself meanwhile
        c.last_accepted_view = 1
        from repro.messages.internal import UnitVc

        c.on_message(("r0", "pillar0"), UnitVc(0, 1, 0, ()))
        harness.run(5)
        assert c.pending_view is None  # no VcReady was issued


class TestPrepareAbsorption:
    def test_known_prepares_keep_newest_view(self, harness):
        from repro.messages.ordering import Prepare

        c = coordinator(harness)
        old = Prepare(0, 5, (), "r0")
        new = Prepare(1, 5, (), "r1")
        c._absorb_prepares([old])
        c._absorb_prepares([new])
        c._absorb_prepares([old])  # older view must not overwrite
        assert c.known_prepares[5].view == 1

    def test_absorption_respects_checkpoint(self, harness):
        from repro.messages.ordering import Prepare

        c = coordinator(harness)
        c.checkpoint_order = 10
        c._absorb_prepares([Prepare(0, 5, (), "r0")])
        assert 5 not in c.known_prepares

    def test_note_checkpoint_prunes(self, harness):
        from repro.messages.ordering import Prepare

        c = coordinator(harness)
        c._absorb_prepares([Prepare(0, 5, (), "r0"), Prepare(0, 15, (), "r0")])
        c.note_checkpoint(10, ())
        assert list(c.known_prepares) == [15]

    def test_note_checkpoint_monotone(self, harness):
        c = coordinator(harness)
        c.note_checkpoint(10, ("cert-a",))
        c.note_checkpoint(5, ("cert-b",))
        assert c.checkpoint_order == 10
        assert c.checkpoint_certificate == ("cert-a",)


class TestStateTransferBookkeeping:
    def test_transfer_deduplicated(self, harness):
        c = coordinator(harness)
        c._start_state_transfer(16, "r1")
        assert c._transfer_in_flight == 16
        c._start_state_transfer(8, "r2")  # lower: ignored
        assert c._transfer_in_flight == 16

    def test_transfer_to_unknown_source_aborts_cleanly(self, harness):
        c = coordinator(harness)
        c._start_state_transfer(16, "not-a-replica")
        assert c._transfer_in_flight is None

    def test_stale_target_skipped(self, harness):
        c = coordinator(harness)
        c.note_checkpoint(20, ())
        c._start_state_transfer(16, "r1")
        assert c._transfer_in_flight is None

    def test_failed_install_clears_in_flight(self, harness):
        c = coordinator(harness)
        c._transfer_in_flight = 16
        c.on_message(("r0", "exec"), StateInstalled(16, success=False))
        assert c._transfer_in_flight is None


class TestGarbageCollection:
    def test_artifacts_of_superseded_views_dropped(self, harness):
        c = coordinator(harness)
        c._vc_store[(1, "r1")] = object()
        c._combined_vcs[1] = {}
        c._nv_store[1] = object()
        c._garbage_collect(installed_view=2)
        assert not c._vc_store
        assert not c._combined_vcs
        assert not c._nv_store
