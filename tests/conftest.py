"""Shared fixtures and helpers for the protocol test suite."""

from __future__ import annotations

import pytest

from repro.clients.client import Client
from repro.clients.workload import NullWorkload, Workload
from repro.core.config import ReplicaGroupConfig
from repro.core.replica import build_group
from repro.services.counter import CounterService
from repro.services.kvstore import KeyValueStore
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.process import Endpoint
from repro.sim.resources import Machine

MS = 1_000_000


class Harness:
    """A small, fully wired Hybster cluster for integration tests."""

    def __init__(
        self,
        num_pillars: int = 1,
        service_factory=CounterService,
        rotation: bool = False,
        checkpoint_interval: int = 8,
        window_size: int = 16,
        batch_size: int = 1,
        n: int = 3,
    ):
        self.sim = Simulator()
        self.network = Network(self.sim)
        self.config = ReplicaGroupConfig(
            replica_ids=tuple(f"r{i}" for i in range(n)),
            num_pillars=num_pillars,
            rotation=rotation,
            checkpoint_interval=checkpoint_interval,
            window_size=window_size,
            batch_size=batch_size,
        )
        self.machines = [Machine(self.sim, rid, cores=4) for rid in self.config.replica_ids]
        self.replicas = build_group(self.sim, self.network, self.machines, self.config, service_factory)
        self.client_machine = Machine(self.sim, "clients", cores=4)
        self.client_endpoint = Endpoint(self.sim, self.network, "clients")
        self.clients: list[Client] = []

    def add_client(self, workload: Workload | None = None, window: int = 1) -> Client:
        index = len(self.clients)
        client = Client(
            self.client_endpoint,
            self.client_machine.allocate_thread(f"c{index}"),
            self.config,
            f"c{index}",
            workload or NullWorkload(),
            window=window,
        )
        self.clients.append(client)
        return client

    def run(self, ms: float) -> None:
        self.sim.run(until=self.sim.now + int(ms * MS))

    def start_clients(self) -> None:
        for client in self.clients:
            client.start()

    def drain(self, ms: float = 100) -> None:
        """Stop the load and let in-flight instances finish."""
        for client in self.clients:
            client.stop()
        self.run(ms)

    # ------------------------------------------------------------------
    @property
    def completed(self) -> int:
        return sum(client.completed for client in self.clients)

    def service_states(self) -> list:
        return [replica.service.state_digestible() for replica in self.replicas]

    def assert_replicas_consistent(self) -> None:
        states = self.service_states()
        assert len({str(state) for state in states}) == 1, f"replicas diverged: {states}"

    def views(self) -> list[int]:
        return [replica.current_view for replica in self.replicas]


@pytest.fixture
def harness():
    return Harness()


@pytest.fixture
def kv_harness():
    return Harness(service_factory=KeyValueStore, num_pillars=2)
