"""Additional TrInX coverage: certificate datatypes and wire accounting."""

from repro.trinx.certificates import (
    CERT_HEADER_SIZE,
    CONTINUING,
    INDEPENDENT,
    MAC_SIZE,
    CounterCertificate,
    MultiCounterCertificate,
)
from repro.trinx.enclave import EnclavePlatform, GroupConfiguration
from repro.trinx.trinx import TrInX

SECRET = b"certs-group-secret-000000000000!"


class TestCertificateDatatypes:
    def test_kind_detection(self):
        independent = CounterCertificate("i", 0, 5, None, b"m" * 32)
        continuing = CounterCertificate("i", 0, 5, 3, b"m" * 32)
        assert independent.kind == INDEPENDENT
        assert continuing.kind == CONTINUING

    def test_trusted_mac_detection(self):
        trusted = CounterCertificate("i", 0, 5, 5, b"m" * 32)
        advancing = CounterCertificate("i", 0, 6, 5, b"m" * 32)
        assert trusted.is_trusted_mac
        assert not advancing.is_trusted_mac
        independent = CounterCertificate("i", 0, 5, None, b"m" * 32)
        assert not independent.is_trusted_mac

    def test_wire_sizes(self):
        single = CounterCertificate("i", 0, 5, None, b"m" * 32)
        assert single.wire_size() == CERT_HEADER_SIZE + MAC_SIZE
        multi = MultiCounterCertificate("i", ((0, 5, 0), (1, 7, 2)), b"m" * 32)
        assert multi.wire_size() == CERT_HEADER_SIZE + MAC_SIZE + 32

    def test_multi_value_lookup(self):
        multi = MultiCounterCertificate("i", ((0, 5, 0), (2, 9, 1)), b"m" * 32)
        assert multi.value_of(0) == 5
        assert multi.value_of(2) == 9
        assert multi.value_of(1) is None


class TestMultiCounterViewChangeUse:
    """The rotation configuration's certificate pattern (DESIGN.md §7)."""

    def test_seal_all_lanes_with_one_call(self):
        platform = EnclavePlatform()
        instance = TrInX(platform, "r0/tss0", SECRET, num_counters=4)
        # lanes 0..2 at different positions, as after mixed participation
        instance.create_independent(0, 100, "lane0")
        instance.create_independent(1, 50, "lane1")
        calls_before = platform.calls
        sealed_value = 1 << 40  # flatten(1, 0)
        multi = instance.create_multi_continuing(
            {0: sealed_value, 1: sealed_value, 2: sealed_value}, "view-change"
        )
        assert platform.calls == calls_before + 1
        previous = {counter: prev for counter, _new, prev in multi.entries}
        assert previous == {0: 100, 1: 50, 2: 0}
        # all lanes are sealed: no lane can certify view-0 values anymore
        import pytest
        from repro.errors import CounterRegressionError

        with pytest.raises(CounterRegressionError):
            instance.create_independent(2, 7, "late order message")

    def test_verification_by_peer(self):
        platform = EnclavePlatform()
        issuer = TrInX(platform, "r0/tss0", SECRET, num_counters=3)
        verifier = TrInX(platform, "r1/tss0", SECRET, num_counters=3)
        multi = issuer.create_multi_continuing({0: 4, 1: 4}, "vc")
        assert verifier.verify_multi(multi, "vc")
        assert not verifier.verify_multi(multi, "other")


class TestGroupConfiguration:
    def test_secret_validation(self):
        import pytest
        from repro.errors import SealedKeyMismatchError

        group = GroupConfiguration(group_secret=SECRET)
        group.validate_secret(SECRET)
        with pytest.raises(SealedKeyMismatchError):
            group.validate_secret(b"x" * 32)

    def test_enclave_call_cost_components(self):
        native = EnclavePlatform(via_jni=False)
        jni = EnclavePlatform(via_jni=True)
        assert jni.enter_call_cost_ns(32) - native.enter_call_cost_ns(32) == 300
        # larger messages hash longer inside the enclave
        assert native.enter_call_cost_ns(1024) > native.enter_call_cost_ns(32)
