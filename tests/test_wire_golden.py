"""Golden-bytes regression tests for the wire codec.

Every registered message type gets its encoded frame pinned by length and
SHA-256; the hot-path messages (client request, batched PREPARE) are
additionally pinned byte for byte.  These constants *are* the wire
format: a failure here means frames changed on the wire, which breaks
mixed-version groups and recorded traces.  If the change is intentional
(a new field, a reordered registry), re-generate the constants and say
so in the commit message — never "fix" the test by loosening it.

The fixtures come from ``tests.test_wire_codec.SAMPLES``, which the
registry-coverage test there forces to stay exhaustive, so a newly
registered message type shows up here as a missing-pin failure.
"""

import hashlib
from dataclasses import replace

from repro.core.seqnum import flatten
from repro.crypto.mac import digest_many
from repro.messages.client import Request
from repro.messages.ordering import Prepare
from repro.trinx.enclave import EnclavePlatform
from repro.trinx.trinx import TrInX, batch_root
from repro.wire.codec import default_codec
from tests.test_wire_codec import SAMPLES

# (frame length, sha256 of frame) per message type, in SAMPLES order.
GOLDEN_FRAMES = {
    "Authenticator": (58, "635493c93e3c07289041a9282b24cbe55e034ee2e7b3ab57491b81cb47d7f60c"),
    "Checkpoint": (88, "9977bdd002fdcf21c3a32828c473f0b0c8f992b57827fd9cbd975a9158678ef0"),
    "Reply": (63, "ea3b5f186a9d5da52a790216f1b14611be6e1b9eb2c8f7d5e577f22c6fd2125e"),
    "Request": (100, "91bb0392ac33bb4ee895495d26391cb8db12ad4c37064415f38fdfa4916e5fd1"),
    "RequestBurst": (135, "3e9a1a8539a40f8f138720beff7012e7a16b67a4850fc8d20769dfd7f83640ef"),
    "AckReady": (163, "f3347140f3747da81ec75506a2001f0be0f819465b146656f330fd6a8287490f"),
    "CkReached": (49, "c6b0cfdb81cf54b291a65f8db40dfc6e81247c3a35cfdd38f54246dca0c30439"),
    "CkStable": (131, "c3da384696d2d5499500c569c580bc7cc0bb10b2ddfa2bead436ba8f117cfa41"),
    "ExecRequest": (110, "7a1d778f3aec9d03693ef9044d0f22bfa0214ed1208b9f0edcb688e063b429fb"),
    "Executed": (60, "50a814b39fca75fd51fc9f271014991778022ae77f53a4f964a7a2900414c23f"),
    "FillGap": (26, "72f86d5baea2ce30636bf45564475e68611ad44365a626a506061f25d8a185da"),
    "ForwardAck": (171, "67c2b82807eb5c8b5f0ab5d63f4ed6116f89dd370eb030bbb684547dc8088c40"),
    "ForwardNv": (700, "05360a8546e2990db5fe15e86cb492e2330090976ea2b0755c56b5a0e7853f6c"),
    "ForwardVc": (327, "f4d4ad66f3fa71ae9e6ed604b9867c22d104b4e59b910db907575a1ce1c5fafe"),
    "NvReady": (690, "671cf924acc40c8fe53d8da0ad2b771ad8614ab436797e7315c5ef12bb0f0f55"),
    "NvStable": (236, "fdea58061e14bbcdcac0d3bdb504bff11d0100bcd02dfbe531bb96aa349b4554"),
    "OrderRequest": (106, "e6a7c16d0acf7bb4901968f132bba9537cff8fc5f56a2f8bff5e13403b285bcd"),
    "PrepareVc": (26, "989fac592443692afd11a98abaa5bbd604b46a43957f727d9bc385370b356047"),
    "ReReply": (104, "1fc5b6ac088922e01740c4682c650a960063820e0e18d588995cceb9a3e7be49"),
    "ReplyJob": (69, "bad015637531320a672c905042eb81e28eb2768a176abf84aca12af92208d1df"),
    "RequestState": (31, "3d9b5d9cd34b07e2bb7d0c3a622df129e9313ba70c2a7a8f6ad355ad5a938fd4"),
    "RequestVc": (45, "852790e0c52bed9afe8405805ffe1ab8a19a232c1cd37450e2be1d7c2641735c"),
    "ResendNv": (30, "539d149968d31ba299f663831ded102bb910de3717d95b3249e84acc44317956"),
    "ResendVc": (26, "e30e2b5a3a2c92e190a5be371a8e0f7956adcdf13a9a7c35d2c03a8c51bb5f1c"),
    "StateInstall": (92, "77af8af1832b20cad1c49a0e651ea5af379537631ba4b35219fa405c2c857d3d"),
    "StateInstalled": (28, "170615297c74ef981190d1cd5a4f0ec4b7a15882eef4dbfd61eb02ff44958454"),
    "UnitVc": (164, "d010bb3152a0065b19ff0979bbc84dc288d1c21179fa54cfd2a3399d67fb0b14"),
    "VcReady": (236, "487ac19e56203e6ff8ee29c6adcd0829d8745ddfcaa99ff9dea92d10d7c9bf3b"),
    "ViewInstalled": (45, "9bd8b18a613d4be630aeffe7d53df259b6f6451442ce09dfe622d542d111fc83"),
    "Commit": (89, "3d639c35a32f4bb5f7301876cba7906fab17a6a243ea6fb36f51195d0921204d"),
    "InstanceFetch": (28, "db4710ee45161142b31af0ebacbb301508aac7a3ade2c3766e4dacd4e0f921ed"),
    "Prepare": (151, "ec40ca366423cdd934d1d0a2ede06481646834925d23a16c372cce171083c20d"),
    "StateRequest": (31, "33559787a59fccaf240057e49b46fed4fcd24c59f8765a34922c7a8c8d4a4974"),
    "StateResponse": (122, "f5439cc03bc983538c7a4347a164bb9e16ede37514248b42954dea85baab8a06"),
    "NewView": (696, "d856255632b3add5754a2aa0d4350d4ad133d7508e99ff9052e7836397cabb0a"),
    "NewViewAck": (167, "a96865ed4e98faed74a264e7a9fbca691c7e28b2bf5bb442aa15336da510c5a5"),
    "ViewChange": (323, "18fbe85ac3c94f6e8c597a8a9a09019ecc907726c0fdac829bd9543b4e29f896"),
    "CounterCertificate": (55, "92254351b26a90baa4693e1a5da0fe9abd3eed0b42ab313a9077bbec5e028aa8"),
    "MultiCounterCertificate": (66, "5634e494fff8f48e53b0bafd55e2d59dffab632da6ffa3dcd9329a5e42b743ef"),
}

# A batched PREPARE — two requests, one batch certificate, the batch
# digest commitment — pinned byte for byte.  This is the frame the
# tentpole changed (field count 6 -> 7): any further drift must be loud.
GOLDEN_BATCHED_PREPARE_HEX = (
    "487901010020000000e0d0634e960000000000000b20070302035407020b0405050a63"
    "6c69656e74733a6331030e0503696e6303000620111111111111111111111111111111"
    "1111111111111111111111111111111111000b0405050a636c69656e74733a63320306"
    "0503676574030006202222222222222222222222222222222222222222222222222222"
    "22222222222200050272310b2605050772302f74737330030003d48080808040000620"
    "00ae844c5f2cd26e480efbe133a2ffbcc19abf7daab6dd6765adf667382208d9000206"
    "20dabf10337a880438fee4f827af56d7d8a05c7394c0a5d66fb33acbddd364e94a00"
)

GOLDEN_REQUEST_HEX = (
    "4879010100040000003bea23081a0000000000000b0405050a636c69656e74733a6331"
    "030e0503696e6303000620111111111111111111111111111111111111111111111111"
    "111111111111111100"
)


def _batched_prepare() -> Prepare:
    secret = b"golden-bytes-fixture-secret-0000"
    trinx = TrInX(EnclavePlatform(), "r0/tss0", secret, num_counters=2)
    requests = (
        Request("clients:c1", 7, "inc", mac=b"\x11" * 32),
        Request("clients:c2", 3, "get", mac=b"\x22" * 32),
    )
    bare = Prepare(1, 42, requests, "r1")
    leaves = digest_many([request.digestible() for request in requests])
    certificate = trinx.create_independent_batch(
        0, flatten(1, 42), bare.certified_digestible(), leaves
    )
    return replace(bare, certificate=certificate, batch_digest=batch_root(leaves))


class TestGoldenFrames:
    def test_every_sample_type_is_pinned(self):
        assert sorted(GOLDEN_FRAMES) == sorted(type(sample).__name__ for sample in SAMPLES)

    def test_frame_hashes_are_stable(self):
        codec = default_codec()
        mismatches = []
        for sample in SAMPLES:
            name = type(sample).__name__
            frame = bytes(codec.encode(sample))
            expected_len, expected_sha = GOLDEN_FRAMES[name]
            actual = (len(frame), hashlib.sha256(frame).hexdigest())
            if actual != (expected_len, expected_sha):
                mismatches.append((name, actual))
        assert not mismatches, f"wire format drifted for: {mismatches}"

    def test_batched_prepare_bytes_exact(self):
        codec = default_codec()
        prepare = _batched_prepare()
        frame = bytes(codec.encode(prepare))
        assert frame.hex() == GOLDEN_BATCHED_PREPARE_HEX
        assert codec.decode(frame) == prepare

    def test_request_bytes_exact(self):
        codec = default_codec()
        request = _batched_prepare().batch[0]
        frame = bytes(codec.encode(request))
        assert frame.hex() == GOLDEN_REQUEST_HEX
        assert codec.decode(frame) == request

    def test_batch_digest_roundtrips_through_the_codec(self):
        codec = default_codec()
        prepare = _batched_prepare()
        decoded = codec.decode(bytes(codec.encode(prepare)))
        assert decoded.batch_digest == prepare.batch_digest
        assert decoded.certificate == prepare.certificate
        # and the None case (pre-batching senders) still round-trips
        legacy = replace(prepare, batch_digest=None)
        assert codec.decode(bytes(codec.encode(legacy))).batch_digest is None
