"""Integration tests: checkpointing, garbage collection, state transfer."""

from repro.sim.faults import Partition
from tests.conftest import Harness


class TestCheckpointing:
    def test_checkpoints_become_stable(self, harness):
        harness.add_client(window=4)
        harness.start_clients()
        harness.run(100)
        harness.drain()
        for replica in harness.replicas:
            assert replica.pillars[0].stable_ck_order > 0
            assert replica.pillars[0].stable_ck_order % harness.config.checkpoint_interval == 0

    def test_log_garbage_collected_behind_checkpoint(self, harness):
        harness.add_client(window=4)
        harness.start_clients()
        harness.run(200)
        harness.drain()
        for replica in harness.replicas:
            pillar = replica.pillars[0]
            stable = pillar.stable_ck_order
            assert stable > harness.config.checkpoint_interval  # several checkpoints
            assert all(order > stable for order in pillar.log._instances)

    def test_window_advances_with_checkpoints(self, harness):
        harness.add_client(window=4)
        harness.start_clients()
        harness.run(200)
        harness.drain()
        pillar = harness.replicas[0].pillars[0]
        assert pillar.log.low == pillar.stable_ck_order
        assert pillar.log.high == pillar.stable_ck_order + harness.config.window_size

    def test_checkpoint_certificates_are_quorums(self, harness):
        harness.add_client(window=4)
        harness.start_clients()
        harness.run(100)
        harness.drain()
        pillar = harness.replicas[0].pillars[0]
        assert len({c.replica for c in pillar.stable_ck_cert}) >= harness.config.quorum_size
        digests = {c.state_digest for c in pillar.stable_ck_cert}
        assert len(digests) == 1

    def test_shared_checkpointing_rotates_across_pillars(self):
        harness = Harness(num_pillars=2, checkpoint_interval=4, window_size=8)
        harness.add_client(window=4)
        harness.start_clients()
        harness.run(150)
        harness.drain()
        # CkReached is routed by checkpoint number mod P; both pillars must
        # have issued checkpoint messages over a long run
        leader = harness.replicas[0]
        issued = [pillar.trinx.certificates_issued for pillar in leader.pillars]
        assert all(count > 0 for count in issued)

    def test_execution_keeps_stable_snapshot(self, harness):
        harness.add_client(window=4)
        harness.start_clients()
        harness.run(100)
        harness.drain()
        execution = harness.replicas[0].execution
        order = execution.stable_checkpoint_order
        assert order > 0
        assert order <= execution.next_order - 1


class TestStateTransfer:
    def test_lagging_replica_catches_up_via_state_transfer(self):
        harness = Harness(checkpoint_interval=8, window_size=16)
        harness.add_client(window=4)
        harness.add_client(window=4)
        harness.start_clients()
        harness.run(50)
        # cut off the follower r2 long enough to fall behind many windows
        partition = Partition({"r2"}, start_ns=harness.sim.now, end_ns=harness.sim.now + 400_000_000)
        harness.network.add_filter(partition)
        harness.run(400)
        lag_before = (
            harness.replicas[0].execution.next_order - harness.replicas[2].execution.next_order
        )
        assert lag_before > harness.config.window_size  # genuinely fell behind
        harness.run(600)
        harness.drain()
        lag_after = (
            harness.replicas[0].execution.next_order - harness.replicas[2].execution.next_order
        )
        assert lag_after <= harness.config.window_size
        # the recovered replica's service really holds the transferred state
        live = [str(s) for s in harness.service_states()]
        assert live[0] == live[1]

    def test_state_transfer_preserves_reply_capability(self):
        harness = Harness(checkpoint_interval=8, window_size=16)
        client = harness.add_client(window=2)
        harness.start_clients()
        harness.run(50)
        harness.network.add_filter(
            Partition({"r2"}, start_ns=harness.sim.now, end_ns=harness.sim.now + 300_000_000)
        )
        harness.run(1000)
        harness.drain()
        # r2 must have installed snapshots including the reply vector
        r2_exec = harness.replicas[2].execution
        assert r2_exec.reply_cache_entry(client.client_id) is not None
