"""Open-loop arrival processes: determinism and distribution sanity.

The SLO numbers recorded by gateway benchmarks are only comparable
across runs because arrivals reproduce bit-for-bit under a fixed seed —
these tests pin that, plus the statistical shape each process promises
(exponential gaps for Poisson, on/off phases for bursty, a rate swing
for diurnal).
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.loadgen.arrivals import (
    NS_PER_S,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    make_arrivals,
)
from repro.sim.rand import derive_seed


def _gaps(process, n, start_ns=0):
    gaps, now = [], start_ns
    for _ in range(n):
        gap = process.next_gap_ns(now)
        gaps.append(gap)
        now += gap
    return gaps


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", ["poisson", "bursty", "diurnal"])
def test_same_seed_same_sequence(kind):
    seed = derive_seed(42, "gateway", "gw0", "arrivals")
    a = make_arrivals(kind, 5000.0, seed)
    b = make_arrivals(kind, 5000.0, seed)
    assert _gaps(a, 500) == _gaps(b, 500)


@pytest.mark.parametrize("kind", ["poisson", "bursty", "diurnal"])
def test_different_seeds_diverge(kind):
    a = make_arrivals(kind, 5000.0, derive_seed(42, "a"))
    b = make_arrivals(kind, 5000.0, derive_seed(42, "b"))
    assert _gaps(a, 100) != _gaps(b, 100)


def test_derive_seed_separates_gateway_nodes():
    # two gateway nodes of the same run must not generate identical load
    s0 = derive_seed(7, "gateway", "gw0", "arrivals")
    s1 = derive_seed(7, "gateway", "gw1", "arrivals")
    assert s0 != s1
    assert _gaps(PoissonArrivals(1000.0, s0), 50) != _gaps(PoissonArrivals(1000.0, s1), 50)


# ----------------------------------------------------------------------
# Poisson: exponential inter-arrivals at the requested rate
# ----------------------------------------------------------------------
def test_poisson_mean_gap_matches_rate():
    rate = 2000.0
    gaps = _gaps(PoissonArrivals(rate, seed=1), 20_000)
    mean = sum(gaps) / len(gaps)
    expected = NS_PER_S / rate
    assert expected * 0.95 < mean < expected * 1.05


def test_poisson_gaps_are_dispersed():
    # exponential gaps: the coefficient of variation is ~1, nothing like
    # the 0 a constant-rate generator would produce
    gaps = _gaps(PoissonArrivals(1000.0, seed=2), 20_000)
    mean = sum(gaps) / len(gaps)
    var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
    cv = var**0.5 / mean
    assert 0.9 < cv < 1.1
    assert all(g > 0 for g in gaps)


# ----------------------------------------------------------------------
# Bursty: on/off phases, long-run average preserved
# ----------------------------------------------------------------------
def test_bursty_preserves_long_run_rate():
    rate = 2000.0
    process = BurstyArrivals(rate, seed=3, on_ms=50, off_ms=50)
    count, now, horizon = 0, 0, 10 * NS_PER_S
    while now < horizon:
        now += process.next_gap_ns(now)
        count += 1
    observed = count / (now / NS_PER_S)
    assert rate * 0.9 < observed < rate * 1.1


def test_bursty_concentrates_arrivals_in_on_phases():
    # phases anchor at t=0: [0, on) is ON, [on, on+off) is OFF
    on_ns, off_ns = 50 * 1_000_000, 50 * 1_000_000
    period = on_ns + off_ns
    process = BurstyArrivals(2000.0, seed=4, on_ms=50, off_ms=50)
    in_on, total, now = 0, 0, 0
    while now < 5 * NS_PER_S:
        now += process.next_gap_ns(now)
        total += 1
        if now % period < on_ns:
            in_on += 1
    assert total > 0
    assert in_on / total > 0.95


# ----------------------------------------------------------------------
# Diurnal: the rate actually swings over the period
# ----------------------------------------------------------------------
def test_diurnal_rate_swings_between_trough_and_peak():
    # the run starts at the trough (base rate) and crests mid-period
    process = DiurnalArrivals(1000.0, seed=5, period_ms=1000, peak_factor=3)
    trough = process.rate_at(0)
    peak = process.rate_at(500 * 1_000_000)
    assert 950 < trough < 1050
    assert 2850 < peak < 3150
    assert peak > 2.5 * trough


def test_diurnal_density_tracks_the_ramp():
    period_ns = NS_PER_S  # 1000 ms
    process = DiurnalArrivals(1000.0, seed=6, period_ms=1000, peak_factor=3)
    mid_period, outer, now = 0, 0, 0
    while now < 20 * NS_PER_S:
        now += process.next_gap_ns(now)
        phase = now % period_ns
        if period_ns // 4 < phase < 3 * period_ns // 4:
            mid_period += 1  # around the crest
        else:
            outer += 1  # around the trough
    assert mid_period > 1.5 * outer


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def test_make_arrivals_rejects_unknown_kind():
    with pytest.raises(ConfigurationError):
        make_arrivals("constant", 1000.0, 0)


@pytest.mark.parametrize(
    "kind,kwargs",
    [
        ("poisson", {"rate_ops": 0.0}),
        ("bursty", {"rate_ops": 100.0, "on_ms": 0.0}),
        ("diurnal", {"rate_ops": 100.0, "peak_factor": 0.5}),
    ],
)
def test_invalid_parameters_rejected(kind, kwargs):
    rate = kwargs.pop("rate_ops")
    with pytest.raises(ConfigurationError):
        make_arrivals(kind, rate, 0, **kwargs)
