"""End-to-end fault injection with the reusable Byzantine replica doubles."""

from repro.byzantine import build_group_with_byzantine
from repro.clients.client import Client
from repro.clients.workload import NullWorkload
from repro.core.config import ReplicaGroupConfig
from repro.services.counter import CounterService
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.process import Endpoint
from repro.sim.resources import Machine

MS = 1_000_000


def build(byzantine: str, behaviour: str, behaviour_config=None, num_pillars=1, clients=2):
    sim = Simulator()
    network = Network(sim)
    config = ReplicaGroupConfig(
        replica_ids=("r0", "r1", "r2"),
        num_pillars=num_pillars,
        checkpoint_interval=8,
        window_size=16,
    )
    machines = [Machine(sim, rid, cores=4) for rid in config.replica_ids]
    replicas = build_group_with_byzantine(
        sim, network, machines, config, CounterService,
        byzantine_replica=byzantine, behaviour=behaviour, behaviour_config=behaviour_config,
    )
    client_machine = Machine(sim, "clients", cores=4)
    endpoint = Endpoint(sim, network, "clients")
    client_objects = [
        Client(endpoint, client_machine.allocate_thread(f"c{i}"), config, f"c{i}",
               NullWorkload(), window=2)
        for i in range(clients)
    ]
    for client in client_objects:
        client.start()
    return sim, replicas, client_objects


def drain(sim, clients, ms=300):
    """Stop the load and let in-flight instances finish before comparing."""
    for client in clients:
        client.stop()
    sim.run(until=sim.now + ms * MS)


def consistent_live_states(replicas, byzantine_id):
    states = {
        str(replica.service.state_digestible())
        for replica in replicas
        if replica.replica_id != byzantine_id
    }
    return len(states) == 1


class TestMuteLeader:
    def test_group_replaces_a_mute_leader(self):
        sim, replicas, clients = build("r0", "mute", {"mute_after_ns": 100 * MS})
        sim.run(until=100 * MS)
        before = sum(client.completed for client in clients)
        sim.run(until=3_000 * MS)
        after = sum(client.completed for client in clients)
        assert after > before
        assert all(replica.current_view >= 1 for replica in replicas[1:])
        drain(sim, clients)
        assert consistent_live_states(replicas, "r0")


class TestMuteFollower:
    def test_mute_follower_is_tolerated_without_view_change(self):
        sim, replicas, clients = build("r2", "mute", {"mute_after_ns": 50 * MS})
        sim.run(until=600 * MS)
        assert sum(client.completed for client in clients) > 100
        assert replicas[0].current_view == 0
        drain(sim, clients)
        assert consistent_live_states(replicas, "r2")


class TestEquivocatingLeader:
    def test_forged_copies_rejected_and_group_stays_consistent(self):
        sim, replicas, clients = build("r0", "equivocate")
        sim.run(until=2_500 * MS)
        byzantine = replicas[0]
        attempts = sum(p.equivocation_attempts for p in byzantine.pillars)
        assert attempts > 0
        drain(sim, clients)
        # the honest replicas never executed an injected request: their
        # states match each other and contain only client operations
        assert consistent_live_states(replicas, "r0")
        honest = replicas[1].service
        assert honest.value == 0  # null workload only; injected "add"s absent

    def test_clients_eventually_served_despite_equivocation(self):
        sim, replicas, clients = build("r0", "equivocate")
        sim.run(until=4_000 * MS)
        # half the followers reject every proposal, so view changes rotate
        # the equivocator out (or its honest copies commit); either way the
        # clients make progress
        assert sum(client.completed for client in clients) > 0


class TestCensoringLeader:
    def test_censored_client_recovers_via_view_change(self):
        sim, replicas, clients = build(
            "r0", "censor", {"censored_prefixes": ("clients:c0",)}
        )
        sim.run(until=4_000 * MS)
        censored, other = clients[0], clients[1]
        assert other.completed > 0
        # the censored client's retries armed follower suspicion timers,
        # a view change replaced r0, and the client finally got served
        assert censored.completed > 0
        assert all(replica.current_view >= 1 for replica in replicas[1:])
        assert censored.retries >= 1
        drain(sim, clients)
        assert consistent_live_states(replicas, "r0")
