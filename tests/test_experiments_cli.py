"""Tests for the experiment runner CLI and fast experiment paths."""

import pytest

from repro.experiments import runner
from repro.experiments.figure5a import measure_variant
from repro.experiments.trinx_micro import single_thread_rate


class TestRunnerCli:
    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            runner.main(["nope"])

    def test_trinx_experiment_runs(self, capsys):
        assert runner.main(["trinx", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "TrInX" in out and "CASH" in out

    def test_scale_argument_validated(self):
        with pytest.raises(SystemExit):
            runner.main(["trinx", "--scale", "huge"])


class TestFigure5aPrimitives:
    def test_measure_variant_returns_rate(self):
        rate = measure_variant("Java", cores=1, measure_ns=500_000)
        assert rate > 100_000

    def test_unknown_variant_rejected(self):
        with pytest.raises(KeyError):
            measure_variant("Blake3", cores=1, measure_ns=100_000)

    def test_single_thread_rates(self):
        trinx = single_thread_rate("trinx", measure_ns=1_000_000)
        cash = single_thread_rate("cash", measure_ns=1_000_000)
        assert trinx > 5 * cash

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            single_thread_rate("hsm")
