"""Unit tests for the CPU model: machines, cores, simulated threads."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator
from repro.sim.resources import CostMeter, Machine, SimThread


def make_thread(speed=1.0, base_cost_ns=0):
    sim = Simulator()
    return sim, SimThread(sim, "t0", speed=speed, base_cost_ns=base_cost_ns)


class TestCostMeter:
    def test_accumulates(self):
        meter = CostMeter()
        meter.add(10)
        meter.add(5)
        assert meter.total_ns == 15

    def test_reset_returns_and_clears(self):
        meter = CostMeter()
        meter.add(42)
        assert meter.reset() == 42
        assert meter.total_ns == 0


class TestSimThread:
    def test_handler_cost_occupies_thread(self):
        sim, thread = make_thread()
        done_at = []

        def handler(_):
            sim.charge(1_000)

        thread.submit(handler)
        thread.submit(lambda _: done_at.append(sim.now))
        sim.run()
        # second handler starts only after the first 1000ns busy period
        assert done_at == [1_000]

    def test_fifo_order(self):
        sim, thread = make_thread()
        seen = []
        for i in range(5):
            thread.submit(lambda arg: seen.append(arg), i)
        sim.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_speed_scales_busy_time(self):
        sim, thread = make_thread(speed=0.5)
        finished = []
        thread.submit(lambda _: sim.charge(1_000))
        thread.submit(lambda _: finished.append(sim.now))
        sim.run()
        assert finished == [2_000]

    def test_base_cost_applied_per_handler(self):
        sim, thread = make_thread(base_cost_ns=300)
        finished = []
        thread.submit(lambda _: None)
        thread.submit(lambda _: finished.append(sim.now))
        sim.run()
        assert finished == [300]

    def test_after_busy_defers_actions(self):
        sim, thread = make_thread()
        log = []

        def handler(_):
            sim.charge(2_000)
            thread.after_busy(lambda: log.append(("sent", sim.now)))
            log.append(("computed", sim.now))

        thread.submit(handler)
        sim.run()
        assert log == [("computed", 0), ("sent", 2_000)]

    def test_busy_accounting(self):
        sim, thread = make_thread()
        thread.submit(lambda _: sim.charge(5_000))
        thread.submit(lambda _: sim.charge(3_000))
        sim.run()
        assert thread.busy_ns == 8_000
        assert thread.handlers_run == 2
        assert thread.utilization(8_000) == 1.0
        assert thread.utilization(16_000) == 0.5

    def test_queue_length_visible_while_busy(self):
        sim, thread = make_thread()
        lengths = []

        def first(_):
            sim.charge(10_000)

        thread.submit(first)
        thread.submit(lambda _: None)
        thread.submit(lambda _: None)
        sim.schedule(1, lambda: lengths.append(thread.queue_length))
        sim.run()
        assert lengths == [2]

    def test_invalid_speed_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            SimThread(sim, "bad", speed=0)

    def test_meter_isolated_between_threads(self):
        sim = Simulator()
        t1 = SimThread(sim, "a")
        t2 = SimThread(sim, "b")
        finish = {}

        def heavy(_):
            sim.charge(9_000)

        def light(_):
            sim.charge(1_000)

        t1.submit(heavy)
        t2.submit(light)
        t1.submit(lambda _: finish.setdefault("a", sim.now))
        t2.submit(lambda _: finish.setdefault("b", sim.now))
        sim.run()
        assert finish == {"a": 9_000, "b": 1_000}


class TestMachine:
    def test_single_thread_runs_full_speed(self):
        sim = Simulator()
        machine = Machine(sim, "m0", cores=4)
        thread = machine.allocate_thread("p0")
        assert thread.speed == 1.0

    def test_threads_spread_across_cores_before_doubling(self):
        sim = Simulator()
        machine = Machine(sim, "m0", cores=4, ht_efficiency=0.65)
        threads = [machine.allocate_thread(f"p{i}") for i in range(4)]
        assert all(t.sibling is None for t in threads)
        fifth = machine.allocate_thread("p4")
        # the fifth thread shares core 0 with the first
        assert fifth.sibling is threads[0]
        assert threads[0].sibling is fifth
        assert threads[1].sibling is None

    def test_dynamic_ht_slowdown_only_when_sibling_busy(self):
        sim = Simulator()
        machine = Machine(sim, "m0", cores=1, ht_efficiency=0.5)
        a = machine.allocate_thread("a")
        b = machine.allocate_thread("b")
        finish = {}
        # sibling idle: full speed (1000ns of work takes 1000ns)
        a.submit(lambda _: sim.charge(1_000))
        a.submit(lambda _: finish.setdefault("solo", sim.now))
        sim.run()
        assert finish["solo"] == 1_000
        # sibling busy: half speed (1000ns of work takes 2000ns)
        start = sim.now
        a.submit(lambda _: sim.charge(10_000))
        sim.run(max_events=1)  # start the long handler on a
        b.submit(lambda _: sim.charge(1_000))
        b.submit(lambda _: finish.setdefault("contended", sim.now))
        sim.run()
        assert finish["contended"] - start == 2_000

    def test_hardware_thread_capacity(self):
        sim = Simulator()
        machine = Machine(sim, "m0", cores=2)
        assert machine.hardware_threads == 4
        for i in range(4):
            machine.allocate_thread(f"p{i}")
        with pytest.raises(ConfigurationError):
            machine.allocate_thread("overflow")

    def test_ht_disabled_halves_capacity(self):
        sim = Simulator()
        machine = Machine(sim, "m0", cores=2, ht_enabled=False)
        assert machine.hardware_threads == 2

    def test_invalid_configs_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            Machine(sim, "m0", cores=0)
        with pytest.raises(ConfigurationError):
            Machine(sim, "m0", ht_efficiency=0.2)

    def test_total_utilization(self):
        sim = Simulator()
        machine = Machine(sim, "m0", cores=2)
        t0 = machine.allocate_thread("p0")
        machine.allocate_thread("p1")
        t0.submit(lambda _: sim.charge(1_000))
        sim.run()
        assert machine.total_utilization(1_000) == pytest.approx(0.5)

    def test_total_utilization_empty_machine(self):
        sim = Simulator()
        machine = Machine(sim, "m0")
        assert machine.total_utilization(1_000) == 0.0
