"""Round-trip tests for the wire codec: every registered type, byte-exact.

The fixture table below builds one fully populated instance of each
registered message type (nested certificates, authenticators, and message
hierarchies included).  A completeness test asserts the table covers the
whole registry, so adding a message type without a fixture fails loudly.
"""

from __future__ import annotations

import pytest

from repro.crypto.authenticators import Authenticator
from repro.errors import WireFormatError, WireIntegrityError, WireUnsupportedTypeError
from repro.messages.checkpointing import Checkpoint
from repro.messages.client import Reply, Request, RequestBurst
from repro.messages.internal import (
    AckReady,
    CkReached,
    CkStable,
    ExecRequest,
    Executed,
    FillGap,
    ForwardAck,
    ForwardNv,
    ForwardVc,
    NvReady,
    NvStable,
    OrderRequest,
    PrepareVc,
    ReReply,
    ReplyJob,
    RequestState,
    RequestVc,
    ResendNv,
    ResendVc,
    StateInstall,
    StateInstalled,
    UnitVc,
    ViewInstalled,
    VcReady,
)
from repro.messages.ordering import Commit, InstanceFetch, Prepare
from repro.messages.statetransfer import StateRequest, StateResponse
from repro.messages.viewchange import NewView, NewViewAck, ViewChange
from repro.trinx.certificates import CounterCertificate, MultiCounterCertificate
from repro.wire.codec import WireCodec, default_codec
from repro.wire.framing import FRAME_HEADER_SIZE, KIND_MESSAGE, decode_frame

# ----------------------------------------------------------------------
# Building blocks (reused across fixtures, nested where the protocol nests)
# ----------------------------------------------------------------------
CERT = CounterCertificate("r0:t0", 3, 7, 6, b"\xab" * 16)
MCERT = MultiCounterCertificate("r0:t0", ((0, 1, None), (1, 5, 4)), b"\xcd" * 16)
REQUEST = Request("clients0:c0", 9, ("add", 1), 16, b"\x11" * 32)
REPLY = Reply("r1", "clients0:c0", 9, 0, ("ok", 42), 8)
PREPARE = Prepare(1, 42, (REQUEST,), "r1", CERT, False)
COMMIT = Commit(1, 42, "r2", b"\x22" * 20, CERT)
CHECKPOINT = Checkpoint(128, "r0", b"\x33" * 20, CERT)
VIEW_CHANGE = ViewChange("r2", 0, 1, 128, (CHECKPOINT,), (PREPARE,), CERT, MCERT, 0, 2)
NV_ACK = NewViewAck("r1", 1, (PREPARE,), 0, 2)
NEW_VIEW = NewView("r1", 1, 0, 128, (CHECKPOINT,), (VIEW_CHANGE,), (NV_ACK,), (PREPARE,), 0, 2)

SAMPLES = [
    Authenticator("r0", {"r1": b"\x01" * 8, "r2": b"\x02" * 8}),
    CHECKPOINT,
    REPLY,
    REQUEST,
    RequestBurst((REQUEST, Request("clients0:c1", 0, ("get",), 0, None))),
    AckReady(1, ((PREPARE,), ())),
    CkReached(128, b"\x44" * 20),
    CkStable(128, (CHECKPOINT, Checkpoint(128, "r1", b"\x33" * 20, None))),
    ExecRequest(42, 1, (REQUEST,)),
    Executed((("clients0:c0", 9), ("clients0:c1", 0))),
    FillGap(7),
    ForwardAck(NV_ACK),
    ForwardNv(NEW_VIEW),
    ForwardVc(VIEW_CHANGE),
    NvReady(1, 0, 128, (CHECKPOINT,), (VIEW_CHANGE,), (NV_ACK,), ((PREPARE,),)),
    NvStable(1, 128, (CHECKPOINT,), ((PREPARE,), ())),
    OrderRequest((REQUEST,)),
    PrepareVc(1),
    ReReply(REQUEST),
    ReplyJob((REPLY,)),
    RequestState(128, "r1"),
    RequestVc("suspected leader", 0, False),
    ResendNv(1, "r2"),
    ResendVc(1),
    StateInstall(128, ("counter", 0, 160), (("clients0:c0", 9, ("ok", 1)),), b"\x55" * 20),
    StateInstalled(128, True),
    UnitVc(0, 1, 128, (PREPARE,)),
    VcReady(0, 1, 128, (CHECKPOINT,), ((PREPARE,),)),
    ViewInstalled(1, (("clients0:c0", 9),)),
    COMMIT,
    InstanceFetch(42, 1),
    PREPARE,
    StateRequest("r2", 128),
    StateResponse("r0", 128, (CHECKPOINT,), ("counter", 0, 160), 64, 1),
    NEW_VIEW,
    NV_ACK,
    VIEW_CHANGE,
    CERT,
    MCERT,
]


def test_fixture_table_covers_entire_registry():
    covered = {type(sample) for sample in SAMPLES}
    registered = set(default_codec().registered_types)
    assert covered == registered, (
        f"missing fixtures for {sorted(c.__name__ for c in registered - covered)}; "
        f"unregistered fixtures {sorted(c.__name__ for c in covered - registered)}"
    )


@pytest.mark.parametrize("message", SAMPLES, ids=lambda m: type(m).__name__)
def test_round_trip(message):
    codec = default_codec()
    data = codec.encode(message)
    assert codec.decode(data) == message
    # determinism: encoding is a pure function of the message
    assert codec.encode(message) == data


@pytest.mark.parametrize("message", SAMPLES, ids=lambda m: type(m).__name__)
def test_round_trip_preserves_types(message):
    decoded = default_codec().decode(default_codec().encode(message))
    assert type(decoded) is type(message)


def test_envelope_round_trip():
    codec = default_codec()
    data = codec.encode_envelope("clients0", "c0", "handler", REQUEST)
    src_node, src_stage, dst_stage, message = codec.decode_envelope(data)
    assert (src_node, src_stage, dst_stage) == ("clients0", "c0", "handler")
    assert message == REQUEST


def test_type_ids_are_stable_across_codec_instances():
    first, second = WireCodec(), WireCodec()
    assert [first.type_id_of(cls) for cls in first.registered_types] == [
        second.type_id_of(cls) for cls in second.registered_types
    ]


# ----------------------------------------------------------------------
# Tampering and malformed input
# ----------------------------------------------------------------------
def test_tampered_body_raises_integrity_error():
    data = bytearray(default_codec().encode(PREPARE))
    data[FRAME_HEADER_SIZE + 3] ^= 0xFF  # flip a body byte; header CRC disagrees
    with pytest.raises(WireIntegrityError):
        default_codec().decode(bytes(data))


def test_truncated_frame_raises_format_error():
    data = default_codec().encode(REQUEST)
    with pytest.raises(WireFormatError):
        decode_frame(data[: FRAME_HEADER_SIZE - 2])
    with pytest.raises(WireFormatError):
        decode_frame(data[:-1])


def test_bad_magic_raises_format_error():
    data = bytearray(default_codec().encode(REQUEST))
    data[0:2] = b"XX"
    with pytest.raises(WireFormatError):
        default_codec().decode(bytes(data))


def test_header_body_type_mismatch_is_rejected():
    codec = default_codec()
    frame = decode_frame(codec.encode(REQUEST))
    wrong_id = codec.type_id_of(Prepare)
    from repro.wire.framing import encode_frame

    forged = encode_frame(KIND_MESSAGE, wrong_id, frame.body)
    with pytest.raises(WireFormatError):
        codec.decode(forged)


def test_unregistered_type_is_rejected():
    import dataclasses

    @dataclasses.dataclass
    class NotOnTheWire:
        x: int

    with pytest.raises(WireUnsupportedTypeError):
        default_codec().encode(NotOnTheWire(1))


def test_modelled_payload_is_materialized_on_the_wire():
    small = Request("clients0:c0", 1, ("noop",), 0, b"\x11" * 32)
    big = Request("clients0:c0", 1, ("noop",), 4096, b"\x11" * 32)
    codec = default_codec()
    grown = len(codec.encode(big)) - len(codec.encode(small))
    # exactly the 4096 padding bytes plus the larger varint length prefix
    assert 4096 <= grown <= 4096 + 3
    assert codec.decode(codec.encode(big)) == big
