"""Unit tests for the client handler stage (ingress, dedup, suspicion)."""

from repro.core.config import ReplicaGroupConfig
from repro.core.handler import ClientHandler
from repro.crypto.provider import CryptoProvider
from repro.messages.client import Request, RequestBurst
from repro.messages.internal import Executed, OrderRequest, ReplyJob, RequestVc, ViewInstalled
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.process import Endpoint, Stage
from repro.sim.resources import Machine


class Sink(Stage):
    def __init__(self, endpoint, thread, name):
        super().__init__(endpoint, thread, name)
        self.received = []

    def on_message(self, src, message):
        self.received.append(message)


def build_handler(replica_id="r0", num_pillars=2):
    sim = Simulator()
    network = Network(sim)
    config = ReplicaGroupConfig(
        replica_ids=("r0", "r1", "r2"),
        num_pillars=num_pillars,
        checkpoint_interval=8,
        window_size=16,
    )
    machine = Machine(sim, replica_id, cores=4)
    endpoint = Endpoint(sim, network, replica_id)
    handler = ClientHandler(
        endpoint, machine.allocate_thread("handler"), config, replica_id, CryptoProvider()
    )
    pillars = [Sink(endpoint, machine.allocate_thread(f"p{i}"), f"pillar{i}") for i in range(num_pillars)]
    coordinator = Sink(endpoint, machine.allocate_thread("coord"), "coordinator")
    handler.pillar_addresses = [(replica_id, f"pillar{i}") for i in range(num_pillars)]
    handler.coordinator_address = (replica_id, "coordinator")
    return sim, handler, pillars, coordinator


def request(request_id, client="cl:c0"):
    return Request(client, request_id, None)


def orders(pillar):
    return [m for m in pillar.received if isinstance(m, OrderRequest)]


class TestIngress:
    def test_leader_routes_to_pillars_round_robin(self):
        sim, handler, pillars, _ = build_handler()
        for i in range(4):
            handler._enqueue(("cl", f"c{i}"), request(0, client=f"cl:c{i}"))
        sim.run()
        assert len(orders(pillars[0])) == 2
        assert len(orders(pillars[1])) == 2

    def test_duplicates_dropped(self):
        sim, handler, pillars, _ = build_handler()
        handler._enqueue(("cl", "c0"), request(1))
        handler._enqueue(("cl", "c0"), request(1))
        sim.run()
        assert len(orders(pillars[0])) + len(orders(pillars[1])) == 1
        assert handler.duplicates_dropped == 1

    def test_burst_grouped_per_pillar(self):
        # a burst becomes ONE OrderRequest per pillar, not one per request,
        # so a proposer can fill a whole batch from a single window refill
        sim, handler, pillars, _ = build_handler()
        burst = RequestBurst(tuple(request(i) for i in range(3)))
        handler._enqueue(("cl", "c0"), burst)
        sim.run()
        assert len(orders(pillars[0])) == 1 and len(orders(pillars[1])) == 1
        delivered = [
            r for pillar in pillars for m in orders(pillar) for r in m.requests
        ]
        assert sorted(r.request_id for r in delivered) == [0, 1, 2]

    def test_executed_requests_served_from_cache(self):
        sim, handler, pillars, _ = build_handler()
        exec_sink = Sink(handler.endpoint, handler.thread, "exec")
        handler.exec_address = ("r0", "exec")
        handler._enqueue(("r0", "exec"), Executed((("cl:c0", 5),)))
        handler._enqueue(("cl", "c0"), request(3))  # below the watermark
        sim.run()
        assert not orders(pillars[0]) and not orders(pillars[1])
        assert any(type(m).__name__ == "ReReply" for m in exec_sink.received)


class TestFollowerSuspicion:
    def test_follower_arms_timer_and_suspects(self):
        sim, handler, _pillars, coordinator = build_handler(replica_id="r1")
        handler._enqueue(("cl", "c0"), request(1))
        sim.run(until=400_000_000)
        suspicions = [m for m in coordinator.received if isinstance(m, RequestVc)]
        assert len(suspicions) == 1  # fires once, not repeatedly

    def test_execution_clears_the_timer(self):
        sim, handler, _pillars, coordinator = build_handler(replica_id="r1")
        handler._enqueue(("cl", "c0"), request(1))
        sim.run(until=50_000_000)
        handler._enqueue(("r1", "exec"), Executed((("cl:c0", 1),)))
        sim.run(until=500_000_000)
        assert not [m for m in coordinator.received if isinstance(m, RequestVc)]

    def test_watermark_jump_clears_stale_entries(self):
        sim, handler, _pillars, coordinator = build_handler(replica_id="r1")
        for i in range(1, 4):
            handler._enqueue(("cl", "c0"), request(i))
        sim.run(until=10_000_000)
        assert len(handler._in_flight) == 3
        # a state transfer reveals the client progressed to request 10
        handler._enqueue(("r1", "exec"), Executed((("cl:c0", 10),)))
        sim.run(until=500_000_000)
        assert len(handler._in_flight) == 0
        assert not [m for m in coordinator.received if isinstance(m, RequestVc)]


class TestViewInstallation:
    def test_becoming_proposer_orders_watched_requests(self):
        sim, handler, pillars, _ = build_handler(replica_id="r1")
        handler._enqueue(("cl", "c0"), request(1))
        sim.run(until=10_000_000)
        assert not orders(pillars[0])
        handler._enqueue(("r1", "coord"), ViewInstalled(1))  # r1 leads view 1
        sim.run(until=20_000_000)
        assert len(orders(pillars[0])) + len(orders(pillars[1])) == 1

    def test_covered_requests_not_reordered(self):
        sim, handler, pillars, _ = build_handler(replica_id="r1")
        handler._enqueue(("cl", "c0"), request(1))
        sim.run(until=10_000_000)
        handler._enqueue(("r1", "coord"), ViewInstalled(1, covered_keys=(("cl:c0", 1),)))
        sim.run(until=20_000_000)
        assert not orders(pillars[0]) and not orders(pillars[1])

    def test_staying_follower_rearms_timer(self):
        sim, handler, _pillars, coordinator = build_handler(replica_id="r2")
        handler._enqueue(("cl", "c0"), request(1))
        sim.run(until=10_000_000)
        handler._enqueue(("r2", "coord"), ViewInstalled(1))  # r1 leads, not us
        sim.run(until=600_000_000)
        suspicions = [m for m in coordinator.received if isinstance(m, RequestVc)]
        assert len(suspicions) >= 1
        assert all(s.suspected_view == 1 for s in suspicions)
