"""Batching must be invisible to clients and to the executed history.

The same seeded workload is run at ``batch_size`` 1 and 16, in the
simulator and over live localhost sockets.  Whatever the batch size and
runtime, the protocol must execute each client's requests in FIFO order
without loss or duplication, return the same reply values, and keep all
replicas agreed — batching changes *how many* requests share an order
number, never *what* gets executed.

Where a run is fully deterministic (the simulator; single-request
batches, whose per-order content does not depend on arrival timing) the
comparison is exact down to order numbers and batch digests.  Where it
cannot be (live batch assembly depends on wall-clock reply timing) the
comparison drops to the client-observable level: executed request
sequence and reply values.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.clients.workload import KeyValueWorkload
from repro.runtime.deployment import DeploymentSpec, build_deployment
from repro.runtime.live import run_live
from repro.scenarios.engine import TRACE_CATEGORIES
from repro.scenarios.safety import check_safety
from repro.sim.tracing import Tracer

MS = 1_000_000


def _spec(batch_size: int) -> DeploymentSpec:
    return DeploymentSpec(
        protocol="hybster-s",
        cores=2,
        service="kv",
        batch_size=batch_size,
        num_clients=1,
        client_window=16,
        client_machines=1,
        checkpoint_interval=32,
        window_size=64,
        seed=7,
        workload_factory=lambda client_id, index: KeyValueWorkload(
            client_id, keys=8, seed=11
        ),
    )


def _run_sim(batch_size: int, target: int) -> Tracer:
    tracer = Tracer(enabled=True, categories=TRACE_CATEGORIES)
    deployment = build_deployment(_spec(batch_size), tracer=tracer)
    deployment.start_clients()
    while deployment.total_completed() < target:
        assert deployment.sim.now < 5_000 * MS, "sim run did not reach target"
        deployment.sim.run(until=deployment.sim.now + 20 * MS)
    return tracer


def _run_live(batch_size: int, target: int) -> Tracer:
    tracer = Tracer(enabled=True, categories=TRACE_CATEGORIES)
    result = asyncio.run(
        run_live(_spec(batch_size), target_requests=target, max_duration_s=60, tracer=tracer)
    )
    assert result.completed >= target
    assert len(set(result.state_digests)) == 1
    return tracer


# ----------------------------------------------------------------------
# Trace projections
# ----------------------------------------------------------------------
def _orders(trace: Tracer, replica: str) -> dict[int, tuple[str, tuple]]:
    """order -> (batch digest, executed request keys) for one replica."""
    orders: dict[int, tuple[str, tuple]] = {}
    for record in trace.select(category="execute"):
        if record.node.split("/", 1)[0] != replica:
            continue
        _view, order, digest, keys = record.detail
        orders[int(order)] = (digest, tuple(tuple(key) for key in keys))
    return orders


def _executed_requests(trace: Tracer, replica: str) -> list[tuple]:
    """Request keys in execution order (order-number sequence) on a replica."""
    orders = _orders(trace, replica)
    return [key for order in sorted(orders) for key in orders[order][1]]


def _results(trace: Tracer) -> dict[int, object]:
    """request_id -> accepted reply value for the (single) client."""
    results: dict[int, object] = {}
    for record in trace.select(category="client-complete"):
        _client, request_id, _operation, result = record.detail
        results[int(request_id)] = result
    return results


def _assert_fifo_no_loss_no_dupes(trace: Tracer) -> None:
    for replica in ("r0", "r1", "r2"):
        executed = _executed_requests(trace, replica)
        if not executed:
            continue
        ids = [request_id for _client, request_id in executed]
        assert ids == sorted(set(ids)), f"{replica} executed out of order or twice"
        assert ids[0] == 0 and ids == list(range(len(ids))), f"{replica} lost a request"


# ----------------------------------------------------------------------
# Simulator: batch size 1 vs 16 — exact equivalence
# ----------------------------------------------------------------------
def test_sim_batch_sizes_execute_identical_histories():
    target = 400
    thin = _run_sim(1, target)
    fat = _run_sim(16, target)

    for trace in (thin, fat):
        assert check_safety(trace).ok
        _assert_fifo_no_loss_no_dupes(trace)

    # batching actually happened — and only where configured
    assert all(len(keys) == 1 for _d, keys in _orders(thin, "r0").values())
    assert max(len(keys) for _d, keys in _orders(fat, "r0").values()) > 1

    # the executed request sequence is identical, order numbers aside
    common = min(target, len(_executed_requests(thin, "r0")), len(_executed_requests(fat, "r0")))
    assert (
        _executed_requests(thin, "r0")[:common]
        == _executed_requests(fat, "r0")[:common]
    )

    # and so is every reply value the client accepted
    thin_results, fat_results = _results(thin), _results(fat)
    shared = sorted(set(thin_results) & set(fat_results))
    assert len(shared) >= target
    for request_id in shared:
        assert thin_results[request_id] == fat_results[request_id], f"request {request_id}"


# ----------------------------------------------------------------------
# Simulator vs live sockets — same history at each batch size
# ----------------------------------------------------------------------
@pytest.mark.parametrize("batch_size", [1, 16])
def test_sim_and_live_agree_on_executed_history(batch_size):
    target = 120
    sim = _run_sim(batch_size, target)
    live = _run_live(batch_size, target)

    for trace in (sim, live):
        assert check_safety(trace).ok
        _assert_fifo_no_loss_no_dupes(trace)

    common = min(len(_executed_requests(sim, "r0")), len(_executed_requests(live, "r0")))
    assert common >= target
    assert (
        _executed_requests(sim, "r0")[:common]
        == _executed_requests(live, "r0")[:common]
    )

    sim_results, live_results = _results(sim), _results(live)
    shared = sorted(set(sim_results) & set(live_results))
    assert len(shared) >= target
    for request_id in shared:
        assert sim_results[request_id] == live_results[request_id], f"request {request_id}"

    if batch_size == 1:
        # one request per order: batch assembly cannot depend on timing,
        # so order numbers and batch digests must match exactly too
        sim_orders, live_orders = _orders(sim, "r0"), _orders(live, "r0")
        for order in sorted(set(sim_orders) & set(live_orders)):
            assert sim_orders[order] == live_orders[order], f"order {order}"
