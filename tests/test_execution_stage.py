"""Unit tests for the execution stage (ordered delivery, replies, snapshots)."""

from repro.core.config import ReplicaGroupConfig
from repro.core.execution import ExecutionStage, ReplierStage
from repro.crypto.provider import CryptoProvider
from repro.messages.client import Reply, Request
from repro.messages.internal import CkReached, ExecRequest, ReplyJob, StateInstall
from repro.services.counter import CounterService
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.process import Endpoint, Stage
from repro.sim.resources import Machine


class Sink(Stage):
    def __init__(self, endpoint, thread, name):
        super().__init__(endpoint, thread, name)
        self.received = []

    def on_message(self, src, message):
        self.received.append(message)


def build_exec(num_pillars=2, checkpoint_interval=4, window=8):
    sim = Simulator()
    network = Network(sim)
    config = ReplicaGroupConfig(
        replica_ids=("r0", "r1", "r2"),
        num_pillars=num_pillars,
        checkpoint_interval=checkpoint_interval,
        window_size=window,
    )
    machine = Machine(sim, "r0", cores=4)
    endpoint = Endpoint(sim, network, "r0")
    execution = ExecutionStage(
        endpoint, machine.allocate_thread("exec"), config, "r0",
        CounterService(), CryptoProvider(),
    )
    pillars = [Sink(endpoint, machine.allocate_thread(f"p{i}"), f"pillar{i}") for i in range(num_pillars)]
    handler = Sink(endpoint, machine.allocate_thread("handler"), "handler")
    execution.pillar_addresses = [("r0", f"pillar{i}") for i in range(num_pillars)]
    execution.handler_address = ("r0", "handler")
    # a client endpoint so replies have somewhere to go
    client_machine = Machine(sim, "cl", cores=1)
    client_endpoint = Endpoint(sim, network, "cl")
    Sink(client_endpoint, client_machine.allocate_thread("c0"), "c0")
    return sim, execution, pillars, handler


def request(order, amount=1, client="cl:c0"):
    return Request(client, order, ("add", amount))


class TestOrderedDelivery:
    def test_in_order_execution(self):
        sim, execution, _pillars, _handler = build_exec()
        for order in (1, 2, 3):
            execution._enqueue(("r0", "pillar0"), ExecRequest(order, 0, (request(order),)))
        sim.run(until=sim.now + 20_000_000)
        assert execution.next_order == 4
        assert execution.service.value == 3

    def test_gaps_buffered_until_filled(self):
        sim, execution, _pillars, _handler = build_exec()
        execution._enqueue(("r0", "pillar0"), ExecRequest(2, 0, (request(2),)))
        sim.run(until=sim.now + 20_000_000)
        assert execution.next_order == 1  # stalled: order 1 missing
        execution._enqueue(("r0", "pillar1"), ExecRequest(1, 0, (request(1),)))
        sim.run(until=sim.now + 20_000_000)
        assert execution.next_order == 3

    def test_duplicates_ignored(self):
        sim, execution, _pillars, _handler = build_exec()
        execution._enqueue(("r0", "pillar0"), ExecRequest(1, 0, (request(1),)))
        sim.run(until=sim.now + 20_000_000)
        execution._enqueue(("r0", "pillar0"), ExecRequest(1, 1, (request(1, amount=100),)))
        sim.run(until=sim.now + 20_000_000)
        assert execution.service.value == 1  # re-commit did not re-execute

    def test_handler_notified_of_executed_keys(self):
        sim, execution, _pillars, handler = build_exec()
        execution._enqueue(("r0", "pillar0"), ExecRequest(1, 0, (request(1),)))
        sim.run(until=sim.now + 20_000_000)
        executed = [m for m in handler.received if type(m).__name__ == "Executed"]
        assert executed and executed[0].keys == (("cl:c0", 1),)

    def test_gap_triggers_fill_gap_to_owning_pillar(self):
        sim, execution, pillars, _handler = build_exec(num_pillars=2)
        execution._enqueue(("r0", "pillar0"), ExecRequest(2, 0, (request(2),)))
        sim.run(until=50_000_000)
        fills = [m for m in pillars[1].received if type(m).__name__ == "FillGap"]
        assert fills and fills[0].order == 1  # order 1 belongs to pillar 1


class TestCheckpointing:
    def test_boundary_sends_ck_reached_to_responsible_pillar(self):
        sim, execution, pillars, _handler = build_exec(num_pillars=2, checkpoint_interval=4)
        for order in range(1, 5):
            execution._enqueue(("r0", "p"), ExecRequest(order, 0, (request(order),)))
        sim.run(until=sim.now + 20_000_000)
        # checkpoint 1 (order 4) is run by pillar 1 mod 2
        reached = [m for m in pillars[1].received if isinstance(m, CkReached)]
        assert reached and reached[0].order == 4

    def test_digest_covers_state_and_replies(self):
        sim, execution, pillars, _handler = build_exec(num_pillars=1, checkpoint_interval=2)
        execution._enqueue(("r0", "p"), ExecRequest(1, 0, (request(1),)))
        execution._enqueue(("r0", "p"), ExecRequest(2, 0, (request(2),)))
        sim.run(until=sim.now + 20_000_000)
        first = [m for m in pillars[0].received if isinstance(m, CkReached)][0]
        # a different history must produce a different digest
        sim2, execution2, pillars2, _h = build_exec(num_pillars=1, checkpoint_interval=2)
        execution2._enqueue(("r0", "p"), ExecRequest(1, 0, (request(1, amount=5),)))
        execution2._enqueue(("r0", "p"), ExecRequest(2, 0, (request(2),)))
        sim2.run(until=sim2.now + 20_000_000)
        other = [m for m in pillars2[0].received if isinstance(m, CkReached)][0]
        assert first.state_digest != other.state_digest


class TestStateInstall:
    def test_install_jumps_execution_forward(self):
        sim, execution, _pillars, _handler = build_exec()
        donor = CounterService()
        donor.execute(("add", 42), "cl:c0")
        execution._enqueue(
            ("r0", "pillar0"),
            StateInstall(8, donor.snapshot(), (("cl:c0", 3, 42),), None),
        )
        sim.run(until=sim.now + 20_000_000)
        assert execution.next_order == 9
        assert execution.service.value == 42
        assert execution.reply_cache_entry("cl:c0") == (3, 42)

    def test_install_with_wrong_digest_rolls_back(self):
        sim, execution, _pillars, _handler = build_exec()
        execution._enqueue(("r0", "pillar0"), ExecRequest(1, 0, (request(1),)))
        sim.run(until=sim.now + 20_000_000)
        donor = CounterService()
        donor.execute(("add", 999), "evil")
        execution._enqueue(
            ("r0", "pillar0"),
            StateInstall(8, donor.snapshot(), (), b"not-the-right-digest" + b"0" * 12),
        )
        sim.run(until=sim.now + 20_000_000)
        assert execution.service.value == 1  # rolled back
        assert execution.next_order == 2

    def test_stale_install_ignored(self):
        sim, execution, _pillars, _handler = build_exec()
        for order in range(1, 6):
            execution._enqueue(("r0", "p"), ExecRequest(order, 0, (request(order),)))
        sim.run(until=sim.now + 20_000_000)
        donor = CounterService()
        execution._enqueue(("r0", "p"), StateInstall(2, donor.snapshot(), (), None))
        sim.run(until=sim.now + 20_000_000)
        assert execution.service.value == 5  # unchanged


class TestReplier:
    def test_replier_transmits_each_reply(self):
        sim = Simulator()
        network = Network(sim)
        machine = Machine(sim, "r0", cores=2)
        endpoint = Endpoint(sim, network, "r0")
        replier = ReplierStage(endpoint, machine.allocate_thread("rep"), CryptoProvider(), "replier0")
        client_machine = Machine(sim, "cl", cores=1)
        client_endpoint = Endpoint(sim, network, "cl")
        sink = Sink(client_endpoint, client_machine.allocate_thread("c"), "c0")
        replies = tuple(Reply("r0", "cl:c0", i, 0, None) for i in range(3))
        replier._enqueue(("r0", "exec"), ReplyJob(replies))
        sim.run(until=sim.now + 20_000_000)
        assert len(sink.received) == 3
        assert replier.replies_sent == 3
