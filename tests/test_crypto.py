"""Unit tests for digests, MACs, authenticators, and cost profiles."""

import pytest

from repro.crypto.authenticators import Authenticator, AuthenticatorFactory
from repro.crypto.costs import (
    JAVA,
    OPENSSL,
    TCRYPTO,
    CryptoCostProfile,
    trinx_certification_ns,
)
from repro.crypto.digests import canonical_bytes, digest, digest_hex
from repro.crypto.mac import compute_mac, session_key, verify_mac
from repro.crypto.provider import CryptoProvider


class TestCanonicalBytes:
    def test_same_value_same_bytes(self):
        assert canonical_bytes(("a", 1, None)) == canonical_bytes(("a", 1, None))

    def test_type_tags_prevent_collisions(self):
        assert canonical_bytes(b"1") != canonical_bytes("1")
        assert canonical_bytes(1) != canonical_bytes("1")
        assert canonical_bytes(True) != canonical_bytes(1)
        assert canonical_bytes(None) != canonical_bytes(0)

    def test_list_and_tuple_equivalent(self):
        assert canonical_bytes([1, 2]) == canonical_bytes((1, 2))

    def test_nesting_changes_encoding(self):
        assert canonical_bytes((1, (2, 3))) != canonical_bytes((1, 2, 3))

    def test_dict_order_independent(self):
        assert canonical_bytes({"a": 1, "b": 2}) == canonical_bytes({"b": 2, "a": 1})

    def test_frozenset_order_independent(self):
        assert canonical_bytes(frozenset([1, 2, 3])) == canonical_bytes(frozenset([3, 2, 1]))

    def test_float_roundtrip_stable(self):
        assert canonical_bytes(0.1) == canonical_bytes(0.1)

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            canonical_bytes(object())

    def test_digestible_protocol_used(self):
        class Obj:
            def digestible(self):
                return ("obj", 42)

        assert canonical_bytes(Obj()) == canonical_bytes(("obj", 42))


class TestDigest:
    def test_deterministic(self):
        assert digest(("x", 1)) == digest(("x", 1))

    def test_distinct_inputs_distinct_digests(self):
        assert digest("a") != digest("b")

    def test_length(self):
        assert len(digest("anything")) == 32

    def test_hex_matches(self):
        assert digest_hex("v") == digest("v").hex()


class TestMac:
    KEY = b"k" * 32

    def test_roundtrip(self):
        tag = compute_mac(self.KEY, ("msg", 7))
        assert verify_mac(self.KEY, ("msg", 7), tag)

    def test_wrong_key_fails(self):
        tag = compute_mac(self.KEY, "msg")
        assert not verify_mac(b"x" * 32, "msg", tag)

    def test_tampered_data_fails(self):
        tag = compute_mac(self.KEY, "msg")
        assert not verify_mac(self.KEY, "msG", tag)

    def test_session_key_symmetric(self):
        secret = b"s" * 32
        assert session_key(secret, "r0", "r1") == session_key(secret, "r1", "r0")

    def test_session_key_pair_specific(self):
        secret = b"s" * 32
        assert session_key(secret, "r0", "r1") != session_key(secret, "r0", "r2")


class TestCostProfiles:
    def test_32_byte_ordering_matches_paper(self):
        # TCrypto 20% slower than Java, 40% slower than OpenSSL (throughput)
        t_openssl = OPENSSL.op_ns(32)
        t_java = JAVA.op_ns(32)
        t_tcrypto = TCRYPTO.op_ns(32)
        assert t_openssl < t_java < t_tcrypto
        assert 0.78 < t_java / t_tcrypto < 0.82  # Java ~80% of TCrypto cost
        assert 0.58 < t_openssl / t_tcrypto < 0.62  # OpenSSL ~60%

    def test_tcrypto_overtakes_java_for_large_messages(self):
        assert TCRYPTO.op_ns(32) > JAVA.op_ns(32)
        assert TCRYPTO.op_ns(4096) < JAVA.op_ns(4096)

    def test_trinx_certification_rate_near_240k(self):
        per_cert = trinx_certification_ns(32)
        rate = 1e9 / per_cert
        assert 230_000 < rate < 250_000

    def test_jni_adds_crossing_cost(self):
        assert trinx_certification_ns(32, via_jni=True) - trinx_certification_ns(32) == 300

    def test_custom_profile(self):
        profile = CryptoCostProfile("x", base_ns=100, per_byte_ns=1.0)
        assert profile.op_ns(50) == 150


class TestCryptoProvider:
    def test_charges_cost(self):
        charged = []
        provider = CryptoProvider(profile=JAVA, charge=charged.append)
        provider.digest("data", size_hint=32)
        assert charged == [JAVA.op_ns(32)]

    def test_no_charge_without_callback(self):
        provider = CryptoProvider()
        provider.digest("data")  # must not raise
        assert provider.ops == 1

    def test_mac_roundtrip_with_accounting(self):
        provider = CryptoProvider()
        tag = provider.compute_mac(b"k" * 32, "m")
        assert provider.verify_mac(b"k" * 32, "m", tag)
        assert provider.ops == 2

    def test_size_hint_overrides_serialized_size(self):
        charged = []
        provider = CryptoProvider(profile=JAVA, charge=charged.append)
        provider.digest("tiny", size_hint=4096)
        assert charged == [JAVA.op_ns(4096)]


class TestAuthenticators:
    SECRET = b"g" * 32

    def make_factory(self, who):
        return AuthenticatorFactory(who, self.SECRET, CryptoProvider())

    def test_create_and_verify(self):
        sender = self.make_factory("r0")
        receiver = self.make_factory("r1")
        auth = sender.create(["r1", "r2", "r3"], ("prepare", 5))
        assert receiver.verify(auth, ("prepare", 5))

    def test_one_mac_per_receiver(self):
        sender = self.make_factory("r0")
        auth = sender.create(["r1", "r2", "r3"], "m")
        assert set(auth.macs) == {"r1", "r2", "r3"}
        assert sender.provider.ops == 3

    def test_non_addressee_cannot_verify(self):
        sender = self.make_factory("r0")
        outsider = self.make_factory("r9")
        auth = sender.create(["r1"], "m")
        assert not outsider.verify(auth, "m")

    def test_tampered_message_rejected(self):
        sender = self.make_factory("r0")
        receiver = self.make_factory("r1")
        auth = sender.create(["r1"], "m")
        assert not receiver.verify(auth, "evil")

    def test_faulty_authenticator_partial_validity(self):
        # A Byzantine sender can craft an authenticator that verifies at one
        # receiver but not another — the classic PBFT weakness trusted MACs fix.
        sender = self.make_factory("r0")
        good = sender.create(["r1", "r2"], "m")
        bad = Authenticator("r0", {"r1": good.macs["r1"], "r2": b"\x00" * 32})
        assert self.make_factory("r1").verify(bad, "m")
        assert not self.make_factory("r2").verify(bad, "m")

    def test_wire_size_scales_with_group(self):
        sender = self.make_factory("r0")
        assert sender.create(["r1"], "m").wire_size() == 32
        assert sender.create(["r1", "r2", "r3"], "m").wire_size() == 96
