"""Unit tests for the TrInX trusted subsystem (paper §5.1)."""

import pytest

from repro.errors import (
    CounterRegressionError,
    ReplayProtectionError,
    UnknownCounterError,
)
from repro.trinx.certificates import CounterCertificate
from repro.trinx.enclave import EnclavePlatform
from repro.trinx.multi import MultiTrInX
from repro.trinx.trinx import TrInX, batch_size_hint
from repro.crypto.mac import digest_many

SECRET = b"group-secret-000000000000000000!"


def make_pair():
    platform = EnclavePlatform()
    issuer = TrInX(platform, "r0/tss0", SECRET)
    verifier = TrInX(platform, "r1/tss0", SECRET)
    return issuer, verifier


class TestContinuingCertificates:
    def test_create_and_verify(self):
        issuer, verifier = make_pair()
        cert = issuer.create_continuing(0, 5, "msg")
        assert cert.previous_value == 0
        assert cert.new_value == 5
        assert verifier.verify(cert, "msg")

    def test_counter_advances(self):
        issuer, _ = make_pair()
        issuer.create_continuing(0, 5, "a")
        assert issuer.current_value(0) == 5

    def test_equal_value_allowed(self):
        # tv' == tv is the trusted-MAC case: multiple certificates may share
        # the counter value, bound to different messages.
        issuer, verifier = make_pair()
        issuer.create_continuing(0, 5, "a")
        cert_b = issuer.create_continuing(0, 5, "b")
        cert_c = issuer.create_continuing(0, 5, "c")
        assert verifier.verify(cert_b, "b")
        assert verifier.verify(cert_c, "c")

    def test_regression_rejected(self):
        issuer, _ = make_pair()
        issuer.create_continuing(0, 10, "a")
        with pytest.raises(CounterRegressionError):
            issuer.create_continuing(0, 9, "b")

    def test_previous_value_is_bound_into_mac(self):
        # A replica cannot pretend its previous value was lower/higher.
        issuer, verifier = make_pair()
        cert = issuer.create_continuing(0, 5, "m")
        forged = CounterCertificate(cert.issuer, cert.counter, cert.new_value, 4, cert.mac)
        assert not verifier.verify(forged, "m")

    def test_counters_are_independent(self):
        issuer, _ = make_pair()
        issuer.create_continuing(0, 100, "a")
        assert issuer.current_value(1) == 0
        issuer.create_continuing(1, 1, "b")
        assert issuer.current_value(0) == 100


class TestIndependentCertificates:
    def test_create_and_verify(self):
        issuer, verifier = make_pair()
        cert = issuer.create_independent(0, 7, "m")
        assert cert.previous_value is None
        assert verifier.verify(cert, "m")

    def test_strictly_increasing(self):
        issuer, _ = make_pair()
        issuer.create_independent(0, 7, "a")
        with pytest.raises(CounterRegressionError):
            issuer.create_independent(0, 7, "b")

    def test_uniqueness_one_certificate_per_value(self):
        # The equivocation-prevention property: once value 7 is used, no
        # second valid certificate for value 7 can ever be produced.
        issuer, _ = make_pair()
        issuer.create_independent(0, 7, "proposal-A")
        with pytest.raises(CounterRegressionError):
            issuer.create_independent(0, 7, "proposal-B")

    def test_gaps_allowed(self):
        issuer, verifier = make_pair()
        cert = issuer.create_independent(0, 1_000_000, "jump")
        assert verifier.verify(cert, "jump")
        assert issuer.current_value(0) == 1_000_000

    def test_kind_properties(self):
        issuer, _ = make_pair()
        independent = issuer.create_independent(0, 1, "m")
        continuing = issuer.create_continuing(1, 1, "m")
        trusted = issuer.create_trusted_mac(2, "m")
        assert independent.kind == "independent"
        assert continuing.kind == "continuing"
        assert not continuing.is_trusted_mac
        assert trusted.is_trusted_mac


class TestForgeryResistance:
    def test_wrong_secret_cannot_forge(self):
        platform = EnclavePlatform()
        issuer = TrInX(platform, "r0/tss0", SECRET)
        attacker = TrInX(platform, "r0/tss0", b"wrong" * 6 + b"xx")
        verifier = TrInX(platform, "r1/tss0", SECRET)
        real = issuer.create_independent(0, 5, "m")
        fake = attacker.create_independent(0, 5, "m")
        assert verifier.verify(real, "m")
        assert not verifier.verify(fake, "m")

    def test_no_instance_impersonation(self):
        # An instance never issues a certificate naming another instance, and
        # relabeling a certificate breaks the MAC.
        issuer, verifier = make_pair()
        cert = issuer.create_independent(0, 5, "m")
        relabeled = CounterCertificate("r2/tss0", cert.counter, cert.new_value, None, cert.mac)
        assert not verifier.verify(relabeled, "m")

    def test_message_substitution_fails(self):
        issuer, verifier = make_pair()
        cert = issuer.create_independent(0, 5, "m")
        assert not verifier.verify(cert, "other")

    def test_value_substitution_fails(self):
        issuer, verifier = make_pair()
        cert = issuer.create_independent(0, 5, "m")
        bumped = CounterCertificate(cert.issuer, cert.counter, 6, None, cert.mac)
        assert not verifier.verify(bumped, "m")

    def test_counter_substitution_fails(self):
        issuer, verifier = make_pair()
        cert = issuer.create_independent(0, 5, "m")
        moved = CounterCertificate(cert.issuer, 1, cert.new_value, None, cert.mac)
        assert not verifier.verify(moved, "m")

    def test_kind_confusion_fails(self):
        # an independent certificate cannot pass as continuing and vice versa
        issuer, verifier = make_pair()
        independent = issuer.create_independent(0, 5, "m")
        as_continuing = CounterCertificate(independent.issuer, 0, 5, 5, independent.mac)
        assert not verifier.verify(as_continuing, "m")

    def test_verification_does_not_mutate(self):
        issuer, verifier = make_pair()
        cert = issuer.create_independent(0, 5, "m")
        before = verifier.current_value(0)
        verifier.verify(cert, "m")
        assert verifier.current_value(0) == before


class TestMultiCounterCertificates:
    def test_create_and_verify(self):
        issuer, verifier = make_pair()
        cert = issuer.create_multi_continuing({0: 5, 2: 9}, "snapshot")
        assert verifier.verify_multi(cert, "snapshot")
        assert issuer.current_value(0) == 5
        assert issuer.current_value(2) == 9

    def test_single_enclave_call(self):
        issuer, _ = make_pair()
        before = issuer.platform.calls
        issuer.create_multi_continuing({0: 1, 1: 1, 2: 1, 3: 1}, "m")
        assert issuer.platform.calls == before + 1

    def test_regression_in_any_entry_rejected_atomically(self):
        issuer, _ = make_pair()
        issuer.create_continuing(1, 10, "setup")
        with pytest.raises(CounterRegressionError):
            issuer.create_multi_continuing({0: 5, 1: 9}, "m")
        # nothing was applied
        assert issuer.current_value(0) == 0
        assert issuer.current_value(1) == 10

    def test_value_lookup(self):
        issuer, _ = make_pair()
        cert = issuer.create_multi_continuing({0: 5, 1: 7}, "m")
        assert cert.value_of(0) == 5
        assert cert.value_of(1) == 7
        assert cert.value_of(3) is None

    def test_tampered_entries_fail(self):
        from repro.trinx.certificates import MultiCounterCertificate

        issuer, verifier = make_pair()
        cert = issuer.create_multi_continuing({0: 5}, "m")
        forged = MultiCounterCertificate(cert.issuer, ((0, 6, 0),), cert.mac)
        assert not verifier.verify_multi(forged, "m")


class TestTrustedMacs:
    def test_counter_not_advanced(self):
        issuer, _ = make_pair()
        issuer.create_trusted_mac(0, "a")
        issuer.create_trusted_mac(0, "b")
        assert issuer.current_value(0) == 0

    def test_verifiable_and_nonrepudiable_binding(self):
        issuer, verifier = make_pair()
        cert = issuer.create_trusted_mac(0, "checkpoint-50")
        assert verifier.verify(cert, "checkpoint-50")
        # bound to the issuing instance: relabeling fails
        relabeled = CounterCertificate("r9/tss0", 0, 0, 0, cert.mac)
        assert not verifier.verify(relabeled, "checkpoint-50")


class TestEnclaveModel:
    def test_call_accounting(self):
        charged = []
        platform = EnclavePlatform(charge=charged.append)
        instance = TrInX(platform, "id", SECRET)
        instance.create_independent(0, 1, "m", size_hint=32)
        assert len(charged) == 1
        assert 4_000 < charged[0] < 4_400  # ~4.15us per certification

    def test_jni_surcharge(self):
        charged_native, charged_jni = [], []
        native = TrInX(EnclavePlatform(charge=charged_native.append), "a", SECRET)
        jni = TrInX(EnclavePlatform(charge=charged_jni.append, via_jni=True), "b", SECRET)
        native.create_independent(0, 1, "m")
        jni.create_independent(0, 1, "m")
        assert charged_jni[0] - charged_native[0] == 300

    def test_seal_and_relaunch_preserves_counters(self):
        platform = EnclavePlatform()
        instance = TrInX(platform, "id", SECRET)
        instance.create_independent(0, 42, "m")
        sealed = instance.seal()
        relaunched = TrInX.launch(platform, sealed)
        assert relaunched.current_value(0) == 42
        with pytest.raises(CounterRegressionError):
            relaunched.create_independent(0, 42, "rollback-attempt")

    def test_replay_of_stale_sealed_state_refused(self):
        platform = EnclavePlatform()
        instance = TrInX(platform, "id", SECRET)
        instance.create_independent(0, 10, "m")
        old = instance.seal()
        instance.create_independent(0, 20, "m2")
        instance.seal()  # newer version registered with the platform
        with pytest.raises(ReplayProtectionError):
            TrInX.launch(platform, old)

    def test_unknown_counter_rejected(self):
        instance = TrInX(EnclavePlatform(), "id", SECRET, num_counters=2)
        with pytest.raises(UnknownCounterError):
            instance.create_independent(5, 1, "m")
        with pytest.raises(UnknownCounterError):
            instance.current_value(-1)

    def test_zero_counters_rejected(self):
        with pytest.raises(UnknownCounterError):
            TrInX(EnclavePlatform(), "id", SECRET, num_counters=0)


class TestMultiTrInX:
    def test_instances_share_group_secret(self):
        platform = EnclavePlatform()
        multi = MultiTrInX(platform, "m0/shared", SECRET, num_instances=3)
        solo = TrInX(platform, "r1/tss0", SECRET)
        cert = multi.instance(0).create_independent(0, 5, "m")
        assert solo.verify(cert, "m")

    def test_instances_have_independent_counters(self):
        multi = MultiTrInX(EnclavePlatform(), "m0/shared", SECRET, num_instances=2)
        multi.instance(0).create_independent(0, 50, "m")
        assert multi.instance(1).current_value(0) == 0

    def test_no_contention_below_knee(self):
        multi = MultiTrInX(EnclavePlatform(), "e", SECRET, num_instances=4, sharing_threads=6)
        assert multi.contention_ns == 0

    def test_contention_above_knee(self):
        charged = []
        platform = EnclavePlatform(charge=charged.append)
        multi = MultiTrInX(platform, "e", SECRET, num_instances=8, sharing_threads=8)
        assert multi.contention_ns > 0
        multi.instance(0).create_independent(0, 1, "m", size_hint=32)
        solo_cost = platform.enter_call_cost_ns(32)
        assert charged[0] == solo_cost + multi.contention_ns

    def test_batch_certification_through_shared_enclave(self):
        # sub-instances inherit the full TrInX surface, batching included
        platform = EnclavePlatform()
        multi = MultiTrInX(platform, "m0/shared", SECRET, num_instances=2)
        solo = TrInX(platform, "r1/tss0", SECRET)
        leaves = digest_many(["a", "b", "c"])
        cert = multi.instance(0).create_independent_batch(0, 7, "header", leaves)
        assert solo.verify_batch(cert, "header", leaves)
        assert not solo.verify_batch(cert, "header", digest_many(["a", "x", "c"]))
        assert multi.instance(0).current_value(0) == 7

    def test_batch_calls_pay_the_contention_surcharge(self):
        charged = []
        platform = EnclavePlatform(charge=charged.append)
        multi = MultiTrInX(platform, "e", SECRET, num_instances=8, sharing_threads=8)
        leaves = digest_many(["a", "b", "c"])
        multi.instance(0).create_independent_batch(0, 1, "h", leaves)
        # charged for header + leaves only (not the batch body), plus contention
        expected = platform.enter_call_cost_ns(batch_size_hint(len(leaves)))
        assert charged[0] == expected + multi.contention_ns
