"""Property-based tests for the lane / proposer / pillar arithmetic.

The rotation machinery rests on number-theoretic invariants (lane = the
proposer's index, lanes cycle with a fixed stride, every pillar gets
proposers); hypothesis sweeps group sizes, pillar counts, and views.
"""

from hypothesis import given, strategies as st

from repro.core.config import ReplicaGroupConfig

group_shapes = st.tuples(
    st.integers(min_value=3, max_value=9),   # n
    st.integers(min_value=1, max_value=6),   # pillars
    st.booleans(),                           # rotation
)
views = st.integers(min_value=0, max_value=12)
orders = st.integers(min_value=1, max_value=500)


def make(n, pillars, rotation):
    return ReplicaGroupConfig(
        replica_ids=tuple(f"r{i}" for i in range(n)),
        num_pillars=pillars,
        rotation=rotation,
        checkpoint_interval=8,
        window_size=16,
    )


class TestLaneInvariants:
    @given(group_shapes, views, orders)
    def test_lane_is_the_proposers_index(self, shape, view, order):
        config = make(*shape)
        lane = config.lane_of(view, order)
        assert 0 <= lane < config.num_lanes
        if config.rotation:
            assert config.replica_ids[lane] == config.proposer_of(view, order)
        else:
            assert lane == 0

    @given(group_shapes, views, orders)
    def test_lane_cycles_with_the_stride(self, shape, view, order):
        config = make(*shape)
        assert config.lane_of(view, order) == config.lane_of(view, order + config.lane_stride)

    @given(group_shapes, views, orders)
    def test_proposer_constant_within_a_class_step(self, shape, view, order):
        # orders of one pillar-class step share the proposer only when they
        # fall in the same class window (order // P); adjacent windows rotate
        config = make(*shape)
        same_window = (order // config.num_pillars) == ((order + 0) // config.num_pillars)
        assert same_window  # tautology guard; the real check below
        base = (order // config.num_pillars) * config.num_pillars
        proposers = {
            config.proposer_of(view, o)
            for o in range(max(1, base), base + config.num_pillars)
            if o >= 1
        }
        assert len(proposers) == 1

    @given(group_shapes, views)
    def test_every_order_has_exactly_one_proposer_and_pillar(self, shape, view):
        config = make(*shape)
        for order in range(1, 3 * config.lane_stride + 1):
            proposer = config.proposer_of(view, order)
            assert proposer in config.replica_ids
            assert 0 <= config.pillar_of_order(order) < config.num_pillars

    @given(group_shapes, views)
    def test_proposing_pillars_match_actual_slots(self, shape, view):
        config = make(*shape)
        horizon = 4 * config.lane_stride
        for replica in config.replica_ids:
            declared = set(config.proposing_pillars(replica, view))
            actual = {
                config.pillar_of_order(order)
                for order in range(1, horizon + 1)
                if config.proposer_of(view, order) == replica
            }
            assert declared == actual

    @given(group_shapes, views)
    def test_rotation_gives_everyone_slots(self, shape, view):
        n, pillars, rotation = shape
        config = make(n, pillars, True)
        for replica in config.replica_ids:
            assert config.proposing_pillars(replica, view), (
                f"{replica} proposes nowhere in view {view}"
            )

    @given(group_shapes, views, orders)
    def test_view_change_rotates_the_primary(self, shape, view, order):
        config = make(*shape)
        primaries = {config.primary_of_view(view + k) for k in range(config.n)}
        assert primaries == set(config.replica_ids)


class TestCounterLayoutInvariants:
    @given(group_shapes)
    def test_mac_counter_never_collides_with_ordering_counters(self, shape):
        config = make(*shape)
        ordering = {config.ordering_counter(lane) for lane in range(config.num_lanes)}
        assert config.mac_counter not in ordering
        assert config.counters_per_instance == len(ordering) + 1

    @given(group_shapes, views, orders)
    def test_lane_counter_values_monotone_per_lane(self, shape, view, order):
        """Within one (pillar, lane), ascending orders map to ascending
        flattened counter values — the property the strictly-increasing
        trusted counters depend on."""
        from repro.core.seqnum import flatten

        config = make(*shape)
        stride = config.lane_stride
        assert flatten(view, order) < flatten(view, order + stride)
