"""End-to-end live mode: a real Hybster group over localhost TCP.

This is the acceptance test for the live transport stack: three
``hybster-s`` replicas plus clients run as asyncio tasks in this process,
every inter-node message crosses a real socket as a codec frame, and at
least 100 requests complete with correct, matching replies.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.clients.workload import Workload
from repro.errors import ConfigurationError
from repro.runtime.deployment import DeploymentSpec
from repro.runtime.live import (
    LiveKernel,
    build_live_deployment,
    live_directory,
    run_live,
)


def test_live_hybster_s_completes_100_requests():
    spec = DeploymentSpec(
        protocol="hybster-s",
        cores=2,
        service="counter",
        num_clients=4,
        client_window=8,
        client_machines=1,
    )
    result = asyncio.run(run_live(spec, target_requests=100, max_duration_s=30))
    assert result.completed >= 100
    # counter replies are correct: every replica executed the same adds
    assert len(set(result.state_digests)) == 1
    executed = {stats["executed_requests"] for stats in result.replica_stats}
    assert min(executed) >= 100
    # messages genuinely crossed sockets
    assert result.transport_sent > result.completed
    assert result.latency.count == result.completed
    assert result.latency.mean_ns > 0


def test_live_hybster_x_multiple_pillars_agree():
    spec = DeploymentSpec(
        protocol="hybster-x",
        cores=2,
        service="kv",
        num_clients=2,
        client_window=4,
        client_machines=1,
        checkpoint_interval=16,
        window_size=64,
    )
    result = asyncio.run(run_live(spec, target_requests=60, max_duration_s=30))
    assert result.completed >= 60
    assert len(set(result.state_digests)) == 1


class AddOneWorkload(Workload):
    """Every request is ("add", 1): result n for the n-th executed add."""

    def next_operation(self, request_index):
        return ("add", 1), 0


def test_live_counter_results_are_correct():
    """The reply the client accepts is the actual service result."""
    spec = DeploymentSpec(
        protocol="hybster-s",
        cores=2,
        service="counter",
        num_clients=1,
        client_window=1,
        client_machines=1,
        workload_factory=lambda client_id, index: AddOneWorkload(),
    )

    async def scenario():
        deployment = build_live_deployment(spec)
        async with deployment.transport:
            for replica in deployment.replicas:
                replica.start()
            deployment.start_clients()
            client = deployment.clients[0]
            for _ in range(1000):
                if client.completed >= 20:
                    break
                await asyncio.sleep(0.02)
            deployment.stop_clients()
            await asyncio.sleep(0.05)
            deployment.kernel.cancel_all()
            return client

    client = asyncio.run(scenario())
    assert client.completed >= 20
    # single client, window 1, counter service: results are 1, 2, 3, ...
    assert client.last_result == client.completed


def test_live_mode_rejects_simulator_only_protocols():
    with pytest.raises(ConfigurationError):
        build_live_deployment(DeploymentSpec(protocol="pbft"))


def test_live_directory_is_deterministic_across_processes():
    spec = DeploymentSpec(protocol="hybster-s", client_machines=2)
    first = live_directory(spec, base_port=47000)
    second = live_directory(spec, base_port=47000)
    assert first == second
    assert first["r0"] == ("127.0.0.1", 47000)
    assert first["r2"] == ("127.0.0.1", 47002)
    assert first["clients1"] == ("127.0.0.1", 47065)


def test_partial_deployment_builds_only_local_nodes():
    spec = DeploymentSpec(protocol="hybster-s", num_clients=2, client_machines=1)
    deployment = build_live_deployment(spec, base_port=47800, local_nodes=["r1"])
    assert [replica.replica_id for replica in deployment.replicas] == ["r1"]
    assert deployment.clients == []
    with pytest.raises(ConfigurationError):
        build_live_deployment(spec, local_nodes=["r9"])


def test_live_kernel_timers_fire_and_cancel():
    async def scenario():
        kernel = LiveKernel()
        fired = []
        kernel.schedule(1_000_000, fired.append, "a")  # 1 ms
        victim = kernel.schedule(2_000_000, fired.append, "b")
        kernel.cancel(victim)
        await asyncio.sleep(0.05)
        assert fired == ["a"]
        assert kernel.now > 0
        kernel.cancel_all()

    asyncio.run(scenario())
