"""Unit/integration tests for clients, workloads, and latency statistics."""

import pytest

from repro.clients.stats import LatencyStats
from repro.clients.workload import CoordinationWorkload, KeyValueWorkload, NullWorkload
from repro.sim.faults import TargetedDrop
from repro.messages.client import Reply
from tests.conftest import Harness


class TestLatencyStats:
    def test_basic_aggregation(self):
        stats = LatencyStats()
        for sample in (100, 200, 300):
            stats.record(sample)
        assert stats.count == 3
        assert stats.mean_ns == 200
        assert stats.min_ns == 100
        assert stats.max_ns == 300

    def test_empty_stats(self):
        stats = LatencyStats()
        assert stats.mean_ns == 0.0
        assert stats.percentile_ns(50) == 0.0

    def test_percentiles_from_reservoir(self):
        stats = LatencyStats()
        for sample in range(1, 101):
            stats.record(sample)
        assert 40 <= stats.percentile_ns(50) <= 60
        assert stats.percentile_ns(99) >= 90

    def test_reservoir_bounded(self):
        stats = LatencyStats(reservoir_size=64)
        for sample in range(10_000):
            stats.record(sample)
        assert len(stats._reservoir) == 64
        assert stats.count == 10_000

    def test_merge(self):
        a, b = LatencyStats(), LatencyStats()
        a.record(100)
        b.record(300)
        a.merge(b)
        assert a.count == 2
        assert a.min_ns == 100 and a.max_ns == 300

    def test_mean_ms_conversion(self):
        stats = LatencyStats()
        stats.record(2_000_000)
        assert stats.mean_ms == 2.0


class TestWorkloads:
    def test_null_workload(self):
        workload = NullWorkload(payload_size=128)
        assert workload.next_operation(0) == (None, 128)
        assert workload.setup_operations() == []

    def test_kv_workload_deterministic(self):
        a = KeyValueWorkload("c0", seed=7)
        b = KeyValueWorkload("c0", seed=7)
        assert [a.next_operation(i) for i in range(20)] == [b.next_operation(i) for i in range(20)]

    def test_kv_workload_keys_scoped_to_client(self):
        workload = KeyValueWorkload("c9", seed=1)
        operation, _size = workload.next_operation(0)
        assert "c9/" in operation[1]

    def test_coordination_workload_setup_creates_subtree(self):
        workload = CoordinationWorkload("cl:c0", read_fraction=0.5, nodes=4)
        setup = workload.setup_operations()
        assert setup[0][0][0] == "create"
        assert len(setup) == 5  # root + 4 nodes

    def test_coordination_read_fraction_extremes(self):
        reads_only = CoordinationWorkload("c0", read_fraction=1.0)
        writes_only = CoordinationWorkload("c1", read_fraction=0.0)
        assert all(reads_only.next_operation(i)[0][0] == "get" for i in range(20))
        assert all(writes_only.next_operation(i)[0][0] == "set" for i in range(20))

    def test_coordination_invalid_fraction(self):
        with pytest.raises(ValueError):
            CoordinationWorkload("c0", read_fraction=1.5)

    def test_reply_payload_average(self):
        workload = CoordinationWorkload("c0", read_fraction=0.5, node_size=128)
        assert workload.reply_payload_size() == 64


class TestClientBehavior:
    def test_window_respected(self, harness):
        client = harness.add_client(window=3)
        harness.start_clients()
        harness.run(0.01)  # before any reply can arrive
        assert len(client.outstanding) == 3

    def test_window_refills_after_completion(self, harness):
        client = harness.add_client(window=2)
        harness.start_clients()
        harness.run(100)
        assert client.completed > 2
        assert len(client.outstanding) <= 2

    def test_needs_f_plus_one_matching_replies(self, harness):
        client = harness.add_client(window=1)
        # drop every reply from r1 and r2: only the leader answers, which is
        # below the f+1 threshold, so nothing completes
        harness.network.add_filter(
            TargetedDrop(lambda src, dst, msg: src in ("r1", "r2")
                         and isinstance(getattr(msg, "message", None), Reply))
        )
        harness.start_clients()
        harness.run(100)
        assert client.completed == 0

    def test_client_retries_when_ignored(self, harness):
        client = harness.add_client(window=1)
        # all requests into the void
        harness.network.add_filter(
            TargetedDrop(lambda src, dst, msg: src == "clients")
        )
        harness.start_clients()
        harness.run(900)
        assert client.retries >= 2
        assert client.completed == 0

    def test_retry_multicasts_to_all_replicas(self, harness):
        client = harness.add_client(window=1)
        seen = set()
        original_send = client.send

        def spy(dst, message, size=None):
            seen.add(dst[0])
            return original_send(dst, message, size)

        client.send = spy
        harness.network.add_filter(
            TargetedDrop(lambda src, dst, msg: src == "clients")
        )
        harness.start_clients()
        harness.run(500)
        assert seen == {"r0", "r1", "r2"}

    def test_duplicate_replies_do_not_double_complete(self, harness):
        client = harness.add_client(window=1)
        harness.start_clients()
        harness.run(50)
        completed = client.completed
        # replay a stale reply for an already-completed request
        reply = Reply("r0", client.client_id, 0, 0, None)
        client.on_message(("r0", "exec"), reply)
        assert client.completed == completed

    def test_setup_operations_run_first_and_in_order(self):
        from repro.clients.workload import Workload
        from repro.services.kvstore import KeyValueStore

        class SetupThenRead(Workload):
            def setup_operations(self):
                return [(("put", "a", 1), 0), (("put", "b", 2), 0)]

            def next_operation(self, request_index):
                return ("get", "b"), 0

        harness = Harness(service_factory=KeyValueStore)
        client = harness.add_client(SetupThenRead(), window=4)
        harness.start_clients()
        harness.run(50)
        assert client.last_result == 2

    def test_client_follows_the_view(self, harness):
        from repro.sim.faults import Partition

        client = harness.add_client(window=1)
        harness.start_clients()
        harness.run(100)
        harness.network.add_filter(Partition({"r0"}, start_ns=harness.sim.now))
        harness.run(3000)
        assert client.current_view >= 1
        assert client.completed > 0
