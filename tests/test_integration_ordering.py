"""Integration tests: the fault-free ordering path end to end."""

import pytest

from repro.clients.workload import KeyValueWorkload, NullWorkload
from tests.conftest import Harness


class TestBasicOrdering:
    def test_single_request_completes(self, harness):
        client = harness.add_client()
        harness.start_clients()
        harness.run(50)
        assert client.completed > 0
        harness.assert_replicas_consistent()

    def test_latency_is_a_few_network_hops(self, harness):
        client = harness.add_client()
        harness.start_clients()
        harness.run(50)
        # request + prepare + commit + reply = 4 one-way delays of 35us each,
        # plus processing: well under a millisecond at idle
        assert client.stats.mean_ns < 1_000_000

    def test_all_replicas_execute_every_request(self, harness):
        harness.add_client(window=4)
        harness.start_clients()
        harness.run(100)
        harness.drain()
        executed = [replica.execution.executed_requests for replica in harness.replicas]
        assert executed[0] == executed[1] == executed[2] > 0

    def test_replies_match_across_replicas(self, harness):
        client = harness.add_client(NullWorkload())
        harness.start_clients()
        harness.run(50)
        # the client only completes with f+1 matching replies; zero retries
        # means the fast path worked throughout
        assert client.retries == 0
        assert client.completed > 10

    def test_counter_service_sees_sequential_history(self):
        harness = Harness()
        client = harness.add_client(workload=_AddOnes(), window=1)
        harness.start_clients()
        harness.run(80)
        harness.drain()
        # with window=1 the single client's adds execute in issue order, so
        # the final counter value equals the number of completed adds
        assert harness.replicas[0].service.value == client.completed
        harness.assert_replicas_consistent()

    def test_multiple_clients_consistent(self, kv_harness):
        for i in range(4):
            kv_harness.add_client(KeyValueWorkload(f"c{i}", seed=i), window=2)
        kv_harness.start_clients()
        kv_harness.run(150)
        kv_harness.drain()
        assert kv_harness.completed > 100
        kv_harness.assert_replicas_consistent()


class TestParallelOrdering:
    @pytest.mark.parametrize("num_pillars", [2, 3, 4])
    def test_pillars_partition_the_order_space(self, num_pillars):
        harness = Harness(num_pillars=num_pillars)
        harness.add_client(window=8)
        harness.start_clients()
        harness.run(100)
        harness.drain()
        leader = harness.replicas[0]
        for pillar in leader.pillars:
            for order in pillar.log._instances:
                assert order % num_pillars == pillar.index
        harness.assert_replicas_consistent()

    def test_execution_respects_global_order_across_pillars(self):
        harness = Harness(num_pillars=4)
        client = harness.add_client(workload=_AddOnes(), window=6)
        harness.start_clients()
        harness.run(150)
        harness.drain()
        # ordered execution across pillars: value == number of executed adds
        value = harness.replicas[0].service.value
        assert value == harness.replicas[0].execution.executed_requests
        harness.assert_replicas_consistent()

    def test_rotation_spreads_proposals(self):
        harness = Harness(num_pillars=2, rotation=True)
        for i in range(6):
            harness.add_client(window=4)
        harness.start_clients()
        harness.run(200)
        harness.drain()
        proposals = [replica.stats()["proposals"] for replica in harness.replicas]
        assert all(count > 0 for count in proposals)
        harness.assert_replicas_consistent()

    def test_fixed_leader_concentrates_proposals(self, harness):
        harness.add_client(window=4)
        harness.start_clients()
        harness.run(100)
        proposals = [replica.stats()["proposals"] for replica in harness.replicas]
        assert proposals[0] > 0
        assert proposals[1] == proposals[2] == 0


class TestBatching:
    def test_batches_contain_multiple_requests(self):
        harness = Harness(batch_size=8)
        for _ in range(4):
            harness.add_client(window=8)
        harness.start_clients()
        harness.run(150)
        harness.drain()
        stats = harness.replicas[0].stats()
        requests = stats["executed_requests"]
        instances = stats["executed_instances"]
        assert requests / max(1, instances) > 1.5

    def test_unbatched_is_one_request_per_instance(self, harness):
        harness.add_client(window=4)
        harness.start_clients()
        harness.run(100)
        harness.drain()
        stats = harness.replicas[0].stats()
        assert stats["executed_requests"] == stats["executed_instances"]


class TestCertificateAccounting:
    def test_hybster_uses_three_enclave_ops_per_instance(self, harness):
        """§6.2: 'Relying on three replicas, HybsterX requires a total of
        three hash operations' per instance — one PREPARE creation at the
        leader, and per follower a verification plus a COMMIT creation.
        Receiving-side commit verifications stop once the quorum is full."""
        harness.add_client(window=1)
        harness.start_clients()
        harness.run(100)
        harness.drain()
        instances = harness.replicas[0].execution.executed_instances
        total_calls = sum(replica.platform.calls for replica in harness.replicas)
        calls_per_instance = total_calls / max(1, instances)
        # 3 creations + 2 prepare verifications + ~2-3 commit verifications,
        # plus periodic checkpoint traffic
        assert calls_per_instance < 12


class _AddOnes(NullWorkload):
    def next_operation(self, request_index):
        return ("add", 1), 0
