"""Unit tests for time units, seeded randomness, and the null simulator."""

from repro.sim.kernel import NullSimulator, Simulator
from repro.sim.rand import DeterministicRandom
from repro.sim.timeunits import (
    MICROSECOND,
    MILLISECOND,
    SECOND,
    ms_to_ns,
    ns_to_ms,
    ns_to_seconds,
    ns_to_us,
    seconds_to_ns,
    us_to_ns,
)


class TestTimeUnits:
    def test_constants(self):
        assert MICROSECOND == 1_000
        assert MILLISECOND == 1_000_000
        assert SECOND == 1_000_000_000

    def test_conversions_roundtrip(self):
        assert seconds_to_ns(1.5) == 1_500_000_000
        assert ns_to_seconds(1_500_000_000) == 1.5
        assert us_to_ns(2.5) == 2_500
        assert ms_to_ns(0.5) == 500_000
        assert ns_to_us(2_500) == 2.5
        assert ns_to_ms(500_000) == 0.5

    def test_fractional_rounding(self):
        assert seconds_to_ns(1e-9) == 1
        assert us_to_ns(0.0004) == 0  # below resolution rounds down


class TestDeterministicRandom:
    def test_same_seed_same_stream(self):
        a, b = DeterministicRandom(42), DeterministicRandom(42)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a, b = DeterministicRandom(1), DeterministicRandom(2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_fork_is_stable_and_independent(self):
        base = DeterministicRandom(7)
        fork_a = base.fork(1)
        fork_b = DeterministicRandom(7).fork(1)
        assert [fork_a.randint(0, 100) for _ in range(5)] == [
            fork_b.randint(0, 100) for _ in range(5)
        ]
        assert base.fork(1).seed != base.fork(2).seed

    def test_helpers(self):
        rng = DeterministicRandom(3)
        assert rng.choice([1, 2, 3]) in (1, 2, 3)
        items = [1, 2, 3, 4]
        rng.shuffle(items)
        assert sorted(items) == [1, 2, 3, 4]
        assert rng.expovariate(1.0) > 0


class TestNullSimulator:
    def test_clock_stays_until_stepped(self):
        sim = NullSimulator()
        fired = []
        sim.schedule(5, fired.append, 1)
        assert sim.now == 0
        assert fired == []
        sim.step()
        assert fired == [1]
        assert sim.now == 5


class TestSimulatorDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def run_once():
            from tests.conftest import Harness

            harness = Harness()
            harness.add_client(window=2)
            harness.start_clients()
            harness.run(60)
            return (
                harness.completed,
                harness.sim.events_processed,
                [str(s) for s in harness.service_states()],
            )

        assert run_once() == run_once()
