"""Unit tests for protocol message types: digests, sizes, structure."""

from repro.messages.base import MESSAGE_HEADER_SIZE
from repro.messages.checkpointing import Checkpoint
from repro.messages.client import Reply, Request, RequestBurst
from repro.messages.internal import ExecRequest, NvStable, VcReady
from repro.messages.ordering import Commit, InstanceFetch, Prepare
from repro.messages.statetransfer import StateRequest, StateResponse
from repro.messages.viewchange import NewView, NewViewAck, ViewChange
from repro.trinx.certificates import CounterCertificate


def cert(value=5):
    return CounterCertificate("r0/tss0", 0, value, None, b"m" * 32)


class TestRequest:
    def test_payload_dominates_wire_size(self):
        small = Request("c0", 1, None, payload_size=0)
        large = Request("c0", 1, None, payload_size=1024)
        assert large.wire_size() - small.wire_size() == 1024

    def test_mac_adds_32_bytes(self):
        without = Request("c0", 1, None)
        with_mac = Request("c0", 1, None, mac=b"m" * 32)
        assert with_mac.wire_size() - without.wire_size() == 32

    def test_digest_covers_operation(self):
        a = Request("c0", 1, ("put", "k", 1))
        b = Request("c0", 1, ("put", "k", 2))
        assert a.digestible() != b.digestible()

    def test_key_identifies_request(self):
        assert Request("c0", 7, None).key == ("c0", 7)

    def test_operation_size_estimates(self):
        nested = Request("c0", 1, ("op", ["a", "b"], {"k": 1}))
        assert nested.wire_size() > Request("c0", 1, None).wire_size()


class TestReply:
    def test_match_key_is_result_based(self):
        a = Reply("r0", "c0", 1, 0, [1, 2])
        b = Reply("r1", "c0", 1, 0, [1, 2])
        assert a.match_key == b.match_key  # replica identity irrelevant

    def test_match_key_differs_on_result(self):
        a = Reply("r0", "c0", 1, 0, "x")
        b = Reply("r1", "c0", 1, 0, "y")
        assert a.match_key != b.match_key

    def test_unhashable_results_are_frozen(self):
        reply = Reply("r0", "c0", 1, 0, {"k": [1, 2]})
        hash(reply.match_key)  # must not raise

    def test_result_size_counted(self):
        small = Reply("r0", "c0", 1, 0, None, result_size=0)
        large = Reply("r0", "c0", 1, 0, None, result_size=1024)
        assert large.wire_size() - small.wire_size() == 1024


class TestRequestBurst:
    def test_wire_size_is_sum_plus_header(self):
        requests = tuple(Request("c0", i, None) for i in range(3))
        burst = RequestBurst(requests)
        assert burst.wire_size() == MESSAGE_HEADER_SIZE + sum(r.wire_size() for r in requests)


class TestOrderingMessages:
    def test_prepare_digest_covers_assignment(self):
        request = Request("c0", 1, "op")
        a = Prepare(0, 5, (request,), "r0")
        b = Prepare(0, 6, (request,), "r0")
        c = Prepare(1, 5, (request,), "r0")
        assert len({a.digestible(), b.digestible(), c.digestible()}) == 3

    def test_reproposal_flag_changes_digest(self):
        request = Request("c0", 1, "op")
        normal = Prepare(1, 5, (request,), "r0")
        reproposal = Prepare(1, 5, (request,), "r0", reproposal=True)
        assert normal.digestible() != reproposal.digestible()

    def test_proposal_digestible_excludes_sender(self):
        request = Request("c0", 1, "op")
        a = Prepare(0, 5, (request,), "r0")
        b = Prepare(0, 5, (request,), "r1")
        assert a.proposal_digestible() == b.proposal_digestible()

    def test_noop_detection(self):
        assert Prepare(0, 5, (), "r0").is_noop
        assert not Prepare(0, 5, (Request("c0", 1, None),), "r0").is_noop

    def test_prepare_wire_size_includes_batch_and_cert(self):
        requests = tuple(Request("c0", i, None, payload_size=100) for i in range(4))
        bare = Prepare(0, 5, requests, "r0")
        certified = Prepare(0, 5, requests, "r0", certificate=cert())
        assert certified.wire_size() > bare.wire_size() > 400

    def test_commit_binds_proposal_digest(self):
        a = Commit(0, 5, "r1", b"a" * 32)
        b = Commit(0, 5, "r1", b"b" * 32)
        assert a.digestible() != b.digestible()

    def test_instance_fetch_is_tiny(self):
        assert InstanceFetch(5, 0).wire_size() < 64


class TestCheckpointMessages:
    def test_agreement_key_excludes_sender(self):
        a = Checkpoint(8, "r0", b"s" * 32)
        b = Checkpoint(8, "r1", b"s" * 32)
        assert a.agreement_key() == b.agreement_key()
        assert a.digestible() != b.digestible()


class TestViewChangeMessages:
    def test_view_change_key(self):
        vc = ViewChange("r1", 0, 1, 0, (), ())
        assert vc.key == ("r1", 1)

    def test_view_change_digest_covers_prepares(self):
        prepare = Prepare(0, 5, (), "r0", certificate=cert())
        a = ViewChange("r1", 0, 1, 0, (), ())
        b = ViewChange("r1", 0, 1, 0, (), (prepare,))
        assert a.digestible() != b.digestible()

    def test_split_parts_have_distinct_digests(self):
        a = ViewChange("r1", 0, 1, 0, (), (), pillar=0, num_parts=2)
        b = ViewChange("r1", 0, 1, 0, (), (), pillar=1, num_parts=2)
        assert a.digestible() != b.digestible()

    def test_new_view_size_includes_certificate(self):
        vc = ViewChange("r1", 0, 1, 0, (), (), certificate=cert())
        nv_empty = NewView("r1", 1, 0, 0, (), (), (), ())
        nv_full = NewView("r1", 1, 0, 0, (), (vc,), (), ())
        assert nv_full.wire_size() > nv_empty.wire_size()

    def test_ack_carries_prepares(self):
        prepare = Prepare(1, 5, (), "r1", certificate=cert())
        ack = NewViewAck("r0", 1, (prepare,))
        assert ack.wire_size() > NewViewAck("r0", 1, ()).wire_size()


class TestStateTransferMessages:
    def test_response_sized_by_snapshot(self):
        small = StateResponse("r0", 8, (), ("snap", ()), snapshot_size=10, view=0)
        large = StateResponse("r0", 8, (), ("snap", ()), snapshot_size=10_000, view=0)
        assert large.wire_size() - small.wire_size() == 9_990

    def test_request_is_small(self):
        assert StateRequest("r0", 128).wire_size() < 64


class TestInternalMessages:
    def test_exec_request_carries_batch(self):
        request = Request("c0", 1, "op")
        message = ExecRequest(5, 0, (request,))
        assert message.order == 5 and message.batch == (request,)

    def test_internal_messages_are_frozen(self):
        message = VcReady(0, 1, 0, (), ((),))
        try:
            message.v_to = 9
            raised = False
        except Exception:
            raised = True
        assert raised

    def test_nv_stable_shape(self):
        message = NvStable(1, 8, (), ((), ()))
        assert len(message.prepares_by_pillar) == 2
