"""JSONL export/import/merge on the tracer (multi-process trace support)."""

from __future__ import annotations

from repro.sim.tracing import Tracer


def test_write_and_load_round_trip(tmp_path):
    tracer = Tracer(enabled=True)
    tracer.emit(100, "r0/pillar0", "prepare", {"order": 1})
    tracer.emit(250, "r1/pillar0", "commit", None)
    tracer.emit(300, "r0/exec", "executed", ("clients0:c0", 1))
    path = tmp_path / "trace.jsonl"
    assert tracer.write_jsonl(str(path)) == 3

    loaded = Tracer.load_jsonl(str(path))
    assert len(loaded.records) == 3
    assert loaded.records[0].time_ns == 100
    assert loaded.records[0].node == "r0/pillar0"
    assert loaded.records[0].category == "prepare"
    assert loaded.records[0].detail == {"order": 1}
    assert loaded.records[1].detail is None


def test_non_json_details_are_stringified(tmp_path):
    class Opaque:
        def __str__(self):
            return "opaque-detail"

    tracer = Tracer(enabled=True)
    tracer.emit(1, "r0", "event", Opaque())
    path = tmp_path / "trace.jsonl"
    tracer.write_jsonl(str(path))
    loaded = Tracer.load_jsonl(str(path))
    assert loaded.records[0].detail == "opaque-detail"


def test_merge_orders_by_time_across_processes(tmp_path):
    # two per-process tracers with interleaved timestamps
    a = Tracer(enabled=True)
    a.emit(100, "r0", "x")
    a.emit(300, "r0", "y")
    b = Tracer(enabled=True)
    b.emit(50, "r1", "p")
    b.emit(200, "r1", "q")
    merged = Tracer.merge(a, b)
    assert [(r.time_ns, r.node) for r in merged.records] == [
        (50, "r1"),
        (100, "r0"),
        (200, "r1"),
        (300, "r0"),
    ]


def test_merge_via_files_round_trips(tmp_path):
    a = Tracer(enabled=True)
    a.emit(10, "r0", "start")
    b = Tracer(enabled=True)
    b.emit(5, "clients0", "send")
    pa, pb = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    a.write_jsonl(str(pa))
    b.write_jsonl(str(pb))
    merged = Tracer.merge(Tracer.load_jsonl(str(pa)), Tracer.load_jsonl(str(pb)))
    assert [r.category for r in merged.records] == ["send", "start"]


def test_disabled_tracer_records_nothing(tmp_path):
    tracer = Tracer(enabled=False)
    tracer.emit(1, "r0", "x")
    path = tmp_path / "empty.jsonl"
    assert tracer.write_jsonl(str(path)) == 0
    assert Tracer.load_jsonl(str(path)).records == []
