"""Unit tests for pillar-level mechanics: lanes, gaps, fetch, retransmit."""

from repro.messages.internal import ExecRequest, FillGap, OrderRequest
from repro.messages.client import Request
from repro.messages.ordering import Commit, InstanceFetch, Prepare
from repro.sim.faults import TargetedDrop
from tests.conftest import Harness


def leader_pillar(harness, index=0):
    return harness.replicas[0].pillars[index]


class TestLaneBookkeeping:
    def test_fixed_leader_single_lane_pointers(self):
        harness = Harness(num_pillars=2)
        p0, p1 = harness.replicas[0].pillars
        assert p0.lane_next == {0: 2}
        assert p1.lane_next == {0: 1}

    def test_rotation_lane_pointers_cover_all_lanes(self):
        harness = Harness(num_pillars=2, rotation=True)
        pillar = harness.replicas[0].pillars[0]
        assert set(pillar.lane_next) == {0, 1, 2}
        for lane, order in pillar.lane_next.items():
            assert order % 2 == 0  # pillar 0's class
            assert harness.config.lane_of(0, order) == lane

    def test_lane_pointers_advance_by_stride(self):
        harness = Harness(num_pillars=2)
        harness.add_client(window=4)
        harness.start_clients()
        harness.run(50)
        pillar = leader_pillar(harness)
        assert pillar.lane_next[0] > 2
        assert pillar.lane_next[0] % 2 == 0

    def test_proposals_respect_window(self):
        harness = Harness(num_pillars=1, checkpoint_interval=8, window_size=16)
        # flood with more requests than the window admits
        for _ in range(4):
            harness.add_client(window=16)
        harness.start_clients()
        harness.run(2)  # too short for any checkpoint
        pillar = leader_pillar(harness)
        assert pillar.lane_next[0] <= pillar.log.high + 1


class TestInstanceFetch:
    def test_proposer_answers_fetch_with_prepare(self):
        harness = Harness()
        harness.add_client(window=2)
        harness.start_clients()
        harness.run(50)
        pillar = leader_pillar(harness)
        some_order = max(pillar.log._instances)
        received = []
        follower = harness.replicas[1].pillars[0]
        original = follower.on_message

        def spy(src, message):
            received.append(message)
            return original(src, message)

        follower.on_message = spy
        pillar._enqueue(("r1", "pillar0"), InstanceFetch(some_order, 0))
        harness.run(10)
        assert any(
            isinstance(m, Prepare) and m.order == some_order for m in received
        )

    def test_follower_answers_fetch_with_commit(self):
        harness = Harness()
        harness.add_client(window=2)
        harness.start_clients()
        harness.run(50)
        follower = harness.replicas[1].pillars[0]
        some_order = max(
            o for o, inst in follower.log._instances.items() if inst.own_commit is not None
        )
        received = []
        asker = harness.replicas[2].pillars[0]
        original = asker.on_message

        def spy(src, message):
            received.append(message)
            return original(src, message)

        asker.on_message = spy
        follower._enqueue(("r2", "pillar0"), InstanceFetch(some_order, 0))
        harness.run(10)
        assert any(isinstance(m, Commit) and m.order == some_order for m in received)

    def test_lost_commit_repaired_via_fetch(self):
        harness = Harness()
        # drop the first 30 COMMIT messages from r1 to r2 to create a gap
        dropped = {"count": 0}

        def drop_commits(src, dst, msg):
            inner = getattr(msg, "message", None)
            if src == "r0" and dst == "r2" and isinstance(inner, Prepare) and dropped["count"] < 10:
                dropped["count"] += 1
                return True
            return False

        harness.network.add_filter(TargetedDrop(drop_commits))
        harness.add_client(window=2)
        harness.start_clients()
        harness.run(400)
        harness.drain()
        assert dropped["count"] >= 1
        # r2 recovered the lost instances (fetch, retransmission, or state
        # transfer) and is executing at the head again
        progress = [replica.execution.next_order for replica in harness.replicas]
        assert progress[0] - progress[2] <= harness.config.window_size
        states = [str(s) for s in harness.service_states()]
        assert states[0] == states[1] == states[2]


class TestRetransmission:
    def test_leader_retransmits_unacknowledged_prepares(self):
        harness = Harness()
        # r1 and r2 never receive anything: nothing can commit, the leader
        # must retransmit (and eventually suspect, which we ignore here)
        prepares_seen = {"count": 0}

        def count_and_drop(src, dst, msg):
            inner = getattr(msg, "message", None)
            if isinstance(inner, Prepare):
                prepares_seen["count"] += 1
            return src == "r0" and dst in ("r1", "r2")

        harness.network.add_filter(TargetedDrop(count_and_drop))
        harness.add_client(window=1)
        harness.start_clients()
        harness.run(140)
        # initial multicast (2) + at least one retransmission round
        assert prepares_seen["count"] >= 4


class TestNoopFilling:
    def test_fill_gap_produces_noop_for_own_slot(self):
        harness = Harness(num_pillars=2)
        pillar = leader_pillar(harness, index=1)  # owns order 1
        exec_requests = []
        execution = harness.replicas[0].execution
        original = execution.on_message

        def spy(src, message):
            if isinstance(message, ExecRequest):
                exec_requests.append(message)
            return original(src, message)

        execution.on_message = spy
        pillar._enqueue(("r0", "exec"), FillGap(1))
        harness.run(20)
        noops = [m for m in exec_requests if m.order == 1 and m.batch == ()]
        assert noops

    def test_fill_gap_for_foreign_slot_broadcasts_fetch(self):
        harness = Harness()
        follower = harness.replicas[1].pillars[0]
        fetches = []
        leader = harness.replicas[0].pillars[0]
        original = leader.on_message

        def spy(src, message):
            if isinstance(message, InstanceFetch):
                fetches.append(message)
            return original(src, message)

        leader.on_message = spy
        follower._enqueue(("r1", "exec"), FillGap(1))
        harness.run(10)
        assert fetches and fetches[0].order == 1


class TestAdaptiveBatching:
    def test_partial_batch_released_when_pipeline_idle(self):
        harness = Harness(batch_size=8)
        client = harness.add_client(window=1)
        harness.start_clients()
        harness.run(50)
        # a single client with window 1 never fills a batch of 8, yet its
        # requests must not wait forever
        assert client.completed > 5

    def test_batches_fill_under_load(self):
        harness = Harness(batch_size=8)
        for _ in range(6):
            harness.add_client(window=8)
        harness.start_clients()
        harness.run(150)
        harness.drain()
        stats = harness.replicas[0].stats()
        assert stats["executed_requests"] / max(1, stats["executed_instances"]) > 2.0

    def test_dedup_prevents_double_proposal(self):
        harness = Harness()
        pillar = leader_pillar(harness)
        request = Request("clients:c0", 1, None)
        pillar._enqueue(("r0", "handler"), OrderRequest((request,)))
        pillar._enqueue(("r0", "handler"), OrderRequest((request,)))
        harness.run(10)
        assert pillar.proposals == 1
