"""Property-based tests (hypothesis) on core data structures and invariants."""

from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.core.log import OrderingLog
from repro.core.quorum import MatchingQuorum
from repro.core.seqnum import flatten, unflatten
from repro.crypto.digests import canonical_bytes, digest
from repro.crypto.mac import compute_mac, verify_mac
from repro.trinx.enclave import EnclavePlatform
from repro.trinx.trinx import TrInX

SECRET = b"property-group-secret-000000000!"

digestible_values = st.recursive(
    st.one_of(
        st.integers(),
        st.booleans(),
        st.none(),
        st.text(max_size=20),
        st.binary(max_size=20),
    ),
    lambda children: st.one_of(
        st.tuples(children, children),
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


class TestCanonicalSerialization:
    @given(digestible_values)
    def test_serialization_is_deterministic(self, value):
        assert canonical_bytes(value) == canonical_bytes(value)

    @given(digestible_values, digestible_values)
    def test_distinct_digests_imply_distinct_values(self, a, b):
        if digest(a) != digest(b):
            assert canonical_bytes(a) != canonical_bytes(b)

    @given(st.lists(st.integers(), max_size=8))
    def test_lists_and_tuples_agree(self, items):
        assert canonical_bytes(items) == canonical_bytes(tuple(items))

    @given(st.dictionaries(st.text(max_size=6), st.integers(), max_size=6))
    def test_dict_insertion_order_irrelevant(self, mapping):
        reversed_mapping = dict(reversed(list(mapping.items())))
        assert canonical_bytes(mapping) == canonical_bytes(reversed_mapping)


class TestMacProperties:
    @given(digestible_values)
    def test_roundtrip(self, value):
        tag = compute_mac(SECRET, value)
        assert verify_mac(SECRET, value, tag)

    @given(digestible_values, st.binary(min_size=32, max_size=32))
    def test_random_tags_rejected(self, value, tag):
        if tag != compute_mac(SECRET, value):
            assert not verify_mac(SECRET, value, tag)


class TestFlattenProperties:
    views = st.integers(min_value=0, max_value=2**20)
    orders = st.integers(min_value=0, max_value=2**40 - 1)

    @given(views, orders)
    def test_roundtrip(self, view, order):
        assert unflatten(flatten(view, order)) == (view, order)

    @given(views, orders, views, orders)
    def test_ordering_is_lexicographic(self, v1, o1, v2, o2):
        assert (flatten(v1, o1) < flatten(v2, o2)) == ((v1, o1) < (v2, o2))


class TestTrustedCounterProperties:
    @given(st.lists(st.integers(min_value=1, max_value=1 << 50), min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_counter_never_decreases(self, requested_values):
        instance = TrInX(EnclavePlatform(), "prop", SECRET)
        observed = [0]
        for value in requested_values:
            try:
                instance.create_independent(0, value, "m")
            except Exception:
                pass
            observed.append(instance.current_value(0))
        assert observed == sorted(observed)

    @given(st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_independent_values_never_reused(self, requested_values):
        instance = TrInX(EnclavePlatform(), "prop", SECRET)
        issued = []
        for value in requested_values:
            try:
                instance.create_independent(0, value, f"msg-{len(issued)}")
                issued.append(value)
            except Exception:
                pass
        assert len(issued) == len(set(issued))
        assert issued == sorted(issued)

    @given(st.lists(st.tuples(st.booleans(), st.integers(min_value=0, max_value=50)), max_size=25))
    @settings(max_examples=50)
    def test_certificates_always_verify_under_same_secret(self, operations):
        issuer = TrInX(EnclavePlatform(), "prop-a", SECRET)
        verifier = TrInX(EnclavePlatform(), "prop-b", SECRET)
        for index, (continuing, value) in enumerate(operations):
            message = f"op-{index}"
            try:
                if continuing:
                    cert = issuer.create_continuing(0, value, message)
                else:
                    cert = issuer.create_independent(0, value, message)
            except Exception:
                continue
            assert verifier.verify(cert, message)
            assert not verifier.verify(cert, message + "-tampered")

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=30)
    def test_certificates_never_verify_under_other_secret(self, other_secret):
        if other_secret == SECRET:
            return
        issuer = TrInX(EnclavePlatform(), "prop", other_secret)
        verifier = TrInX(EnclavePlatform(), "prop", SECRET)
        cert = issuer.create_independent(0, 1, "m")
        assert not verifier.verify(cert, "m")

    @given(st.integers(min_value=0, max_value=3), st.integers(min_value=1, max_value=1000))
    def test_certificate_field_tampering_always_detected(self, field_index, delta):
        issuer = TrInX(EnclavePlatform(), "prop", SECRET)
        verifier = TrInX(EnclavePlatform(), "prop-b", SECRET)
        cert = issuer.create_continuing(1, 10, "m")
        if field_index == 0:
            tampered = replace(cert, issuer="other")
        elif field_index == 1:
            tampered = replace(cert, counter=(cert.counter + delta) % 4)
            if tampered.counter == cert.counter:
                return
        elif field_index == 2:
            tampered = replace(cert, new_value=cert.new_value + delta)
        else:
            tampered = replace(cert, previous_value=(cert.previous_value or 0) + delta)
        assert not verifier.verify(tampered, "m")


class TestQuorumProperties:
    @given(
        st.integers(min_value=1, max_value=5),
        st.lists(
            st.tuples(st.sampled_from("abcdefg"), st.sampled_from(["k1", "k2", "k3"])),
            max_size=40,
        ),
    )
    def test_quorum_triggers_exactly_once_per_key(self, quorum_size, votes):
        quorum = MatchingQuorum(quorum_size)
        triggers = {}
        for sender, key in votes:
            if quorum.add(key, sender):
                triggers[key] = triggers.get(key, 0) + 1
        for key in {key for _s, key in votes}:
            distinct = len({s for s, k in votes if k == key})
            assert quorum.count(key) == distinct
            expected = 1 if distinct >= quorum_size else 0
            assert triggers.get(key, 0) == expected


class TestOrderingLogProperties:
    @given(st.lists(st.integers(min_value=1, max_value=200), max_size=40))
    @settings(max_examples=50)
    def test_window_invariant_holds_through_advances(self, checkpoint_orders):
        log = OrderingLog(window_size=32)
        for checkpoint in checkpoint_orders:
            log.advance(checkpoint)
            assert log.high - log.low == 32
            assert all(log.low < order <= log.high for order in log._instances)
            # create a few instances inside the new window
            for offset in (1, 16, 32):
                log.instance(log.low + offset)

    @given(st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=30))
    def test_low_mark_is_monotone(self, checkpoints):
        log = OrderingLog(window_size=32)
        lows = [log.low]
        for checkpoint in checkpoints:
            log.advance(checkpoint)
            lows.append(log.low)
        assert lows == sorted(lows)
