"""Reconcile the accounting model (``wire_size()``) with the real codec.

The simulator charges bandwidth for ``wire_size()`` bytes, which models
the fixed-width serialization of the Java prototype.  The live codec uses
varints and length prefixes, so it is usually somewhat *smaller* than the
accounting (and never wildly larger).  These tests pin down the exact
properties that must hold and a tolerance band for the rest:

* the real frame header is byte-identical in size to the modelled
  ``MESSAGE_HEADER_SIZE``;
* modelled payload bytes (request/reply payloads) grow the encoding
  byte-for-byte — benchmarks moving k-byte payloads really put k bytes on
  the wire;
* attaching a TrInX certificate costs the same order of bytes in both
  models;
* every sized message encodes within [0.5x, 1.25x] of its accounting.
"""

from __future__ import annotations

import pytest

from repro.messages.base import MESSAGE_HEADER_SIZE
from repro.messages.client import Reply, Request
from repro.messages.ordering import Prepare
from repro.trinx.certificates import CounterCertificate
from repro.wire.codec import default_codec
from repro.wire.framing import FRAME_HEADER_SIZE

from tests.test_wire_codec import SAMPLES

SIZED_SAMPLES = [m for m in SAMPLES if callable(getattr(m, "wire_size", None))]


def test_frame_header_matches_accounted_header():
    assert FRAME_HEADER_SIZE == MESSAGE_HEADER_SIZE == 20


@pytest.mark.parametrize("payload", [1, 64, 1024, 100_000])
def test_request_payload_grows_both_models_identically(payload):
    codec = default_codec()
    base = Request("clients0:c0", 1, ("noop",), 0, b"\x11" * 32)
    padded = Request("clients0:c0", 1, ("noop",), payload, b"\x11" * 32)
    accounted_growth = padded.wire_size() - base.wire_size()
    encoded_growth = codec.encoded_size(padded) - codec.encoded_size(base)
    assert accounted_growth == payload
    # encoded growth = payload + longer varints for the payload_size field
    # and the padding length prefix (≤ 3 B each here)
    assert payload <= encoded_growth <= payload + 6


def test_reply_result_payload_is_materialized():
    codec = default_codec()
    small = Reply("r0", "clients0:c0", 1, 0, "ok", 0)
    big = Reply("r0", "clients0:c0", 1, 0, "ok", 2048)
    assert big.wire_size() - small.wire_size() == 2048
    grown = codec.encoded_size(big) - codec.encoded_size(small)
    assert 2048 <= grown <= 2048 + 3


def test_certificate_attachment_costs_similar_bytes():
    codec = default_codec()
    cert = CounterCertificate("r0:t0", 3, 7, 6, b"\xab" * 16)
    bare = Prepare(1, 42, (), "r1", None, False)
    certified = Prepare(1, 42, (), "r1", cert, False)
    accounted_delta = certified.wire_size() - bare.wire_size()
    encoded_delta = codec.encoded_size(certified) - codec.encoded_size(bare)
    assert accounted_delta > 0 and encoded_delta > 0
    # both models agree on the order of magnitude of a certificate
    assert 0.5 <= encoded_delta / accounted_delta <= 1.25


def test_batch_digest_costs_32_bytes_in_both_models():
    codec = default_codec()
    cert = CounterCertificate("r0:t0", 3, 7, None, b"\xab" * 16)
    bare = Prepare(1, 42, (), "r1", cert, False)
    batched = Prepare(1, 42, (), "r1", cert, False, batch_digest=b"\xcd" * 32)
    assert batched.wire_size() - bare.wire_size() == 32
    encoded_delta = codec.encoded_size(batched) - codec.encoded_size(bare)
    # 32 digest bytes plus the varint length prefix of the bytes field
    assert 32 <= encoded_delta <= 32 + 3


def test_batched_prepare_stays_in_the_tolerance_band():
    cert = CounterCertificate("r0:t0", 3, 7, None, b"\xab" * 32)
    requests = tuple(
        Request("clients0:c0", n, ("noop",), 0, b"\x11" * 32) for n in range(16)
    )
    prepare = Prepare(1, 42, requests, "r1", cert, False, batch_digest=b"\xcd" * 32)
    delta = default_codec().audit(prepare)
    assert 0.5 <= delta.ratio <= 1.25, str(delta)


@pytest.mark.parametrize("message", SIZED_SAMPLES, ids=lambda m: type(m).__name__)
def test_encoded_size_tracks_accounting(message):
    delta = default_codec().audit(message)
    assert delta.encoded >= FRAME_HEADER_SIZE
    assert 0.5 <= delta.ratio <= 1.25, str(delta)


def test_audit_reports_are_informative():
    delta = default_codec().audit(Request("clients0:c0", 1, ("noop",), 0, b"\x11" * 32))
    text = str(delta)
    assert "Request" in text and "accounted" in text and "encoded" in text
