"""Model-based testing: CoordinationService against a reference model.

A flat-dictionary reference model executes the same random operation
sequences; any divergence in results or final state indicates a bug in
the hierarchical implementation.  Determinism across two service
instances is also checked — the property replication correctness rests on.
"""

from hypothesis import given, settings, strategies as st

from repro.services.coordination import CoordinationService


class ReferenceModel:
    """Flat-path reference implementation of the coordination API."""

    def __init__(self):
        self.nodes = {"": (0, 0)}  # path -> (data_size, version); "" is the root

    @staticmethod
    def _valid(path):
        return isinstance(path, str) and path.startswith("/") and (
            path == "/" or not any(part == "" for part in path[1:].split("/"))
        )

    def _key(self, path):
        return "" if path == "/" else path

    def execute(self, operation):
        action = operation[0]
        path = operation[1]
        if not self._valid(path):
            return ("error", "invalid path")
        key = self._key(path)
        if action == "create":
            if path == "/":
                return ("error", "invalid path")
            parent = key.rsplit("/", 1)[0]
            if parent not in self.nodes:
                return ("error", "no such parent")
            if key in self.nodes:
                return ("error", "node exists")
            self.nodes[key] = (int(operation[2]), 0)
            return ("ok", 0)
        if action == "delete":
            if path == "/":
                return ("error", "invalid path")
            if key not in self.nodes:
                return ("error", "no such node")
            if any(other.startswith(key + "/") for other in self.nodes):
                return ("error", "node has children")
            del self.nodes[key]
            return ("ok",)
        if action == "set":
            if key not in self.nodes:
                return ("error", "no such node")
            size, version = self.nodes[key]
            self.nodes[key] = (int(operation[2]), version + 1)
            return ("ok", version + 1)
        if action == "get":
            if key not in self.nodes:
                return ("error", "no such node")
            size, version = self.nodes[key]
            return ("ok", size, version)
        if action == "children":
            if key not in self.nodes:
                return ("error", "no such node")
            prefix = key + "/"
            names = sorted(
                other[len(prefix):]
                for other in self.nodes
                if other.startswith(prefix) and "/" not in other[len(prefix):]
            )
            return ("ok",) + tuple(names)
        if action == "exists":
            return ("ok", key in self.nodes)
        raise AssertionError(f"unknown action {action}")


names = st.sampled_from(["a", "b", "c", "d"])
paths = st.lists(names, min_size=1, max_size=3).map(lambda parts: "/" + "/".join(parts))
operations = st.one_of(
    st.tuples(st.just("create"), paths, st.integers(min_value=0, max_value=256)),
    st.tuples(st.just("delete"), paths),
    st.tuples(st.just("set"), paths, st.integers(min_value=0, max_value=256)),
    st.tuples(st.just("get"), paths),
    st.tuples(st.just("children"), paths),
    st.tuples(st.just("exists"), paths),
    st.tuples(st.just("children"), st.just("/")),
)


class TestAgainstReference:
    @given(st.lists(operations, max_size=40))
    @settings(max_examples=100)
    def test_every_result_matches_the_model(self, sequence):
        service = CoordinationService()
        model = ReferenceModel()
        for operation in sequence:
            assert service.execute(operation, "c") == model.execute(operation)

    @given(st.lists(operations, max_size=40))
    @settings(max_examples=50)
    def test_determinism_across_instances(self, sequence):
        a, b = CoordinationService(), CoordinationService()
        for operation in sequence:
            assert a.execute(operation, "x") == b.execute(operation, "y")
        assert a.state_digestible() == b.state_digestible()

    @given(st.lists(operations, max_size=30))
    @settings(max_examples=50)
    def test_snapshot_roundtrip_preserves_behaviour(self, sequence):
        service = CoordinationService()
        for operation in sequence:
            service.execute(operation, "c")
        clone = CoordinationService()
        clone.restore(service.snapshot())
        probe = ("children", "/")
        assert clone.execute(probe, "c") == service.execute(probe, "c")
        assert clone.state_digestible() == service.state_digestible()
