"""Byzantine-behavior tests: attacks mounted through the real TrInX API.

The hybrid fault model lets replicas behave arbitrarily *outside* the
trusted subsystem.  These tests mount the attacks the paper's mechanisms
are designed for — equivocation, concealment, counter cleaning, message
forgery — using genuine TrInX instances (the attacker owns its enclave
but cannot subvert it) and check that correct replicas detect or prevent
each one.
"""

from dataclasses import replace

import pytest

from repro.core.config import ReplicaGroupConfig
from repro.core.seqnum import flatten
from repro.errors import CounterRegressionError
from repro.messages.checkpointing import Checkpoint
from repro.messages.ordering import Commit, Prepare
from repro.messages.client import Request
from repro.messages.viewchange import ViewChange
from repro.crypto.mac import digest_many
from repro.trinx.enclave import EnclavePlatform
from repro.trinx.trinx import TrInX, batch_root
from tests.conftest import Harness

CONFIG = ReplicaGroupConfig(
    replica_ids=("r0", "r1", "r2"), checkpoint_interval=8, window_size=16
)


def make_pillar(harness=None, replica_index=1):
    harness = harness or Harness()
    return harness, harness.replicas[replica_index].pillars[0]


def evil_trinx(replica_id: str) -> TrInX:
    """The attacker's own (genuine!) TrInX instance."""
    return TrInX(
        EnclavePlatform(),
        CONFIG.trinx_instance_id(replica_id, 0),
        CONFIG.group_secret,
        num_counters=2,
    )


def make_prepare(trinx: TrInX, view: int, order: int, payload="x", leader="r0") -> Prepare:
    request = Request("clients:c9", order, payload)
    bare = Prepare(view, order, (request,), leader)
    leaves = digest_many([request.digestible()])
    cert = trinx.create_independent_batch(
        0, flatten(view, order), bare.certified_digestible(), leaves
    )
    return replace(bare, certificate=cert, batch_digest=batch_root(leaves))


class TestEquivocationPrevention:
    def test_leader_cannot_sign_two_proposals_for_one_instance(self):
        trinx = evil_trinx("r0")
        make_prepare(trinx, 0, 5, payload="A")
        with pytest.raises(CounterRegressionError):
            make_prepare(trinx, 0, 5, payload="B")

    def test_follower_rejects_prepare_with_reused_certificate(self):
        harness, pillar = make_pillar()
        trinx = evil_trinx("r0")
        good = make_prepare(trinx, 0, 5, payload="A")
        # splice the valid certificate onto a different proposal, with the
        # batch digest honestly recomputed — the certified root still differs
        evil_request = Request("clients:c9", 5, "B")
        forged = Prepare(
            0, 5, (evil_request,), "r0",
            certificate=good.certificate,
            batch_digest=batch_root(digest_many([evil_request.digestible()])),
        )
        assert pillar._verify_prepare(good)
        assert not pillar._verify_prepare(forged)

    def test_follower_rejects_prepare_with_wrong_counter_value(self):
        harness, pillar = make_pillar()
        trinx = evil_trinx("r0")
        # certified for order 6 but claiming order 5
        other = make_prepare(trinx, 0, 6)
        forged = Prepare(
            0, 5, other.batch, "r0",
            certificate=other.certificate, batch_digest=other.batch_digest,
        )
        assert not pillar._verify_prepare(forged)

    def test_follower_rejects_prepare_from_non_proposer(self):
        harness, pillar = make_pillar(replica_index=2)
        trinx = evil_trinx("r1")  # r1 is not the leader of view 0
        prepare = make_prepare(trinx, 0, 5, leader="r1")
        assert not pillar._verify_prepare(prepare)

    def test_follower_rejects_unsigned_prepare(self):
        harness, pillar = make_pillar()
        bare = Prepare(0, 5, (Request("clients:c9", 5, "x"),), "r0")
        assert not pillar._verify_prepare(bare)

    def test_commit_certificates_equally_bound(self):
        harness, pillar = make_pillar(replica_index=0)
        trinx = evil_trinx("r1")
        bare = Commit(0, 5, "r1", b"d" * 32)
        cert = trinx.create_independent(0, flatten(0, 5), bare.digestible())
        good = replace(bare, certificate=cert)
        assert pillar._verify_commit(good)
        # same certificate, different digest: refused
        forged = replace(Commit(0, 5, "r1", b"e" * 32), certificate=cert)
        assert not pillar._verify_commit(forged)


class TestConcealmentPrevention:
    """§5.2.3: the continuing certificate's previous value forces a faulty
    replica to disclose every instance it actively participated in."""

    def _view_change(self, trinx, prepares, v_to=1, replica="r1", checkpoint_order=0):
        bare = ViewChange(
            replica=replica,
            v_from=0,
            v_to=v_to,
            checkpoint_order=checkpoint_order,
            checkpoint_certificate=(),
            prepares=tuple(prepares),
            pillar=0,
            num_parts=1,
        )
        cert = trinx.create_continuing(0, flatten(v_to, 0), bare.digestible())
        return replace(bare, certificate=cert)

    def test_honest_view_change_accepted(self):
        harness, pillar = make_pillar(replica_index=0)
        leader_trinx = evil_trinx("r0")
        follower_trinx = evil_trinx("r1")
        # the follower acknowledged instance (0, 1): its counter is [0|1]
        prepare = make_prepare(leader_trinx, 0, 1)
        commit = Commit(0, 1, "r1", b"d" * 32)
        follower_trinx.create_independent(0, flatten(0, 1), commit.digestible())
        view_change = self._view_change(follower_trinx, [prepare])
        assert pillar._verify_vc_part(view_change)

    def test_concealing_view_change_rejected(self):
        """The Figure-3 attack: R1 participated in (0, 51) but sends a
        VIEW-CHANGE without the PREPARE.  The unforgeable previous counter
        value [0|51] betrays the omission."""
        harness, pillar = make_pillar(replica_index=0)
        leader_trinx = evil_trinx("r0")
        follower_trinx = evil_trinx("r1")
        prepare = make_prepare(leader_trinx, 0, 1)
        commit = Commit(0, 1, "r1", b"d" * 32)
        follower_trinx.create_independent(0, flatten(0, 1), commit.digestible())
        concealing = self._view_change(follower_trinx, [])  # hides the prepare
        assert not pillar._verify_vc_part(concealing)

    def test_cleaned_counter_view_change_is_valid(self):
        """Figure 3, step 5: a faulty replica may burn an intermediate
        certificate to clean its counter to [v|0]; the resulting
        VIEW-CHANGE is *valid* (it provably conceals nothing that is
        critical) — correct replicas just won't act on it without a
        view-change certificate for the intermediate views."""
        harness, pillar = make_pillar(replica_index=0)
        trinx = evil_trinx("r1")
        # participate in view 0 up to order 1
        commit = Commit(0, 1, "r1", b"d" * 32)
        trinx.create_independent(0, flatten(0, 1), commit.digestible())
        # clean: burn a continuing certificate for [1|0] that is never shown
        trinx.create_continuing(0, flatten(1, 0), "burned")
        # the VIEW-CHANGE for view 2 now reveals previous value [1|0]
        cleaned = self._view_change(trinx, [], v_to=2)
        assert pillar._verify_vc_part(cleaned)

    def test_sending_order_messages_after_view_change_impossible(self):
        trinx = evil_trinx("r1")
        commit = Commit(0, 1, "r1", b"d" * 32)
        trinx.create_independent(0, flatten(0, 1), commit.digestible())
        # abort to view 1: counter jumps to [1|0]
        trinx.create_continuing(0, flatten(1, 0), "view-change")
        # any further order message for view 0 needs [0|o] < [1|0]: refused
        late = Commit(0, 2, "r1", b"d" * 32)
        with pytest.raises(CounterRegressionError):
            trinx.create_independent(0, flatten(0, 2), late.digestible())

    def test_view_change_with_forged_checkpoint_rejected(self):
        harness, pillar = make_pillar(replica_index=0)
        trinx = evil_trinx("r1")
        # claim a checkpoint at order 8 with a single (non-quorum) voucher
        voucher = Checkpoint(8, "r1", b"s" * 32)
        cert = trinx.create_trusted_mac(1, voucher.digestible())
        bare = ViewChange(
            replica="r1", v_from=0, v_to=1, checkpoint_order=8,
            checkpoint_certificate=(replace(voucher, certificate=cert),),
            prepares=(), pillar=0, num_parts=1,
        )
        vc_cert = trinx.create_continuing(0, flatten(1, 0), bare.digestible())
        forged = replace(bare, certificate=vc_cert)
        assert not pillar._verify_vc_part(forged)


class TestViewChangeGatekeeping:
    def test_no_jump_without_view_change_certificate(self, harness):
        coordinator = harness.replicas[0].coordinator
        assert coordinator._allowed(1)  # stable + 1 always allowed
        assert not coordinator._allowed(2)  # needs the certificate for view 1
        coordinator.vc_certificates.add(1)
        assert coordinator._allowed(2)

    def test_base_view_needs_f_plus_one_witnesses(self, harness):
        coordinator = harness.replicas[0].coordinator
        vc_r1 = ViewChange("r1", 1, 2, 0, (), (), pillar=0, num_parts=1)
        # a single VIEW-CHANGE claiming base view 1: insufficient
        assert not coordinator._base_view_confirmed(1, {"r1": vc_r1})
        vc_r2 = ViewChange("r2", 1, 2, 0, (), (), pillar=0, num_parts=1)
        assert coordinator._base_view_confirmed(1, {"r1": vc_r1, "r2": vc_r2})

    def test_base_view_zero_established_by_definition(self, harness):
        coordinator = harness.replicas[0].coordinator
        assert coordinator._base_view_confirmed(0, {})


class TestEndToEndByzantine:
    def test_forged_traffic_does_not_disturb_the_group(self):
        """A malicious node floods forged PREPAREs; the group is unmoved."""
        harness = Harness()
        client = harness.add_client(window=2)
        harness.start_clients()

        evil = evil_trinx("r0")  # correct instance id, wrong... same secret!
        # even with the group secret, the attacker cannot equivocate: it can
        # produce at most one valid certificate per instance.  Forge without
        # advancing: tamper the batch after certification.
        from repro.sim.process import Envelope

        attacker_endpoint_prepares = []
        for order in range(1, 6):
            good = make_prepare(evil, 0, order, payload="legit")
            evil_request = Request("clients:c9", order, "evil")
            forged = replace(
                good,
                batch=(evil_request,),
                batch_digest=batch_root(digest_many([evil_request.digestible()])),
            )
            attacker_endpoint_prepares.append(forged)

        def inject():
            for prepare in attacker_endpoint_prepares:
                for rid in ("r1", "r2"):
                    envelope = Envelope(("r0", "pillar0"), "pillar0", prepare)
                    harness.network.send("r0", rid, envelope, 200)

        harness.sim.schedule(1_000_000, inject)
        harness.run(200)
        harness.drain()
        # forged proposals never execute: every executed operation came from
        # the real client
        harness.assert_replicas_consistent()
        assert client.completed > 0

    def test_replica_with_wrong_secret_is_ignored(self):
        harness = Harness()
        client = harness.add_client(window=2)
        harness.start_clients()
        outsider = TrInX(EnclavePlatform(), "r0/tss0", b"not-the-group-secret-000000000!!", num_counters=2)
        prepare = make_prepare(outsider, 0, 1, payload="evil")
        from repro.sim.process import Envelope

        harness.sim.schedule(
            500_000,
            lambda: harness.network.send(
                "r0", "r1", Envelope(("r0", "pillar0"), "pillar0", prepare), 200
            ),
        )
        harness.run(100)
        harness.drain()
        harness.assert_replicas_consistent()
        assert client.completed > 0
