"""Unit tests for the network model: latency, bandwidth, fault filters."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.faults import ExtraDelay, FaultPlan, LossRate, Partition, TargetedDrop
from repro.sim.kernel import Simulator
from repro.sim.network import Network, NetworkInterface


def make_net(latency_ns=1_000, bandwidth=1_000_000_000):
    sim = Simulator()
    net = Network(sim, latency_ns=latency_ns, default_bandwidth=bandwidth)
    inboxes = {name: [] for name in ("a", "b", "c")}
    for name in inboxes:
        net.register(name, lambda src, msg, _n=name: inboxes[_n].append((src, msg, sim.now)))
    return sim, net, inboxes


class TestNetworkDelivery:
    def test_latency_and_transmission_delay(self):
        # 1000 bytes at 1 GB/s = 1000ns egress + 1000ns ingress + 1000ns latency
        sim, net, inboxes = make_net()
        net.send("a", "b", "hello", 1_000)
        sim.run()
        assert inboxes["b"] == [("a", "hello", 3_000)]

    def test_egress_serializes_back_to_back_sends(self):
        sim, net, inboxes = make_net()
        net.send("a", "b", "m1", 1_000)
        net.send("a", "c", "m2", 1_000)
        sim.run()
        # second message waits 1000ns for the egress NIC
        assert inboxes["b"][0][2] == 3_000
        assert inboxes["c"][0][2] == 4_000

    def test_ingress_contention_incast(self):
        sim, net, inboxes = make_net()
        net.send("a", "c", "m1", 1_000)
        net.send("b", "c", "m2", 1_000)
        sim.run()
        times = sorted(t for (_, _, t) in inboxes["c"])
        assert times == [3_000, 4_000]  # second arrival queues behind the first

    def test_zero_size_message_is_latency_only(self):
        sim, net, inboxes = make_net()
        net.send("a", "b", "tiny", 0)
        sim.run()
        assert inboxes["b"][0][2] == 1_000

    def test_multicast_sends_separate_copies(self):
        sim, net, inboxes = make_net()
        net.multicast("a", ["b", "c"], "m", 1_000)
        sim.run()
        assert len(inboxes["b"]) == 1
        assert len(inboxes["c"]) == 1
        assert net.messages_sent == 2

    def test_byte_accounting(self):
        sim, net, _ = make_net()
        net.send("a", "b", "m", 500)
        sim.run()
        assert net.interface("a").bytes_sent == 500
        assert net.interface("b").bytes_received == 500

    def test_unknown_nodes_rejected(self):
        sim, net, _ = make_net()
        with pytest.raises(SimulationError):
            net.send("nope", "b", "m", 10)
        with pytest.raises(SimulationError):
            net.send("a", "nope", "m", 10)

    def test_duplicate_registration_rejected(self):
        sim, net, _ = make_net()
        with pytest.raises(ConfigurationError):
            net.register("a", lambda s, m: None)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkInterface("x", egress_bandwidth=0, ingress_bandwidth=1)


class TestFaultFilters:
    def test_loss_rate_one_drops_everything(self):
        sim, net, inboxes = make_net()
        net.add_filter(LossRate(1.0))
        net.send("a", "b", "m", 10)
        sim.run()
        assert inboxes["b"] == []
        assert net.messages_dropped == 1

    def test_loss_rate_zero_drops_nothing(self):
        sim, net, inboxes = make_net()
        net.add_filter(LossRate(0.0))
        net.send("a", "b", "m", 10)
        sim.run()
        assert len(inboxes["b"]) == 1

    def test_loss_rate_is_deterministic(self):
        outcomes = []
        for _ in range(2):
            sim, net, inboxes = make_net()
            net.add_filter(LossRate(0.5, seed=7))
            for i in range(50):
                net.send("a", "b", i, 10)
            sim.run()
            outcomes.append([m for (_, m, _) in inboxes["b"]])
        assert outcomes[0] == outcomes[1]
        assert 0 < len(outcomes[0]) < 50

    def test_loss_rate_scoped_to_pairs(self):
        sim, net, inboxes = make_net()
        net.add_filter(LossRate(1.0, pairs={("a", "b")}))
        net.send("a", "b", "m", 10)
        net.send("a", "c", "m", 10)
        sim.run()
        assert inboxes["b"] == []
        assert len(inboxes["c"]) == 1

    def test_partition_blocks_both_directions(self):
        sim, net, inboxes = make_net()
        net.add_filter(Partition({"b"}, start_ns=0, end_ns=None))
        net.send("a", "b", "in", 10)
        net.send("b", "a", "out", 10)
        net.send("a", "c", "bypass", 10)
        sim.run()
        assert inboxes["b"] == []
        assert inboxes["a"] == []
        assert len(inboxes["c"]) == 1

    def test_partition_window_heals(self):
        sim, net, inboxes = make_net()
        net.add_filter(Partition({"b"}, start_ns=0, end_ns=5_000))
        net.send("a", "b", "blocked", 10)
        sim.schedule(10_000, lambda: net.send("a", "b", "healed", 10))
        sim.run()
        assert [m for (_, m, _) in inboxes["b"]] == ["healed"]

    def test_partition_internal_traffic_unaffected(self):
        sim, net, inboxes = make_net()
        net.add_filter(Partition({"a", "b"}))
        net.send("a", "b", "inside", 10)
        sim.run()
        assert len(inboxes["b"]) == 1

    def test_targeted_drop_counts(self):
        sim, net, inboxes = make_net()
        drop = TargetedDrop(lambda src, dst, msg: msg == "victim")
        net.add_filter(drop)
        net.send("a", "b", "victim", 10)
        net.send("a", "b", "ok", 10)
        sim.run()
        assert [m for (_, m, _) in inboxes["b"]] == ["ok"]
        assert drop.dropped == 1

    def test_extra_delay_shifts_arrival(self):
        sim, net, inboxes = make_net()
        net.add_filter(ExtraDelay(delay_ns=50_000))
        net.send("a", "b", "m", 0)
        sim.run()
        assert inboxes["b"][0][2] == 51_000

    def test_remove_filter_restores_traffic(self):
        sim, net, inboxes = make_net()
        block = LossRate(1.0)
        net.add_filter(block)
        net.send("a", "b", "lost", 10)
        sim.run()
        net.remove_filter(block)
        net.send("a", "b", "found", 10)
        sim.run()
        assert [m for (_, m, _) in inboxes["b"]] == ["found"]

    def test_fault_plan_composes(self):
        plan = FaultPlan([ExtraDelay(1_000), ExtraDelay(2_000)])
        decision = plan.decide("a", "b", "m", 10, 0)
        assert decision.extra_delay_ns == 3_000
        plan.add(LossRate(1.0))
        assert plan.decide("a", "b", "m", 10, 0).drop

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            LossRate(1.5)
        with pytest.raises(ValueError):
            ExtraDelay(-1)
