"""Property-based tests for batched TrInX certification.

One counter certificate covers a whole PREPARE batch: the enclave MACs
the batch *root* (a hash over the ordered leaf digests) together with
the fixed-size proposal header.  These properties pin the security
contract — the certificate verifies iff every member of the batch is
exactly the one certified, in exactly the certified position — and that
batched certification drives the trusted counter identically to the
per-request path it replaced.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.mac import compute_mac, compute_mac_many, digest_many
from repro.errors import CounterRegressionError
from repro.messages.client import Request
from repro.trinx.enclave import EnclavePlatform
from repro.trinx.trinx import TrInX, batch_root, batch_size_hint
from repro.trinx.certificates import CounterCertificate

SECRET = b"batch-certification-test-secret!"
HEADER = ("prepare-header", 0, 7, "r0", False)


def make_trinx(instance_id: str = "r0/tss0") -> TrInX:
    return TrInX(EnclavePlatform(), instance_id, SECRET, num_counters=2)


def make_pair() -> tuple[TrInX, TrInX]:
    """Issuer and verifier: distinct instances sharing the group secret."""
    return make_trinx("r0/tss0"), make_trinx("r1/tss0")


def requests_from(payloads, client="clients:c0") -> list[Request]:
    return [Request(client, i + 1, payload) for i, payload in enumerate(payloads)]


def leaves_of(requests) -> list[bytes]:
    return digest_many([request.digestible() for request in requests])


payload_lists = st.lists(st.text(max_size=24), min_size=1, max_size=8)


class TestBatchMembership:
    @given(payload_lists)
    @settings(max_examples=50, deadline=None)
    def test_untampered_batch_verifies(self, payloads):
        issuer, verifier = make_pair()
        leaves = leaves_of(requests_from(payloads))
        cert = issuer.create_independent_batch(0, 1, HEADER, leaves)
        assert verifier.verify_batch(cert, HEADER, leaves)

    @given(payload_lists, st.data())
    @settings(max_examples=50, deadline=None)
    def test_mutating_any_member_rejected(self, payloads, data):
        issuer, verifier = make_pair()
        requests = requests_from(payloads)
        cert = issuer.create_independent_batch(0, 1, HEADER, leaves_of(requests))
        index = data.draw(st.integers(0, len(requests) - 1), label="victim")
        victim = requests[index]
        mutated = Request(victim.client_id, victim.request_id, str(victim.operation) + "!")
        tampered = list(requests)
        tampered[index] = mutated
        assert not verifier.verify_batch(cert, HEADER, leaves_of(tampered))

    @given(st.lists(st.text(max_size=24), min_size=2, max_size=8, unique=True),
           st.randoms(use_true_random=False))
    @settings(max_examples=50, deadline=None)
    def test_reordering_members_rejected(self, payloads, rng):
        issuer, verifier = make_pair()
        requests = requests_from(payloads)
        cert = issuer.create_independent_batch(0, 1, HEADER, leaves_of(requests))
        shuffled = list(requests)
        while shuffled == requests:
            rng.shuffle(shuffled)
        assert not verifier.verify_batch(cert, HEADER, leaves_of(shuffled))

    @given(payload_lists, payload_lists, st.data())
    @settings(max_examples=50, deadline=None)
    def test_splicing_between_certified_batches_rejected(self, first, second, data):
        """Swap a member between two honestly certified batches: both die."""
        issuer, verifier = make_pair()
        batch_a = requests_from(first, client="clients:c0")
        batch_b = requests_from(second, client="clients:c1")
        cert_a = issuer.create_independent_batch(0, 1, HEADER, leaves_of(batch_a))
        cert_b = issuer.create_independent_batch(0, 2, HEADER, leaves_of(batch_b))
        i = data.draw(st.integers(0, len(batch_a) - 1), label="from_a")
        j = data.draw(st.integers(0, len(batch_b) - 1), label="into_b")
        spliced = list(batch_b)
        spliced[j] = batch_a[i]
        if leaves_of(spliced) != leaves_of(batch_b):  # identical members splice to a no-op
            assert not verifier.verify_batch(cert_b, HEADER, leaves_of(spliced))
        # and the certificate is not transferable to the donor batch either
        if leaves_of(batch_a) != leaves_of(batch_b):
            assert not verifier.verify_batch(cert_a, HEADER, leaves_of(batch_b))

    @given(payload_lists)
    @settings(max_examples=50, deadline=None)
    def test_header_is_bound(self, payloads):
        """The same batch under a different proposal header does not verify."""
        issuer, verifier = make_pair()
        leaves = leaves_of(requests_from(payloads))
        cert = issuer.create_independent_batch(0, 1, HEADER, leaves)
        other_header = ("prepare-header", 0, 8, "r0", False)
        assert not verifier.verify_batch(cert, other_header, leaves)

    @given(payload_lists)
    @settings(max_examples=50, deadline=None)
    def test_batch_certificate_is_not_a_plain_certificate(self, payloads):
        """Domain separation: a batch certificate must fail plain verify."""
        issuer, verifier = make_pair()
        requests = requests_from(payloads)
        leaves = leaves_of(requests)
        cert = issuer.create_independent_batch(0, 1, HEADER, leaves)
        assert not verifier.verify(cert, HEADER)
        assert not verifier.verify(cert, batch_root(leaves))


class TestCounterSemantics:
    @given(st.lists(st.integers(min_value=1, max_value=10_000),
                    min_size=1, max_size=6, unique=True))
    @settings(max_examples=50, deadline=None)
    def test_batched_and_scalar_certification_agree_on_monotonicity(self, values):
        """The batch path drives the counter exactly like the scalar path."""
        scalar, batched = make_trinx(), make_trinx()
        leaves = leaves_of(requests_from(["x"]))
        for value in sorted(values):
            scalar.create_independent(0, value, ("m", value))
            batched.create_independent_batch(0, value, ("m", value), leaves)
        assert scalar.current_value(0) == batched.current_value(0)
        lowest = sorted(values)[0]
        with pytest.raises(CounterRegressionError):
            scalar.create_independent(0, lowest, ("m", lowest))
        with pytest.raises(CounterRegressionError):
            batched.create_independent_batch(0, lowest, ("m", lowest), leaves)

    def test_equivocation_impossible_for_batches(self):
        trinx = make_trinx()
        leaves = leaves_of(requests_from(["a"]))
        trinx.create_independent_batch(0, 5, HEADER, leaves)
        with pytest.raises(CounterRegressionError):
            trinx.create_independent_batch(0, 5, HEADER, leaves_of(requests_from(["b"])))

    @given(payload_lists)
    @settings(max_examples=25, deadline=None)
    def test_certificate_shape_matches_independent(self, payloads):
        """Batch certificates reuse the independent-certificate wire shape."""
        issuer = make_trinx()
        cert = issuer.create_independent_batch(0, 1, HEADER, leaves_of(requests_from(payloads)))
        assert isinstance(cert, CounterCertificate)
        assert cert.previous_value is None
        assert cert.counter == 0 and cert.new_value == 1


class TestVectorizedCrypto:
    @given(payload_lists)
    @settings(max_examples=50, deadline=None)
    def test_digest_many_matches_scalar_digests(self, payloads):
        items = [request.digestible() for request in requests_from(payloads)]
        import hashlib

        from repro.crypto.digests import canonical_bytes

        expected = [hashlib.sha256(canonical_bytes(item)).digest() for item in items]
        assert digest_many(items) == expected

    @given(st.binary(min_size=1, max_size=32), payload_lists)
    @settings(max_examples=50, deadline=None)
    def test_compute_mac_many_matches_scalar_macs(self, key, payloads):
        items = [request.digestible() for request in requests_from(payloads)]
        assert compute_mac_many(key, items) == [compute_mac(key, item) for item in items]

    @given(st.integers(min_value=0, max_value=64))
    @settings(max_examples=50, deadline=None)
    def test_enclave_charge_scales_with_batch_size(self, n):
        assert batch_size_hint(n) == 32 + 32 * n


class TestBatchRoot:
    @given(st.lists(st.binary(min_size=32, max_size=32), max_size=8),
           st.lists(st.binary(min_size=32, max_size=32), max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_root_injective_on_observed_inputs(self, a, b):
        if a != b:
            assert batch_root(a) != batch_root(b)
        else:
            assert batch_root(a) == batch_root(b)

    def test_length_prefix_prevents_boundary_shifts(self):
        """[x] + [] and [] + [x] style extensions hash differently."""
        x, y = b"\x01" * 32, b"\x02" * 32
        assert batch_root([x, y]) != batch_root([y, x])
        assert batch_root([x]) != batch_root([x, x])
