"""Tests for the transport-agnostic chaos filter library."""

from __future__ import annotations

import pytest

from repro.chaos import (
    DELIVER,
    ChaosPlan,
    CrashWindows,
    Equivocate,
    FilterDecision,
    LossRate,
    Partition,
    Reorder,
)
from repro.messages.client import Request
from repro.messages.ordering import Commit, Prepare
from repro.sim.process import Envelope
from repro.sim.rand import derive_seed
from repro.trinx.certificates import CounterCertificate

REQUEST = Request("clients0:c0", 3, ("put", "k", 1), 0, b"\x22" * 32)
CERT = CounterCertificate(issuer="r0p0", counter=0, new_value=11, previous_value=None, mac=b"\x01" * 32)
PREPARE = Prepare(view=0, order=11, batch=(REQUEST,), leader="r0", certificate=CERT)


# ----------------------------------------------------------------------
# Decision plumbing
# ----------------------------------------------------------------------
def test_deliver_is_the_neutral_decision():
    assert not DELIVER.drop
    assert DELIVER.extra_delay_ns == 0
    assert DELIVER.replace is None


def test_chaos_plan_drop_wins_over_everything():
    plan = ChaosPlan([LossRate(0.0), LossRate(1.0), LossRate(0.0)])
    decision = plan.decide("a", "b", REQUEST, 64, 0)
    assert decision.drop


def test_chaos_plan_accumulates_delays():
    from repro.chaos import ExtraDelay

    plan = ChaosPlan([ExtraDelay(1_000), ExtraDelay(2_000)])
    decision = plan.decide("a", "b", REQUEST, 64, 0)
    assert not decision.drop
    assert decision.extra_delay_ns == 3_000


def test_chaos_plan_threads_replacements_through_later_filters():
    seen = []

    class Tag:
        def decide(self, src, dst, message, size, now):
            seen.append(message)
            return DELIVER

    class Swap:
        def decide(self, src, dst, message, size, now):
            return FilterDecision(replace="swapped")

    plan = ChaosPlan([Swap(), Tag()])
    decision = plan.decide("a", "b", "original", 64, 0)
    assert decision.replace == "swapped"
    assert seen == ["swapped"]  # the later filter saw the replacement


# ----------------------------------------------------------------------
# Individual filters
# ----------------------------------------------------------------------
def test_loss_rate_is_deterministic_per_seed():
    def outcomes(seed):
        loss = LossRate(0.5, seed=seed)
        return [loss.decide("a", "b", None, 0, 0).drop for _ in range(64)]

    assert outcomes(1) == outcomes(1)
    assert outcomes(1) != outcomes(2)
    assert any(outcomes(1)) and not all(outcomes(1))


def test_partition_cuts_only_cross_partition_traffic_in_window():
    partition = Partition(["r2"], start_ns=100, end_ns=200)
    assert not partition.decide("r0", "r2", None, 0, 50).drop  # before
    assert partition.decide("r0", "r2", None, 0, 150).drop  # inside, crossing
    assert partition.decide("r2", "r0", None, 0, 150).drop  # both directions
    assert not partition.decide("r0", "r1", None, 0, 150).drop  # same side
    assert not partition.decide("r0", "r2", None, 0, 250).drop  # healed


def test_reorder_delays_a_fraction_and_counts():
    reorder = Reorder(0.5, delay_ns=10_000, seed=3)
    decisions = [reorder.decide("a", "b", None, 0, 0) for _ in range(100)]
    delayed = [d for d in decisions if d.extra_delay_ns > 0]
    assert reorder.reordered == len(delayed)
    assert 20 <= len(delayed) <= 80  # ~half, seeded
    assert all(d.extra_delay_ns == 10_000 for d in delayed)
    assert not any(d.drop for d in decisions)


def test_crash_windows_silence_node_then_recover():
    crash = CrashWindows("r1", [(100, 200), (400, None)])
    assert not crash.crashed(50)
    assert crash.decide("r1", "r0", None, 0, 150).drop  # outbound while down
    assert crash.decide("r0", "r1", None, 0, 150).drop  # inbound while down
    assert not crash.decide("r0", "r1", None, 0, 300).drop  # recovered
    assert crash.decide("r0", "r1", None, 0, 500).drop  # second window, open-ended
    assert not crash.decide("r0", "r2", None, 0, 150).drop  # bystanders unaffected
    assert crash.dropped == 3


# ----------------------------------------------------------------------
# Equivocation
# ----------------------------------------------------------------------
def test_equivocate_forges_prepare_batch_but_keeps_certificate():
    attack = Equivocate("r0", ["r1"], forged_operation=("put", "poison", 999))
    envelope = Envelope(("r0", "pillar0"), "pillar0", PREPARE)
    decision = attack.decide("r0", "r1", envelope, 256, 0)
    assert decision.replace is not None
    forged = decision.replace.message
    assert forged.certificate is PREPARE.certificate  # genuine certificate kept
    assert forged.batch[0].operation == ("put", "poison", 999)
    assert forged.batch[0].client_id == REQUEST.client_id
    assert forged.batch[0].request_id == REQUEST.request_id
    assert attack.attempts == 1


def test_equivocate_spares_non_victims_and_non_prepares():
    attack = Equivocate("r0", ["r1"])
    envelope = Envelope(("r0", "pillar0"), "pillar0", PREPARE)
    assert attack.decide("r0", "r2", envelope, 256, 0) is DELIVER  # not a victim
    assert attack.decide("r1", "r1", envelope, 256, 0) is DELIVER  # wrong source
    commit = Commit(view=0, order=11, replica="r0", proposal_digest=b"d", certificate=CERT)
    commit_env = Envelope(("r0", "pillar0"), "pillar0", commit)
    assert attack.decide("r0", "r1", commit_env, 256, 0) is DELIVER  # not a PREPARE
    assert attack.attempts == 0


def test_equivocate_respects_max_attempts_and_window():
    attack = Equivocate("r0", ["r1"], start_ns=100, end_ns=300, max_attempts=2)
    envelope = Envelope(("r0", "pillar0"), "pillar0", PREPARE)
    assert attack.decide("r0", "r1", envelope, 256, 50) is DELIVER  # too early
    assert attack.decide("r0", "r1", envelope, 256, 150).replace is not None
    assert attack.decide("r0", "r1", envelope, 256, 160).replace is not None
    assert attack.decide("r0", "r1", envelope, 256, 170) is DELIVER  # attempts spent
    assert attack.attempts == 2


# ----------------------------------------------------------------------
# Compatibility shim and seed derivation
# ----------------------------------------------------------------------
def test_sim_faults_shim_reexports_the_chaos_library():
    from repro.sim import faults

    assert faults.LossRate is LossRate
    assert faults.Partition is Partition
    assert faults.FaultPlan is ChaosPlan
    assert faults.DELIVER is DELIVER


def test_derive_seed_is_stable_and_discriminating():
    assert derive_seed(42, "fault", 0) == derive_seed(42, "fault", 0)
    assert derive_seed(42, "fault", 0) != derive_seed(42, "fault", 1)
    assert derive_seed(42, "fault", 0) != derive_seed(43, "fault", 0)
    assert 0 <= derive_seed(0) <= 0x7FFFFFFF


def test_filter_decision_rejects_unknown_fields():
    with pytest.raises(TypeError):
        FilterDecision(bogus=True)
