"""Tests for the deployment builder and benchmark harness."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.benchmark import run_benchmark
from repro.runtime.calibration import CalibrationProfile
from repro.runtime.deployment import PROTOCOLS, DeploymentSpec, build_deployment

MS = 1_000_000


class TestDeploymentBuilder:
    def test_hybster_s_is_single_pillar(self):
        deployment = build_deployment(DeploymentSpec(protocol="hybster-s", num_clients=2))
        assert all(len(replica.pillars) == 1 for replica in deployment.replicas)
        assert len(deployment.replicas) == 3

    def test_hybster_x_one_pillar_per_core(self):
        deployment = build_deployment(DeploymentSpec(protocol="hybster-x", cores=4, num_clients=2))
        assert all(len(replica.pillars) == 4 for replica in deployment.replicas)

    def test_pbft_uses_four_replicas(self):
        deployment = build_deployment(DeploymentSpec(protocol="pbft", num_clients=2))
        assert len(deployment.replicas) == 4

    def test_minbft_single_thread(self):
        deployment = build_deployment(DeploymentSpec(protocol="minbft", num_clients=2))
        assert len(deployment.replicas) == 3
        assert all(len(replica.machine.threads) == 1 for replica in deployment.replicas)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            build_deployment(DeploymentSpec(protocol="raft"))

    def test_unknown_service_rejected(self):
        with pytest.raises(ConfigurationError):
            build_deployment(DeploymentSpec(service="mysql"))

    def test_clients_spread_over_machines(self):
        deployment = build_deployment(DeploymentSpec(num_clients=10, client_machines=2))
        nodes = {client.endpoint.node for client in deployment.clients}
        assert nodes == {"clients0", "clients1"}

    def test_calibration_applied_to_stages(self):
        calibration = CalibrationProfile(send_cost_ns=9_999)
        deployment = build_deployment(
            DeploymentSpec(protocol="hybster-s", num_clients=2, calibration=calibration)
        )
        pillar = deployment.replicas[0].pillars[0]
        assert pillar.send_cost_ns == 9_999

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_every_protocol_builds_and_runs(self, protocol):
        deployment = build_deployment(
            DeploymentSpec(protocol=protocol, num_clients=4, client_window=2)
        )
        result = run_benchmark(deployment, warmup_ns=10 * MS, measure_ns=20 * MS)
        assert result.completed > 0
        assert result.throughput_ops > 0


class TestBenchmarkHarness:
    def test_measurement_excludes_warmup(self):
        deployment = build_deployment(DeploymentSpec(protocol="hybster-s", num_clients=4))
        result = run_benchmark(deployment, warmup_ns=20 * MS, measure_ns=30 * MS)
        assert result.measure_ns == 30 * MS
        # completions during warmup are not counted
        assert result.completed < deployment.total_completed()

    def test_latency_collected_fresh(self):
        deployment = build_deployment(DeploymentSpec(protocol="hybster-s", num_clients=4))
        result = run_benchmark(deployment, warmup_ns=10 * MS, measure_ns=20 * MS)
        assert result.latency.count == result.completed

    def test_utilization_and_network_reported(self):
        deployment = build_deployment(DeploymentSpec(protocol="hybster-s", num_clients=8))
        result = run_benchmark(deployment, warmup_ns=10 * MS, measure_ns=20 * MS)
        assert 0 < result.replica_cpu_utilization <= 1
        assert result.network_bytes > 0
        assert len(result.replica_stats) == 3

    def test_result_renders(self):
        deployment = build_deployment(DeploymentSpec(protocol="hybster-s", num_clients=2))
        result = run_benchmark(deployment, warmup_ns=10 * MS, measure_ns=10 * MS)
        text = str(result)
        assert "hybster-s" in text and "kops/s" in text


class TestReportRendering:
    def test_figure_result_render(self):
        from repro.experiments.report import FigureResult, Series

        result = FigureResult("figX", "Title", "cores", "kops/s")
        series = result.add_series(Series("A"))
        series.add(1, 10.0)
        series.add(4, 40.0)
        result.paper_reference["A @4"] = 42
        result.notes.append("shape holds")
        text = result.render()
        assert "figX" in text and "A @4=42" in text and "shape holds" in text

    def test_series_helpers(self):
        from repro.experiments.report import Series

        series = Series("s", [(1, 5.0), (2, 9.0)])
        assert series.value_at(2) == 9.0
        assert series.value_at(3) is None
        assert series.peak == 9.0
        assert series.final == 9.0

    def test_missing_series_raises(self):
        from repro.experiments.report import FigureResult

        with pytest.raises(KeyError):
            FigureResult("f", "t", "x", "y").series_by_label("nope")
