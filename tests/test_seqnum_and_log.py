"""Unit tests for the flattened number space, quorums, and the ordering log."""

import pytest

from repro.core.log import OrderingLog
from repro.core.quorum import MatchingQuorum
from repro.core.seqnum import flatten, order_of, unflatten, view_of
from repro.errors import ProtocolError, WindowViolationError
from repro.messages.ordering import Prepare


class TestFlattenedNumberSpace:
    def test_roundtrip(self):
        for view, order in [(0, 0), (0, 1), (3, 50), (17, 2**30)]:
            assert unflatten(flatten(view, order)) == (view, order)

    def test_view_in_most_significant_bits(self):
        # all values of a higher view exceed all values of a lower view
        assert flatten(1, 0) > flatten(0, 2**40 - 1)
        assert flatten(5, 0) > flatten(4, 10**9)

    def test_monotone_in_order_within_view(self):
        assert flatten(2, 100) < flatten(2, 101)

    def test_accessors(self):
        value = flatten(7, 1234)
        assert view_of(value) == 7
        assert order_of(value) == 1234

    def test_custom_order_bits(self):
        assert unflatten(flatten(3, 9, order_bits=8), order_bits=8) == (3, 9)

    def test_order_overflow_rejected(self):
        with pytest.raises(ProtocolError):
            flatten(0, 1 << 40)

    def test_negative_values_rejected(self):
        with pytest.raises(ProtocolError):
            flatten(-1, 0)
        with pytest.raises(ProtocolError):
            flatten(0, -1)
        with pytest.raises(ProtocolError):
            unflatten(-5)


class TestMatchingQuorum:
    def test_reached_exactly_once(self):
        quorum = MatchingQuorum(2)
        assert not quorum.add("k", "r0")
        assert quorum.add("k", "r1")
        assert not quorum.add("k", "r2")  # already reached: no second trigger

    def test_duplicate_senders_do_not_count(self):
        quorum = MatchingQuorum(2)
        assert not quorum.add("k", "r0")
        assert not quorum.add("k", "r0")
        assert quorum.count("k") == 1

    def test_keys_are_independent(self):
        quorum = MatchingQuorum(2)
        quorum.add("a", "r0")
        quorum.add("b", "r1")
        assert quorum.count("a") == 1
        assert quorum.count("b") == 1
        assert not quorum.reached("a")

    def test_payloads_preserved(self):
        quorum = MatchingQuorum(2)
        quorum.add("k", "r0", "msg0")
        quorum.add("k", "r1", "msg1")
        assert sorted(quorum.payloads("k")) == ["msg0", "msg1"]

    def test_voters(self):
        quorum = MatchingQuorum(3)
        quorum.add("k", "r0")
        quorum.add("k", "r2")
        assert quorum.voters("k") == {"r0", "r2"}

    def test_discard_below(self):
        quorum = MatchingQuorum(1)
        quorum.add((5, b"x"), "r0")
        quorum.add((9, b"y"), "r1")
        quorum.discard_below((6, b""))
        assert quorum.count((5, b"x")) == 0
        assert quorum.count((9, b"y")) == 1

    def test_invalid_quorum_size(self):
        with pytest.raises(ValueError):
            MatchingQuorum(0)


class TestOrderingLog:
    def test_initial_window(self):
        log = OrderingLog(window_size=16)
        assert log.low == 0
        assert log.high == 16
        assert log.in_window(1)
        assert log.in_window(16)
        assert not log.in_window(0)
        assert not log.in_window(17)

    def test_instance_get_or_create(self):
        log = OrderingLog(window_size=16)
        instance = log.instance(5)
        assert instance.order == 5
        assert log.instance(5) is instance
        assert len(log) == 1

    def test_out_of_window_access_rejected(self):
        log = OrderingLog(window_size=16)
        with pytest.raises(WindowViolationError):
            log.instance(17)
        with pytest.raises(WindowViolationError):
            log.instance(0)

    def test_peek_never_creates(self):
        log = OrderingLog(window_size=16)
        assert log.peek(5) is None
        assert len(log) == 0

    def test_advance_garbage_collects(self):
        log = OrderingLog(window_size=16)
        for order in (1, 5, 9):
            log.instance(order)
        log.advance(5)
        assert log.low == 5
        assert log.peek(1) is None
        assert log.peek(5) is None
        assert log.peek(9) is not None
        assert log.in_window(21)

    def test_advance_is_monotone(self):
        log = OrderingLog(window_size=16)
        log.advance(8)
        log.advance(4)  # stale: ignored
        assert log.low == 8

    def test_uncommitted_sorted_by_order(self):
        log = OrderingLog(window_size=16)
        for order in (9, 3, 6):
            instance = log.instance(order)
            instance.prepare = Prepare(0, order, (), "r0")
        log.instance(6).committed = True
        assert [i.order for i in log.uncommitted()] == [3, 9]

    def test_prepares_in_window_filters_by_pillar(self):
        log = OrderingLog(window_size=16)
        for order in range(1, 9):
            log.instance(order).prepare = Prepare(0, order, (), "r0")
        mine = log.prepares_in_window(pillar=1, num_pillars=4)
        assert [p.order for p in mine] == [1, 5]
