"""Unit tests for stages, endpoints, and stage-to-stage messaging."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.process import Endpoint, Stage
from repro.sim.resources import Machine
from repro.sim.tracing import Tracer


class Recorder(Stage):
    """Records received messages; optionally charges CPU per message."""

    def __init__(self, endpoint, thread, name, cost_ns=0):
        super().__init__(endpoint, thread, name)
        self.cost_ns = cost_ns
        self.received = []

    def on_message(self, src, message):
        self.sim.charge(self.cost_ns)
        self.received.append((src, message, self.now))


class Echo(Stage):
    def on_message(self, src, message):
        self.send(src, ("echo", message))


def build_world(latency_ns=1_000):
    sim = Simulator()
    net = Network(sim, latency_ns=latency_ns, default_bandwidth=1_000_000_000)
    tracer = Tracer()
    machines = {name: Machine(sim, name, cores=4) for name in ("m0", "m1")}
    endpoints = {name: Endpoint(sim, net, name, tracer) for name in machines}
    return sim, net, machines, endpoints, tracer


class TestStageMessaging:
    def test_remote_send_goes_through_network(self):
        sim, net, machines, endpoints, _ = build_world()
        a = Recorder(endpoints["m0"], machines["m0"].allocate_thread("a"), "a")
        b = Recorder(endpoints["m1"], machines["m1"].allocate_thread("b"), "b")
        a.send(b.address, "hi", size=100)
        sim.run()
        assert len(b.received) == 1
        src, msg, at = b.received[0]
        assert src == a.address
        assert msg == "hi"
        assert at > 1_000  # at least the propagation latency
        assert net.messages_sent == 1

    def test_local_send_bypasses_network(self):
        sim, net, machines, endpoints, _ = build_world()
        thread = machines["m0"].allocate_thread("shared")
        a = Recorder(endpoints["m0"], thread, "a")
        b = Recorder(endpoints["m0"], machines["m0"].allocate_thread("b"), "b")
        a.send(b.address, "local", size=100)
        sim.run()
        assert len(b.received) == 1
        assert net.messages_sent == 0

    def test_sends_inside_handler_deferred_to_busy_end(self):
        sim, net, machines, endpoints, _ = build_world(latency_ns=0)

        class Worker(Stage):
            def on_message(self, src, message):
                self.sim.charge(10_000)
                self.send(("m0", "sink"), "result", size=0)

        worker = Worker(endpoints["m0"], machines["m0"].allocate_thread("w"), "w")
        sink = Recorder(endpoints["m0"], machines["m0"].allocate_thread("s"), "sink")
        worker._enqueue(("m0", "test"), "go")
        sim.run()
        assert sink.received[0][2] >= 10_000

    def test_echo_round_trip(self):
        sim, net, machines, endpoints, _ = build_world()
        client = Recorder(endpoints["m0"], machines["m0"].allocate_thread("c"), "client")
        echo = Echo(endpoints["m1"], machines["m1"].allocate_thread("e"), "echo")
        client.send(echo.address, "ping", size=64)
        sim.run()
        assert client.received[0][1] == ("echo", "ping")

    def test_broadcast_reaches_all(self):
        sim, net, machines, endpoints, _ = build_world()
        sender = Recorder(endpoints["m0"], machines["m0"].allocate_thread("snd"), "snd")
        sinks = [
            Recorder(endpoints["m1"], machines["m1"].allocate_thread(f"r{i}"), f"r{i}")
            for i in range(3)
        ]
        sender.broadcast([s.address for s in sinks], "news", size=10)
        sim.run()
        assert all(len(s.received) == 1 for s in sinks)

    def test_message_to_unknown_stage_dropped_silently(self):
        sim, net, machines, endpoints, _ = build_world()
        a = Recorder(endpoints["m0"], machines["m0"].allocate_thread("a"), "a")
        a.send(("m1", "ghost"), "lost", size=10)
        sim.run()  # must not raise

    def test_duplicate_stage_name_rejected(self):
        sim, net, machines, endpoints, _ = build_world()
        thread = machines["m0"].allocate_thread("t")
        Recorder(endpoints["m0"], thread, "dup")
        with pytest.raises(ConfigurationError):
            Recorder(endpoints["m0"], thread, "dup")

    def test_default_wire_size_used_when_unspecified(self):
        sim, net, machines, endpoints, _ = build_world()
        a = Recorder(endpoints["m0"], machines["m0"].allocate_thread("a"), "a")
        b = Recorder(endpoints["m1"], machines["m1"].allocate_thread("b"), "b")
        a.send(b.address, "no-size-given")
        sim.run()
        assert net.interface("m0").bytes_sent == 64

    def test_wire_size_method_respected(self):
        class Sized:
            def wire_size(self):
                return 1234

        sim, net, machines, endpoints, _ = build_world()
        a = Recorder(endpoints["m0"], machines["m0"].allocate_thread("a"), "a")
        b = Recorder(endpoints["m1"], machines["m1"].allocate_thread("b"), "b")
        a.send(b.address, Sized())
        sim.run()
        assert net.interface("m0").bytes_sent == 1234


class TestTimers:
    def test_timer_fires_on_stage_thread(self):
        sim, net, machines, endpoints, _ = build_world()
        stage = Recorder(endpoints["m0"], machines["m0"].allocate_thread("a"), "a")
        fired = []
        stage.set_timer(5_000, lambda: fired.append(stage.now))
        sim.run()
        assert fired == [5_000]

    def test_timer_waits_for_busy_thread(self):
        sim, net, machines, endpoints, _ = build_world()
        stage = Recorder(endpoints["m0"], machines["m0"].allocate_thread("a"), "a", cost_ns=50_000)
        fired = []
        stage._enqueue(("m0", "x"), "work")
        stage.set_timer(1_000, lambda: fired.append(stage.now))
        sim.run()
        assert fired == [50_000]

    def test_cancelled_timer_never_fires(self):
        sim, net, machines, endpoints, _ = build_world()
        stage = Recorder(endpoints["m0"], machines["m0"].allocate_thread("a"), "a")
        fired = []
        event = stage.set_timer(5_000, lambda: fired.append(1))
        stage.cancel_timer(event)
        sim.run()
        assert fired == []

    def test_timer_may_send_messages(self):
        sim, net, machines, endpoints, _ = build_world()

        class Alarm(Stage):
            def ring(self):
                self.send(("m1", "sink"), "ring", size=8)

            def on_message(self, src, message):
                pass

        alarm = Alarm(endpoints["m0"], machines["m0"].allocate_thread("al"), "al")
        sink = Recorder(endpoints["m1"], machines["m1"].allocate_thread("s"), "sink")
        alarm.set_timer(2_000, alarm.ring)
        sim.run()
        assert len(sink.received) == 1


class TestTracing:
    def test_stage_traces_are_recorded(self):
        sim, net, machines, endpoints, tracer = build_world()

        class Chatty(Stage):
            def on_message(self, src, message):
                self.trace("got", message)

        stage = Chatty(endpoints["m0"], machines["m0"].allocate_thread("a"), "a")
        stage._enqueue(("m0", "x"), "hello")
        sim.run()
        records = list(tracer.select(category="got"))
        assert len(records) == 1
        assert records[0].detail == "hello"
        assert records[0].node == "m0/a"

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.emit(0, "n", "cat", "x")
        assert tracer.records == []

    def test_category_filtered_tracer(self):
        tracer = Tracer(categories={"keep"})
        tracer.emit(0, "n", "keep", 1)
        tracer.emit(0, "n", "drop", 2)
        assert len(tracer.records) == 1

    def test_dump_is_readable(self):
        tracer = Tracer()
        tracer.emit(1_500_000, "node", "phase", "detail")
        assert "node" in tracer.dump()
        assert "phase" in tracer.dump()
