"""Tests for the asyncio TCP transport and the frame layer.

Async scenarios run under ``asyncio.run`` so the suite has no dependency
on pytest-asyncio.  All sockets bind to 127.0.0.1 with OS-assigned ports.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import TransportError, WireFormatError, WireIntegrityError
from repro.messages.client import Request
from repro.net.peer import PeerConfig, PeerConnection
from repro.net.transport import TcpTransport
from repro.sim.process import Envelope
from repro.wire.framing import (
    FRAME_HEADER_SIZE,
    KIND_MESSAGE,
    KIND_PING,
    FrameReader,
    decode_frame,
    encode_frame,
)

REQUEST = Request("clients0:c0", 7, ("add", 1), 0, b"\x11" * 32)


# ----------------------------------------------------------------------
# FrameReader: incremental parsing
# ----------------------------------------------------------------------
def test_frame_reader_reassembles_byte_by_byte():
    frame_bytes = encode_frame(KIND_MESSAGE, 4, b"hello wire")
    reader = FrameReader()
    frames = []
    for i in range(len(frame_bytes)):
        frames.extend(reader.feed(frame_bytes[i : i + 1]))
    assert len(frames) == 1
    assert frames[0].body == b"hello wire"
    assert reader.pending_bytes == 0


def test_frame_reader_parses_coalesced_frames():
    blob = b"".join(encode_frame(KIND_MESSAGE, 1, bytes([i]) * i) for i in range(1, 6))
    reader = FrameReader()
    frames = reader.feed(blob)
    assert [f.body for f in frames] == [bytes([i]) * i for i in range(1, 6)]


def test_frame_reader_surfaces_corruption():
    frame_bytes = bytearray(encode_frame(KIND_MESSAGE, 1, b"payload"))
    frame_bytes[FRAME_HEADER_SIZE] ^= 0xFF
    with pytest.raises(WireIntegrityError):
        FrameReader().feed(bytes(frame_bytes))


def test_frame_reader_rejects_garbage_stream():
    with pytest.raises(WireFormatError):
        FrameReader().feed(b"\x00" * (FRAME_HEADER_SIZE + 4))


def test_decode_frame_round_trip():
    frame = decode_frame(encode_frame(KIND_PING, 0, b""))
    assert frame.kind == KIND_PING
    assert frame.body == b""


# ----------------------------------------------------------------------
# TcpTransport: registration and framing over real sockets
# ----------------------------------------------------------------------
def _transport(nodes, **kwargs):
    directory = {name: ("127.0.0.1", 0) for name in nodes}
    return TcpTransport(directory, **kwargs)


def test_register_requires_directory_entry():
    transport = _transport(["a"])
    transport.register("a", lambda src, env: None)
    with pytest.raises(TransportError):
        transport.register("a", lambda src, env: None)  # duplicate
    with pytest.raises(TransportError):
        transport.register("ghost", lambda src, env: None)  # not in directory


def test_envelopes_cross_real_sockets():
    async def scenario():
        received = asyncio.Event()
        inbox = []
        transport = _transport(["a", "b"])
        transport.register("a", lambda src, env: None)

        def receive(src, envelope):
            inbox.append((src, envelope))
            received.set()

        transport.register("b", receive)
        async with transport:
            envelope = Envelope(("a", "c0"), "handler", REQUEST)
            transport.send("a", "b", envelope, REQUEST.wire_size())
            await asyncio.wait_for(received.wait(), timeout=5)
        src, delivered = inbox[0]
        assert src == "a"
        assert delivered.src == ("a", "c0")
        assert delivered.dst_stage == "handler"
        assert delivered.message == REQUEST
        assert transport.interface("b").messages_received == 1
        assert transport.interface("a").messages_sent == 1

    asyncio.run(scenario())


def test_multicast_reaches_every_destination():
    async def scenario():
        hits = {"b": 0, "c": 0}
        done = asyncio.Event()
        transport = _transport(["a", "b", "c"])
        transport.register("a", lambda src, env: None)
        for node in ("b", "c"):

            def receive(src, env, node=node):
                hits[node] += 1
                if all(hits.values()):
                    done.set()

            transport.register(node, receive)
        async with transport:
            envelope = Envelope(("a", "c0"), "handler", REQUEST)
            transport.multicast("a", ["b", "c"], envelope, REQUEST.wire_size())
            await asyncio.wait_for(done.wait(), timeout=5)
        assert hits == {"b": 1, "c": 1}

    asyncio.run(scenario())


def test_send_to_unknown_destination_is_an_error():
    transport = _transport(["a"])
    transport.register("a", lambda src, env: None)
    envelope = Envelope(("a", "c0"), "handler", REQUEST)
    with pytest.raises(TransportError):
        transport.send("a", "nowhere", envelope, 64)


def test_peer_reconnects_after_receiver_restart():
    async def scenario():
        inbox = []
        got_one = asyncio.Event()
        directory = {"a": ("127.0.0.1", 0), "b": ("127.0.0.1", 0)}
        config = PeerConfig(backoff_base_s=0.01, backoff_max_s=0.05)
        sender = TcpTransport(directory, peer_config=config)
        sender.register("a", lambda src, env: None)
        async with sender:
            receiver = TcpTransport(dict(directory), peer_config=config)

            def receive(src, env):
                inbox.append(env.message)
                got_one.set()

            receiver.register("b", receive)
            await receiver.start()
            # sender learns b's real port the way separate processes would:
            # from the shared directory convention
            sender.directory["b"] = receiver.directory["b"]
            envelope = Envelope(("a", "c0"), "handler", REQUEST)
            sender.send("a", "b", envelope, REQUEST.wire_size())
            await asyncio.wait_for(got_one.wait(), timeout=5)

            # kill the receiver, then bring a new one up on the same port
            port = receiver.directory["b"][1]
            await receiver.stop()
            await asyncio.sleep(0.05)
            sender.send("a", "b", Envelope(("a", "c0"), "handler", REQUEST), REQUEST.wire_size())

            got_two = asyncio.Event()
            revived = TcpTransport({"b": ("127.0.0.1", port)}, peer_config=config)
            revived.register("b", lambda src, env: got_two.set())
            await revived.start()
            assert revived.directory["b"][1] == port
            # the queued message (or a subsequent one) arrives after reconnect
            for _ in range(50):
                if got_two.is_set():
                    break
                sender.send("a", "b", Envelope(("a", "c0"), "handler", REQUEST), REQUEST.wire_size())
                await asyncio.sleep(0.02)
            await asyncio.wait_for(got_two.wait(), timeout=5)
            await revived.stop()
        assert inbox[0] == REQUEST

    asyncio.run(scenario())


def test_bounded_queue_drops_when_peer_unreachable():
    async def scenario():
        # no listener on the other side and a tiny queue: floods must drop
        config = PeerConfig(queue_capacity=4, backoff_base_s=5.0, backoff_max_s=5.0)
        transport = TcpTransport(
            {"a": ("127.0.0.1", 0), "b": ("127.0.0.1", 1)}, peer_config=config
        )
        transport.register("a", lambda src, env: None)
        async with transport:
            envelope = Envelope(("a", "c0"), "handler", REQUEST)
            for _ in range(32):
                transport.send("a", "b", envelope, REQUEST.wire_size())
            assert transport.messages_dropped >= 32 - 4
            assert transport.interface("a").send_queue_drops >= 32 - 4
            assert transport.messages_sent == 32

    asyncio.run(scenario())


def test_corrupt_stream_counts_decode_error_and_drops_connection():
    async def scenario():
        transport = _transport(["b"])
        transport.register("b", lambda src, env: None)
        async with transport:
            host, port = transport.directory["b"]
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"\xde\xad\xbe\xef" * 16)
            await writer.drain()
            # server drops the connection on garbage
            eof = await asyncio.wait_for(reader.read(1), timeout=5)
            assert eof == b""
            writer.close()
        assert transport.interface("b").decode_errors == 1

    asyncio.run(scenario())


def test_peer_connection_flushes_queue_in_order():
    async def scenario():
        received = []
        done = asyncio.Event()

        async def serve(reader, writer):
            frame_reader = FrameReader()
            while True:
                data = await reader.read(4096)
                if not data:
                    return
                for frame in frame_reader.feed(data):
                    if frame.kind == KIND_MESSAGE:
                        received.append(frame.body)
                        if len(received) == 10:
                            done.set()

        server = await asyncio.start_server(serve, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        peer = PeerConnection(
            "a", "b", resolve=lambda: ("127.0.0.1", port), config=PeerConfig()
        )
        for i in range(10):
            assert peer.enqueue(encode_frame(KIND_MESSAGE, 1, bytes([i])))
        await asyncio.wait_for(done.wait(), timeout=5)
        await peer.close()
        server.close()
        await server.wait_closed()
        assert received == [bytes([i]) for i in range(10)]

    asyncio.run(scenario())

# ----------------------------------------------------------------------
# Chaos injection on the live transport
# ----------------------------------------------------------------------
def test_chaos_filter_drops_frames_and_counts():
    from repro.chaos import LossRate

    async def scenario():
        inbox = []
        transport = _transport(["a", "b"])
        transport.register("a", lambda src, env: None)
        transport.register("b", lambda src, env: inbox.append(env))
        transport.add_filter(LossRate(1.0))  # drop everything
        async with transport:
            envelope = Envelope(("a", "c0"), "handler", REQUEST)
            for _ in range(5):
                transport.send("a", "b", envelope, REQUEST.wire_size())
            await asyncio.sleep(0.1)
        assert inbox == []
        assert transport.chaos_dropped == 5
        assert transport.interface("a").chaos_dropped == 5

    asyncio.run(scenario())


def test_chaos_filter_delays_but_still_delivers():
    from repro.chaos import ExtraDelay

    async def scenario():
        got = asyncio.Event()
        transport = _transport(["a", "b"])
        transport.register("a", lambda src, env: None)
        transport.register("b", lambda src, env: got.set())
        transport.add_filter(ExtraDelay(30_000_000))  # 30 ms
        async with transport:
            transport.send("a", "b", Envelope(("a", "c0"), "handler", REQUEST), REQUEST.wire_size())
            assert not got.is_set()  # still parked on the loop's timer
            await asyncio.wait_for(got.wait(), timeout=5)
        assert transport.chaos_delayed == 1

    asyncio.run(scenario())


def test_chaos_filter_replaces_message_in_flight():
    async def scenario():
        inbox = []
        got = asyncio.Event()
        forged = Request("clients0:c0", 7, ("add", 666), 0, b"\x11" * 32)

        class Forge:
            def decide(self, src, dst, message, size, now):
                from repro.chaos import FilterDecision

                return FilterDecision(replace=Envelope(message.src, message.dst_stage, forged))

        transport = _transport(["a", "b"])
        transport.register("a", lambda src, env: None)

        def receive(src, env):
            inbox.append(env.message)
            got.set()

        transport.register("b", receive)
        transport.add_filter(Forge())
        async with transport:
            transport.send("a", "b", Envelope(("a", "c0"), "handler", REQUEST), REQUEST.wire_size())
            await asyncio.wait_for(got.wait(), timeout=5)
        assert inbox == [forged]
        assert transport.chaos_injected == 1

    asyncio.run(scenario())


def test_remove_filter_restores_clean_delivery():
    from repro.chaos import LossRate

    async def scenario():
        got = asyncio.Event()
        transport = _transport(["a", "b"])
        transport.register("a", lambda src, env: None)
        transport.register("b", lambda src, env: got.set())
        blackhole = LossRate(1.0)
        transport.add_filter(blackhole)
        async with transport:
            transport.send("a", "b", Envelope(("a", "c0"), "handler", REQUEST), REQUEST.wire_size())
            transport.remove_filter(blackhole)
            transport.send("a", "b", Envelope(("a", "c0"), "handler", REQUEST), REQUEST.wire_size())
            await asyncio.wait_for(got.wait(), timeout=5)
        assert transport.chaos_dropped == 1

    asyncio.run(scenario())


def test_transport_clock_drives_filter_windows():
    from repro.chaos import CrashWindows

    async def scenario():
        inbox = []
        fake_now = {"ns": 0}
        transport = TcpTransport(
            {"a": ("127.0.0.1", 0), "b": ("127.0.0.1", 0)},
            clock=lambda: fake_now["ns"],
        )
        transport.register("a", lambda src, env: None)
        transport.register("b", lambda src, env: inbox.append(env))
        transport.add_filter(CrashWindows("b", [(0, 1_000)]))
        async with transport:
            envelope = Envelope(("a", "c0"), "handler", REQUEST)
            transport.send("a", "b", envelope, REQUEST.wire_size())  # inside window
            fake_now["ns"] = 2_000  # the crash window closes
            transport.send("a", "b", envelope, REQUEST.wire_size())
            for _ in range(100):
                if inbox:
                    break
                await asyncio.sleep(0.01)
        assert len(inbox) == 1
        assert transport.chaos_dropped == 1

    asyncio.run(scenario())


def test_drop_connections_severs_and_peer_reconnects():
    async def scenario():
        inbox = []
        config = PeerConfig(backoff_base_s=0.01, backoff_max_s=0.05)
        transport = _transport(["a", "b"], peer_config=config)
        transport.register("a", lambda src, env: None)
        transport.register("b", lambda src, env: inbox.append(env))
        async with transport:
            envelope = Envelope(("a", "c0"), "handler", REQUEST)
            transport.send("a", "b", envelope, REQUEST.wire_size())
            for _ in range(200):
                if inbox:
                    break
                await asyncio.sleep(0.01)
            assert len(inbox) == 1

            killed = transport.drop_connections("b")
            assert killed >= 1

            # reconnect/backoff must bring the link back without outside help
            delivered = len(inbox)
            for _ in range(200):
                transport.send("a", "b", envelope, REQUEST.wire_size())
                await asyncio.sleep(0.01)
                if len(inbox) > delivered:
                    break
            assert len(inbox) > delivered

    asyncio.run(scenario())


def test_drop_connections_on_unknown_node_is_a_noop():
    async def scenario():
        transport = _transport(["a", "b"])
        transport.register("a", lambda src, env: None)
        async with transport:
            assert transport.drop_connections("ghost") == 0

    asyncio.run(scenario())
