"""The gateway tier end to end: sim determinism, backpressure, leases,
live TCP, and the scenario-engine integrations it rides on.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.errors import ConfigurationError
from repro.gateway.config import GatewayConfig
from repro.gateway.runner import run_gateway_live, run_gateway_sim
from repro.runtime.deployment import DeploymentSpec, build_deployment
from repro.sim.tracing import Tracer

MS = 1_000_000
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _spec(**overrides) -> DeploymentSpec:
    gateway_fields = {
        f: overrides.pop(f)
        for f in (
            "sessions", "arrivals", "rate_ops", "on_ms", "off_ms",
            "queue_capacity", "max_outstanding", "request_timeout_ms",
            "max_retries", "read_lease_ms", "gateways",
        )
        if f in overrides
    }
    defaults = dict(
        protocol="hybster-x",
        cores=2,
        service="counter",
        num_clients=0,
        client_machines=1,
        seed=9,
    )
    defaults.update(overrides)
    return DeploymentSpec(
        gateway=GatewayConfig(
            sessions=gateway_fields.pop("sessions", 24),
            rate_ops=gateway_fields.pop("rate_ops", 2000.0),
            **gateway_fields,
        ),
        **defaults,
    )


# ----------------------------------------------------------------------
# Sim end-to-end
# ----------------------------------------------------------------------
def test_sim_gateway_completes_and_replicas_agree():
    result = run_gateway_sim(_spec(), duration_ms=300)
    assert result.slo.completed > 100
    assert result.slo.failed == 0
    assert len(set(result.state_digests)) == 1
    # open loop: offered arrivals are independent of completions
    assert result.slo.offered >= result.slo.completed
    assert result.slo.latency.count == result.slo.completed


def test_sim_gateway_is_deterministic_under_seed():
    a = run_gateway_sim(_spec(seed=77), duration_ms=300)
    b = run_gateway_sim(_spec(seed=77), duration_ms=300)
    assert a.to_json() == b.to_json()
    c = run_gateway_sim(_spec(seed=78), duration_ms=300)
    assert a.to_json() != c.to_json()


def test_sim_gateway_latency_includes_queueing():
    # saturate a small window: latency must grow well past the
    # unloaded round trip because arrivals wait in the admission queue
    fast = run_gateway_sim(_spec(rate_ops=500.0), duration_ms=300)
    slow = run_gateway_sim(
        _spec(rate_ops=20000.0, max_outstanding=8, queue_capacity=4096),
        duration_ms=300,
    )
    assert slow.slo.latency.percentile_ms(50) > 3 * fast.slo.latency.percentile_ms(50)


def test_sim_gateway_sheds_at_saturation_but_stays_safe():
    result = run_gateway_sim(
        _spec(rate_ops=50000.0, queue_capacity=16, max_outstanding=8),
        duration_ms=300,
    )
    assert result.slo.shed > 0
    assert result.slo.shed_fraction > 0.5
    # everything admitted is accounted for; nothing vanished silently
    assert result.slo.offered == result.slo.admitted + result.slo.shed
    assert len(set(result.state_digests)) == 1


def test_sim_gateway_sessions_have_distinct_client_ids():
    spec = _spec(sessions=8)
    deployment = build_deployment(spec)
    gateway = deployment.gateways[0]
    ids = {session.client_id for session in gateway.sessions}
    assert len(ids) == 8
    assert all(id_.startswith("gw0:gateway/s") for id_ in ids)


def test_multiple_gateways_split_the_offered_load():
    result = run_gateway_sim(_spec(gateways=2, rate_ops=1000.0), duration_ms=300)
    assert result.slo.sessions == 48  # 24 sessions per gateway node
    # two nodes at 1000 ops/s each
    assert result.slo.offered_rate_ops == pytest.approx(2000.0, rel=0.15)


def test_gateway_runner_requires_gateway_config():
    with pytest.raises(ConfigurationError):
        run_gateway_sim(DeploymentSpec(num_clients=0), duration_ms=10)


# ----------------------------------------------------------------------
# Read leases
# ----------------------------------------------------------------------
def _coordination_spec(read_lease_ms: float) -> DeploymentSpec:
    from repro.clients.workload import CoordinationWorkload
    from repro.sim.rand import derive_seed

    spec = _spec(
        service="coordination",
        sessions=12,
        rate_ops=3000.0,
        read_lease_ms=read_lease_ms,
    )
    spec.workload_factory = lambda client_id, index: CoordinationWorkload(
        client_id, 0.9, nodes=4, seed=derive_seed(spec.seed, "workload", client_id)
    )
    return spec


def test_read_leases_serve_reads_locally():
    leased = run_gateway_sim(_coordination_spec(read_lease_ms=50.0), duration_ms=300)
    unleased = run_gateway_sim(_coordination_spec(read_lease_ms=0.0), duration_ms=300)
    assert leased.slo.leased_reads > 100
    assert unleased.slo.leased_reads == 0
    # local reads skip replication entirely: fewer bytes hit the wire
    assert leased.transport_sent < unleased.transport_sent
    assert leased.slo.latency.percentile_ms(50) < unleased.slo.latency.percentile_ms(50)


def test_leased_reads_are_traced_separately():
    tracer = Tracer(
        enabled=True, categories={"client-complete", "gateway-local-read"}
    )
    run_gateway_sim(_coordination_spec(read_lease_ms=50.0), duration_ms=200, tracer=tracer)
    categories = {record.category for record in tracer.records}
    assert "gateway-local-read" in categories
    assert "client-complete" in categories


# ----------------------------------------------------------------------
# Live TCP
# ----------------------------------------------------------------------
def test_live_gateway_open_loop_smoke():
    result = run_gateway_live(
        _spec(protocol="hybster-s", sessions=16, rate_ops=400.0), duration_s=2.0
    )
    assert result.slo.completed > 50
    assert len(set(result.state_digests)) == 1
    assert result.transport_sent > result.slo.completed


def test_live_gateway_connection_pool():
    spec = _spec(protocol="hybster-s", sessions=16, rate_ops=400.0)
    spec.gateway = GatewayConfig(
        sessions=16, rate_ops=400.0, connection_pool=3
    )
    result = run_gateway_live(spec, duration_s=2.0)
    assert result.slo.completed > 50
    assert len(set(result.state_digests)) == 1


# ----------------------------------------------------------------------
# Scenario-engine integration
# ----------------------------------------------------------------------
def test_gateway_scenario_toml_round_trip(tmp_path):
    from repro.scenarios.spec import load_scenario

    path = tmp_path / "gw.toml"
    path.write_text(
        """
name = "gw-test"
mode = "sim"
[deployment]
protocol = "hybster-x"
service = "kv"
cores = 2
[workload]
kind = "gateway"
sessions = 16
arrivals = "bursty"
rate_ops = 1234.0
queue_capacity = 64
[workload.inner]
kind = "kv"
keys = 4
[run]
duration_ms = 100
seed = 3
[pass]
max_p99_ms = 500.0
max_shed_fraction = 0.5
"""
    )
    spec = load_scenario(str(path))
    deployment_spec = spec.deployment_spec()
    assert deployment_spec.num_clients == 0
    assert deployment_spec.gateway.sessions == 16
    assert deployment_spec.gateway.arrivals == "bursty"
    assert deployment_spec.gateway.rate_ops == 1234.0
    assert spec.criteria.max_p99_ms == 500.0
    assert spec.criteria.max_shed_fraction == 0.5
    # the inner workload drives sessions, not direct clients
    workload = deployment_spec.make_workload("gw0:gateway/s0", 0)
    assert type(workload).__name__ == "KeyValueWorkload"


def test_gateway_scenario_runs_and_reports_slo_fields():
    from repro.scenarios.engine import run_scenario
    from repro.scenarios.spec import load_scenario

    spec = load_scenario(
        os.path.join(REPO_ROOT, "scenarios", "sim-hybster-x-gateway-openloop.toml")
    )
    result = run_scenario(spec)
    assert result.passed, result.failures or result.error
    assert result.p99_ms is not None
    assert result.p999_ms is not None
    assert result.shed_fraction is not None
    payload = result.to_json()
    assert payload["p99_ms"] >= payload["p50_ms"]


def test_unknown_gateway_workload_key_rejected(tmp_path):
    from repro.scenarios.spec import load_scenario

    path = tmp_path / "bad.toml"
    path.write_text(
        """
name = "bad"
[workload]
kind = "gateway"
sesions = 16
"""
    )
    spec = load_scenario(str(path))
    with pytest.raises(ConfigurationError):
        spec.deployment_spec()


# ----------------------------------------------------------------------
# Process-per-node live scenarios (one OS process per node)
# ----------------------------------------------------------------------
def test_live_scenario_with_one_process_per_replica(tmp_path):
    from repro.scenarios.engine import run_scenario
    from repro.scenarios.spec import load_scenario

    src = os.path.join(REPO_ROOT, "scenarios", "live-hybster-s-processes-loss.toml")
    with open(src, encoding="utf-8") as fh:
        text = fh.read()
    # shrink the committed scenario to test scale; the completion floor
    # is generous because a loaded CI box slows child-process start-up
    text = text.replace("duration_ms = 15000", "duration_ms = 10000")
    text = text.replace("requests = 200", "requests = 60")
    text = text.replace("min_completed = 150", "min_completed = 20")
    path = tmp_path / "processes.toml"
    path.write_text(text)

    spec = load_scenario(str(path))
    assert spec.processes
    result = run_scenario(spec, trace_out=str(tmp_path / "trace.jsonl"))
    assert result.error is None
    assert result.passed, result.failures
    assert result.completed >= 20
    assert result.safety.ok
    # the merged trace really came from multiple processes
    merged = Tracer.load_jsonl(str(tmp_path / "trace.jsonl"))
    nodes = {
        record.node.split("/")[0]
        for record in merged.records
        if record.category == "execute"
    }
    assert nodes == {"r0", "r1", "r2"}


def test_livenode_cli_runs_one_node():
    # a replica-only child exits cleanly on SIGTERM and reports its state
    import signal
    import time

    spec_path = os.path.join(
        REPO_ROOT, "scenarios", "live-hybster-s-processes-loss.toml"
    )
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
    child = subprocess.Popen(
        [
            sys.executable, "-m", "repro.scenarios.livenode",
            "--spec", spec_path, "--node", "r0", "--base-port", "46880",
        ],
        stdout=subprocess.PIPE,
        env=env,
        cwd=REPO_ROOT,
    )
    time.sleep(1.5)
    child.send_signal(signal.SIGTERM)
    out, _ = child.communicate(timeout=15)
    assert child.returncode == 0
    report = json.loads(out.decode())
    assert report["node"] == "r0"
    assert report["completed"] == 0  # replicas host no workload
