"""Tests for the comparison systems: PBFTcop, HybridPBFT, MinBFT, CASH."""

import pytest

from repro.baselines.cash import CashSubsystem
from repro.baselines.minbft import build_minbft_group
from repro.baselines.pbft import AUTHENTICATORS, TRUSTED_MACS, build_pbft_group
from repro.baselines.usig import Usig
from repro.clients.client import Client
from repro.clients.workload import NullWorkload
from repro.core.config import ReplicaGroupConfig
from repro.errors import ConfigurationError
from repro.services.counter import CounterService
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.process import Endpoint
from repro.sim.resources import Machine
from repro.trinx.enclave import EnclavePlatform

SECRET = b"baseline-group-secret-000000000!"


def build_cluster(kind: str, num_pillars=2, rotation=False, batch_size=1, clients=2):
    sim = Simulator()
    network = Network(sim)
    if kind == "minbft":
        ids, pillars = ("r0", "r1", "r2"), 1
    else:
        ids, pillars = ("r0", "r1", "r2", "r3"), num_pillars
    config = ReplicaGroupConfig(
        replica_ids=ids, num_pillars=pillars, rotation=rotation,
        checkpoint_interval=8, window_size=16, batch_size=batch_size,
    )
    machines = [Machine(sim, rid, cores=4) for rid in ids]
    if kind == "minbft":
        replicas = build_minbft_group(sim, network, machines, config, CounterService)
    else:
        mode = TRUSTED_MACS if kind == "hybrid" else AUTHENTICATORS
        replicas = build_pbft_group(sim, network, machines, config, CounterService, cert_mode=mode)
    client_machine = Machine(sim, "cl", cores=4)
    endpoint = Endpoint(sim, network, "cl")
    client_objects = [
        Client(endpoint, client_machine.allocate_thread(f"c{i}"), config, f"c{i}",
               NullWorkload(), window=2)
        for i in range(clients)
    ]
    for client in client_objects:
        client.start()
    return sim, network, replicas, client_objects


class TestPbftCop:
    @pytest.mark.parametrize("kind", ["pbft", "hybrid"])
    def test_fault_free_ordering(self, kind):
        sim, _net, replicas, clients = build_cluster(kind)
        sim.run(until=200_000_000)
        completed = sum(client.completed for client in clients)
        assert completed > 50
        applied = [replica.service.operations_applied for replica in replicas]
        assert max(applied) - min(applied) <= 8  # replicas track each other

    def test_needs_3f_plus_1_replicas(self):
        sim = Simulator()
        network = Network(sim)
        config = ReplicaGroupConfig(replica_ids=("a", "b", "c"), checkpoint_interval=8, window_size=16)
        machines = [Machine(sim, rid, cores=2) for rid in config.replica_ids]
        with pytest.raises(ConfigurationError):
            build_pbft_group(sim, network, machines, config, CounterService)

    def test_checkpoints_garbage_collect(self):
        sim, _net, replicas, clients = build_cluster("pbft", clients=4)
        sim.run(until=400_000_000)
        for replica in replicas:
            pillar = replica.pillars[0]
            assert pillar.stable_ck_order > 0
            assert all(order > pillar.stable_ck_order for order in pillar._instances)

    def test_rotation_balances_proposals(self):
        sim, _net, replicas, clients = build_cluster("pbft", rotation=True, clients=8)
        sim.run(until=300_000_000)
        proposals = [replica.stats()["proposals"] for replica in replicas]
        assert all(count > 0 for count in proposals)

    def test_survives_one_follower_crash(self):
        from repro.sim.faults import Partition

        sim, network, replicas, clients = build_cluster("pbft", clients=2)
        sim.run(until=100_000_000)
        before = sum(client.completed for client in clients)
        network.add_filter(Partition({"r3"}, start_ns=sim.now))
        sim.run(until=400_000_000)
        assert sum(client.completed for client in clients) > before

    def test_hybrid_uses_fewer_crypto_ops_for_large_groups(self):
        # at n = 4 an authenticator needs 3 MACs per outgoing message; a
        # trusted MAC needs a single enclave call regardless of group size
        sim_a, _n1, replicas_a, clients_a = build_cluster("pbft")
        sim_b, _n2, replicas_b, clients_b = build_cluster("hybrid")
        sim_a.run(until=100_000_000)
        sim_b.run(until=100_000_000)
        assert sum(c.completed for c in clients_a) > 0
        assert sum(c.completed for c in clients_b) > 0


class TestMinBft:
    def test_fault_free_ordering(self):
        sim, _net, replicas, clients = build_cluster("minbft")
        sim.run(until=200_000_000)
        assert sum(client.completed for client in clients) > 50
        applied = [replica.service.operations_applied for replica in replicas]
        assert max(applied) - min(applied) <= 4

    def test_checkpoints_and_gc(self):
        sim, _net, replicas, clients = build_cluster("minbft", clients=4)
        sim.run(until=400_000_000)
        for replica in replicas:
            assert replica.low_mark > 0
            assert all(order > replica.low_mark for order in replica._instances)

    def test_sequential_pillar_restriction(self):
        sim = Simulator()
        network = Network(sim)
        config = ReplicaGroupConfig(
            replica_ids=("a", "b", "c"), num_pillars=2, checkpoint_interval=8, window_size=16
        )
        machines = [Machine(sim, rid, cores=2) for rid in config.replica_ids]
        with pytest.raises(ConfigurationError):
            build_minbft_group(sim, network, machines, config, CounterService)

    def test_ui_sequence_enforced(self):
        sim, _net, replicas, clients = build_cluster("minbft")
        sim.run(until=100_000_000)
        # followers track the leader's UI values gaplessly
        follower = replicas[1]
        assert follower._last_leader_ui > 0


class TestUsig:
    def test_implicit_increment(self):
        usig = Usig(EnclavePlatform(), "u0", SECRET)
        ui1 = usig.create_ui("a")
        ui2 = usig.create_ui("b")
        assert (ui1.value, ui2.value) == (1, 2)

    def test_verify_cross_instance(self):
        a = Usig(EnclavePlatform(), "u0", SECRET)
        b = Usig(EnclavePlatform(), "u1", SECRET)
        ui = a.create_ui("m")
        assert b.verify_ui(ui, "m")
        assert not b.verify_ui(ui, "tampered")

    def test_wrong_secret_rejected(self):
        a = Usig(EnclavePlatform(), "u0", SECRET)
        b = Usig(EnclavePlatform(), "u0", b"other-secret-0000000000000000!!!")
        ui = a.create_ui("m")
        assert not b.verify_ui(ui, "m")

    def test_each_ui_is_an_enclave_call(self):
        platform = EnclavePlatform()
        usig = Usig(platform, "u0", SECRET)
        usig.create_ui("a")
        usig.create_ui("b")
        assert platform.calls == 2


class TestCash:
    def test_counters_monotone(self):
        cash = CashSubsystem(None, "cash0", SECRET)
        cash.create_certificate(0, 5, "m")
        with pytest.raises(ValueError):
            cash.create_certificate(0, 4, "m")

    def test_certificates_verify(self):
        cash = CashSubsystem(None, "cash0", SECRET)
        mac = cash.create_certificate(0, 5, "m")
        assert cash.verify_certificate("cash0", 0, 5, "m", mac)
        assert not cash.verify_certificate("cash0", 0, 5, "tampered", mac)

    def test_single_channel_serializes(self):
        sim = Simulator()
        machine = Machine(sim, "m", cores=2)
        cash = CashSubsystem(sim, "cash0", SECRET)
        finish = {}
        t0 = machine.allocate_thread("a")
        t1 = machine.allocate_thread("b")
        t0.submit(lambda _: cash.create_certificate(0, 1, "x"))
        t1.submit(lambda _: cash.create_certificate(1, 1, "y"))
        t0.submit(lambda _: finish.setdefault("a", sim.now))
        t1.submit(lambda _: finish.setdefault("b", sim.now))
        sim.run()
        # both threads issued one certificate, but the channel processed
        # them back to back: the second finisher waited ~2x the latency
        assert max(finish.values()) >= 2 * 57_000
